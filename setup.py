"""Packaging for the TDO-CIM reproduction.

A plain ``setup.py`` (no pyproject.toml) on purpose: the environment this
reproduction targets may lack the ``wheel`` package, in which case PEP 517
editable installs fail with ``invalid command 'bdist_wheel'``.  This form
works both ways — ``pip install -e .`` on modern toolchains and
``pip install -e . --no-build-isolation --no-use-pep517`` on minimal ones.

Installing exposes the ``repro`` console script (see ``repro --help``);
without installing, the same CLI runs as ``PYTHONPATH=src python -m
repro.cli``, which is how CI invokes it.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def _version() -> str:
    init = Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(r'^__version__ = "([^"]+)"', init.read_text(), re.M)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="tdo-cim-repro",
    version=_version(),
    description=(
        "Reproduction of TDO-CIM (DATE 2020): transparent detection and "
        "offloading of compute-intensive kernels to a compute-in-memory "
        "accelerator, with an emulated hardware stack, multi-tenant "
        "serving, a fault-tolerant fleet, a record/replay trace layer, "
        "and a wall-clock process-pool serving gateway"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)

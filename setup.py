"""Legacy setup shim.

The environment this reproduction targets may lack the ``wheel`` package, in
which case PEP 517 editable installs fail with ``invalid command
'bdist_wheel'``.  Keeping a ``setup.py`` allows
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on modern toolchains) to work either way.
"""

from setuptools import setup

setup()

"""Dynamic request batching for the serving layer.

Two requests are *batch-compatible* when they would drive the crossbar
identically: same compiled program (content fingerprint), same runtime
parameters, and the same bytes in the **stationary operands** — the host
arrays that get programmed into the crossbar (the ``A`` matrix of a
GEMV/GEMM, the filter of a convolution).  The batcher groups compatible
requests that arrive within one batching window into a single *lease*:
the crossbar is programmed once at the head of the lease, and the
remaining requests stream their vectors against the already-resident
operand (PR 1's resident-GEMV / ``gemv_batch`` tile path), so the
per-request programming latency, DMA traffic and — crucially — PCM wear
are paid once per batch instead of once per request.

For the common serving shape — a compiled program that is exactly one
offloaded GEMV with its transfers (the paper's Listing 1 sequence) — the
batcher extracts a :class:`FusedGemvPlan` and the server dispatches the
batch at the BLAS level: one upload of the stationary matrix, then one
``sgemv`` per request.  Anything else falls back to whole-program
execution inside the lease, which still benefits from operand residency
but re-uploads host data per request.  Either way the functional results
are bit-identical to a direct, single-request
:class:`~repro.codegen.executor.OffloadExecutor` run: the crossbar holds
byte-identical operand values (guarded by the micro-engine's programmed-
value check), and batching changes only scheduling and accounting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.codegen.runtime_calls import (
    CIM_CONV2D,
    CIM_DEV_TO_HOST,
    CIM_FREE,
    CIM_GEMM,
    CIM_GEMM_BATCHED,
    CIM_GEMV,
    CIM_HOST_TO_DEV,
    CIM_INIT,
    CIM_MALLOC,
    BatchedGemmCallArgs,
    Conv2DCallArgs,
    CopyCallArgs,
    GemvCallArgs,
    MallocCallArgs,
)
from repro.ir.expr import Expr
from repro.ir.interp import evaluate_expr
from repro.ir.program import Program
from repro.ir.stmt import CallStmt
from repro.serve.request import TenantRequest


# ----------------------------------------------------------------------
# Batch signatures
# ----------------------------------------------------------------------
def _call_stmts(program: Program) -> list[CallStmt]:
    return [stmt for stmt in program.body.stmts if isinstance(stmt, CallStmt)]


def stationary_operand_arrays(program: Program) -> tuple[str, ...]:
    """Names of the host arrays a program programs into the crossbar.

    These are the operands whose content decides whether two requests can
    share one crossbar lease: the ``A`` matrix of every GEMV/GEMM call and
    the filter of every convolution.
    """
    names: list[str] = []
    for stmt in _call_stmts(program):
        payload = stmt.args[0] if stmt.args else None
        if stmt.callee in (CIM_GEMM, CIM_GEMV) and payload is not None:
            name = payload.array_a
        elif stmt.callee == CIM_GEMM_BATCHED and isinstance(
            payload, BatchedGemmCallArgs
        ):
            for problem in payload.problems:
                if problem.array_a and problem.array_a not in names:
                    names.append(problem.array_a)
            continue
        elif stmt.callee == CIM_CONV2D and isinstance(payload, Conv2DCallArgs):
            name = payload.array_w
        else:
            continue
        if name and name not in names:
            names.append(name)
    return tuple(names)


def batch_signature(
    fingerprint: str,
    program: Program,
    params: Mapping[str, float],
    arrays: Mapping[str, np.ndarray],
) -> str:
    """Batch-compatibility key of one request.

    Combines the compile fingerprint, the concrete runtime parameters and
    a content hash of the stationary operands.  Grouping is a performance
    decision only — correctness never depends on it, because the
    micro-engine re-checks the programmed values before reusing them.
    """
    digest = hashlib.sha256()
    digest.update(fingerprint.encode("ascii"))
    for key in sorted(params):
        digest.update(f"|{key}={float(params[key])!r}".encode("ascii"))
    for name in stationary_operand_arrays(program):
        array = arrays.get(name)
        if array is None:
            continue
        data = np.ascontiguousarray(array)
        digest.update(f"|{name}:{data.dtype.str}:{data.shape}".encode("ascii"))
        digest.update(data.tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Fused single-GEMV dispatch plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedGemvPlan:
    """BLAS-level dispatch recipe for a pure single-GEMV program.

    The plan captures everything the server needs to serve a batch of
    compatible requests with one stationary-operand upload: the operand /
    vector / result array names, the evaluated GEMV geometry, and whether
    the program uploads the result vector first (``beta != 0``).
    """

    array_a: str
    array_x: str
    array_y: str
    trans_a: bool
    m: int
    n: int
    alpha: float
    beta: float
    uploads_y: bool


def _eval(expr, params: Mapping[str, float]) -> float:
    if isinstance(expr, Expr):
        return float(evaluate_expr(expr, dict(params), {}))
    return float(expr)


def extract_fused_gemv_plan(
    program: Program, params: Mapping[str, float]
) -> Optional[FusedGemvPlan]:
    """Recognise the Listing 1 single-GEMV shape, or return ``None``.

    Accepted: a program whose body is runtime calls only — ``cimInit``,
    matched malloc/host-to-dev pairs, exactly one ``cimBlasSGemv``, one
    dev-to-host of the result vector, and (optionally) frees.  Any host
    statement, extra kernel call or unmatched transfer disqualifies the
    program and the server falls back to whole-program execution.
    """
    stmts = program.body.stmts
    if not all(isinstance(stmt, CallStmt) for stmt in stmts):
        return None
    gemv: Optional[GemvCallArgs] = None
    buffer_arrays: dict[str, str] = {}
    uploaded: set[str] = set()
    downloads: list[CopyCallArgs] = []
    saw_gemv = False
    for stmt in stmts:
        payload = stmt.args[0] if stmt.args else None
        if stmt.callee == CIM_INIT:
            continue
        if stmt.callee == CIM_MALLOC and isinstance(payload, MallocCallArgs):
            if saw_gemv:
                return None
            buffer_arrays[payload.buffer] = payload.array
            continue
        if stmt.callee == CIM_HOST_TO_DEV and isinstance(payload, CopyCallArgs):
            if saw_gemv or payload.buffer not in buffer_arrays:
                return None
            uploaded.add(payload.buffer)
            continue
        if stmt.callee == CIM_GEMV and isinstance(payload, GemvCallArgs):
            if saw_gemv:
                return None
            saw_gemv = True
            gemv = payload
            continue
        if stmt.callee == CIM_DEV_TO_HOST and isinstance(payload, CopyCallArgs):
            if not saw_gemv:
                return None
            downloads.append(payload)
            continue
        if stmt.callee == CIM_FREE:
            continue
        return None
    if gemv is None or len(downloads) != 1:
        return None
    if gemv.buffer_a not in uploaded or gemv.buffer_x not in uploaded:
        return None
    if downloads[0].buffer != gemv.buffer_y:
        return None
    uploads_y = gemv.buffer_y in uploaded
    # Every uploaded buffer must feed the GEMV — a stray upload means the
    # program does something this plan would not reproduce.
    if uploaded - {gemv.buffer_a, gemv.buffer_x, gemv.buffer_y}:
        return None
    try:
        m = int(round(_eval(gemv.m, params)))
        n = int(round(_eval(gemv.n, params)))
        alpha = _eval(gemv.alpha, params)
        beta = _eval(gemv.beta, params)
    except Exception:
        return None
    if beta != 0.0 and not uploads_y:
        # The device result would depend on uninitialised buffer content;
        # never fast-path a shape with undefined semantics.
        return None
    return FusedGemvPlan(
        array_a=buffer_arrays[gemv.buffer_a],
        array_x=buffer_arrays[gemv.buffer_x],
        array_y=buffer_arrays[gemv.buffer_y],
        trans_a=gemv.trans_a,
        m=m,
        n=n,
        alpha=alpha,
        beta=beta,
        uploads_y=uploads_y,
    )


# ----------------------------------------------------------------------
# Batch formation
# ----------------------------------------------------------------------
class DynamicBatcher:
    """Forms dispatch batches from the admitted request queues.

    ``window_s`` is the simulated batching window: once a seed request is
    chosen, every already-queued or newly-arriving compatible request up
    to ``max_batch_size`` joins the batch, and dispatch begins at
    ``seed_time + window_s`` (latency is traded for occupancy; a window
    of 0 dispatches immediately).  Batches may span tenants — that is the
    point of a multi-tenant serving layer.
    """

    def __init__(self, window_s: float = 100e-6, max_batch_size: int = 16):
        if window_s < 0:
            raise ValueError("batching window cannot be negative")
        if max_batch_size < 1:
            raise ValueError("max batch size must be >= 1")
        self.window_s = window_s
        self.max_batch_size = max_batch_size

    def form_batch(
        self,
        seed: TenantRequest,
        queued: list[TenantRequest],
    ) -> list[TenantRequest]:
        """Pick the batch served together with *seed*.

        *queued* is every admitted-but-undispatched request (any tenant).
        The batch is the compatible requests in deterministic
        (arrival, submission) order, truncated to ``max_batch_size`` —
        the seed always rides, even when older compatible requests fill
        the batch ahead of it.
        """
        compatible = [req for req in queued if req.signature == seed.signature]
        compatible.sort(key=TenantRequest.sort_key)
        batch = compatible[: self.max_batch_size]
        if seed not in batch:
            batch = batch[: self.max_batch_size - 1] + [seed]
        return batch

"""Request and handle types of the serving layer.

A tenant's ``submit()`` returns a :class:`RequestHandle` immediately; the
request itself is resolved later, when the server's event loop admits,
batches and dispatches it on the simulated clock.  Handles are future-like
but synchronous: ``result()`` raises if the request is still pending (the
caller must drive :meth:`CimServer.drain` / :meth:`CimServer.step` first)
— there is no blocking, because simulated time only moves when the event
loop moves it.

State transitions are idempotent-guarded: a handle that has reached a
terminal status (``COMPLETED``/``REJECTED``/``FAILED``) can never be
resolved again — a retry racing a fault abort raises
:class:`~repro.serve.errors.HandleStateError` instead of silently
overwriting the status, the result or the billing timestamps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.codegen.executor import ExecutionReport
from repro.serve.errors import AdmissionError, HandleStateError, ServeError


class RequestStatus(enum.Enum):
    """Lifecycle of one serving request."""

    SUBMITTED = "submitted"   # accepted by submit(), not yet at its arrival time
    QUEUED = "queued"         # admitted into its tenant queue
    COMPLETED = "completed"   # dispatched and finished; result available
    REJECTED = "rejected"     # refused by admission control
    FAILED = "failed"         # dispatched but raised (bad payload, exec error)


#: Statuses a handle can never leave.
TERMINAL_STATUSES = frozenset(
    {RequestStatus.COMPLETED, RequestStatus.REJECTED, RequestStatus.FAILED}
)


@dataclass
class TenantRequest:
    """Internal record of one submitted offload request."""

    seq: int                       # global submission index (tie-breaker)
    tenant: str
    signature: str                 # batch-compatibility key (see batcher)
    program: object                # compiled IR program
    params: Mapping[str, float]
    arrays: dict[str, np.ndarray]  # private snapshot of the tenant's data
    arrival_s: float
    #: Execution engine the kernel was compiled for (None = executor default).
    engine: Optional[str] = None
    handle: "RequestHandle" = None  # type: ignore[assignment]

    def sort_key(self) -> tuple[float, int]:
        return (self.arrival_s, self.seq)


@dataclass
class RequestHandle:
    """Caller-facing view of one request's lifecycle and result."""

    request_id: int
    tenant: str
    arrival_s: float
    status: RequestStatus = RequestStatus.SUBMITTED
    reject_reason: Optional[str] = None
    #: Simulated times, filled in as the event loop progresses.
    admitted_s: Optional[float] = None
    dispatched_s: Optional[float] = None
    completed_s: Optional[float] = None
    #: Which dispatch batch served this request and how full it was.
    batch_id: Optional[int] = None
    batch_size: Optional[int] = None
    #: Fleet tier: device that served the request, execution attempts made
    #: (1 = served first try), and lease migrations after device deaths.
    device_id: Optional[int] = None
    attempts: int = 0
    migrations: int = 0
    #: Execution accounting of this request alone.
    report: Optional[ExecutionReport] = None
    _result: Optional[dict[str, np.ndarray]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Guarded transitions
    # ------------------------------------------------------------------
    def _require_not_terminal(self, target: RequestStatus) -> None:
        if self.status in TERMINAL_STATUSES:
            raise HandleStateError(
                f"request {self.request_id} of tenant {self.tenant!r} is "
                f"already {self.status.value}; cannot transition to "
                f"{target.value} (terminal handles are immutable)"
            )

    def mark_queued(self, admitted_s: float) -> None:
        """SUBMITTED -> QUEUED (admission).  Idempotent-guarded."""
        self._require_not_terminal(RequestStatus.QUEUED)
        self.status = RequestStatus.QUEUED
        self.admitted_s = admitted_s

    def mark_rejected(self, reason: str) -> None:
        """Resolve as REJECTED (admission backpressure / quota)."""
        self._require_not_terminal(RequestStatus.REJECTED)
        self.status = RequestStatus.REJECTED
        self.reject_reason = reason

    def mark_completed(
        self,
        completed_s: float,
        batch_id: int,
        batch_size: int,
        report: ExecutionReport,
        result: dict[str, np.ndarray],
        device_id: Optional[int] = None,
    ) -> None:
        """Resolve as COMPLETED with the result and its bill."""
        self._require_not_terminal(RequestStatus.COMPLETED)
        self.status = RequestStatus.COMPLETED
        self.completed_s = completed_s
        self.batch_id = batch_id
        self.batch_size = batch_size
        self.report = report
        self.device_id = device_id
        self._result = result

    def mark_failed(
        self,
        completed_s: float,
        reason: str,
        batch_id: Optional[int] = None,
        batch_size: Optional[int] = None,
        report: Optional[ExecutionReport] = None,
        device_id: Optional[int] = None,
    ) -> None:
        """Resolve as FAILED (bad payload, execution error, retries spent)."""
        self._require_not_terminal(RequestStatus.FAILED)
        self.status = RequestStatus.FAILED
        self.reject_reason = reason
        self.completed_s = completed_s
        if batch_id is not None:
            self.batch_id = batch_id
        if batch_size is not None:
            self.batch_size = batch_size
        if report is not None:
            self.report = report
        if device_id is not None:
            self.device_id = device_id

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def retries(self) -> int:
        """Execution attempts beyond the first (0 on a fault-free path)."""
        return max(0, self.attempts - 1)

    @property
    def latency_s(self) -> Optional[float]:
        """Arrival-to-completion simulated latency (None until completed)."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.arrival_s

    @property
    def queueing_delay_s(self) -> Optional[float]:
        """Time spent waiting (and batching) before dispatch began."""
        if self.dispatched_s is None:
            return None
        return self.dispatched_s - self.arrival_s

    def result(self) -> dict[str, np.ndarray]:
        """Final arrays of the request's program.

        Raises :class:`AdmissionError` if the request was rejected,
        :class:`ServeError` if its execution failed (bad payload) or if
        it has not been dispatched yet.
        """
        if self.status is RequestStatus.REJECTED:
            raise AdmissionError(
                f"request {self.request_id} of tenant {self.tenant!r} was "
                f"rejected: {self.reject_reason}"
            )
        if self.status is RequestStatus.FAILED:
            raise ServeError(
                f"request {self.request_id} of tenant {self.tenant!r} "
                f"failed: {self.reject_reason}"
            )
        if self.status is not RequestStatus.COMPLETED or self._result is None:
            raise ServeError(
                f"request {self.request_id} is {self.status.value}; drive "
                "CimServer.drain() (or step()) before asking for results"
            )
        return self._result

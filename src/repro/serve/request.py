"""Request and handle types of the serving layer.

A tenant's ``submit()`` returns a :class:`RequestHandle` immediately; the
request itself is resolved later, when the server's event loop admits,
batches and dispatches it on the simulated clock.  Handles are future-like
but synchronous: ``result()`` raises if the request is still pending (the
caller must drive :meth:`CimServer.drain` / :meth:`CimServer.step` first)
— there is no blocking, because simulated time only moves when the event
loop moves it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.codegen.executor import ExecutionReport
from repro.serve.errors import AdmissionError, ServeError


class RequestStatus(enum.Enum):
    """Lifecycle of one serving request."""

    SUBMITTED = "submitted"   # accepted by submit(), not yet at its arrival time
    QUEUED = "queued"         # admitted into its tenant queue
    COMPLETED = "completed"   # dispatched and finished; result available
    REJECTED = "rejected"     # refused by admission control
    FAILED = "failed"         # dispatched but raised (bad payload, exec error)


@dataclass
class TenantRequest:
    """Internal record of one submitted offload request."""

    seq: int                       # global submission index (tie-breaker)
    tenant: str
    signature: str                 # batch-compatibility key (see batcher)
    program: object                # compiled IR program
    params: Mapping[str, float]
    arrays: dict[str, np.ndarray]  # private snapshot of the tenant's data
    arrival_s: float
    #: Execution engine the kernel was compiled for (None = executor default).
    engine: Optional[str] = None
    handle: "RequestHandle" = None  # type: ignore[assignment]

    def sort_key(self) -> tuple[float, int]:
        return (self.arrival_s, self.seq)


@dataclass
class RequestHandle:
    """Caller-facing view of one request's lifecycle and result."""

    request_id: int
    tenant: str
    arrival_s: float
    status: RequestStatus = RequestStatus.SUBMITTED
    reject_reason: Optional[str] = None
    #: Simulated times, filled in as the event loop progresses.
    admitted_s: Optional[float] = None
    dispatched_s: Optional[float] = None
    completed_s: Optional[float] = None
    #: Which dispatch batch served this request and how full it was.
    batch_id: Optional[int] = None
    batch_size: Optional[int] = None
    #: Execution accounting of this request alone.
    report: Optional[ExecutionReport] = None
    _result: Optional[dict[str, np.ndarray]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.status in (
            RequestStatus.COMPLETED,
            RequestStatus.REJECTED,
            RequestStatus.FAILED,
        )

    @property
    def latency_s(self) -> Optional[float]:
        """Arrival-to-completion simulated latency (None until completed)."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.arrival_s

    @property
    def queueing_delay_s(self) -> Optional[float]:
        """Time spent waiting (and batching) before dispatch began."""
        if self.dispatched_s is None:
            return None
        return self.dispatched_s - self.arrival_s

    def result(self) -> dict[str, np.ndarray]:
        """Final arrays of the request's program.

        Raises :class:`AdmissionError` if the request was rejected,
        :class:`ServeError` if its execution failed (bad payload) or if
        it has not been dispatched yet.
        """
        if self.status is RequestStatus.REJECTED:
            raise AdmissionError(
                f"request {self.request_id} of tenant {self.tenant!r} was "
                f"rejected: {self.reject_reason}"
            )
        if self.status is RequestStatus.FAILED:
            raise ServeError(
                f"request {self.request_id} of tenant {self.tenant!r} "
                f"failed: {self.reject_reason}"
            )
        if self.status is not RequestStatus.COMPLETED or self._result is None:
            raise ServeError(
                f"request {self.request_id} is {self.status.value}; drive "
                "CimServer.drain() (or step()) before asking for results"
            )
        return self._result

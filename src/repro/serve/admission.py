"""Admission control and fair-share scheduling.

Each tenant gets a bounded FIFO queue and an optional
:class:`TenantQuota`.  A request is admitted when its simulated arrival
time is reached by the event loop; it is rejected — with backpressure
semantics, i.e. the handle resolves to ``REJECTED`` instead of an
exception at submit time — when the tenant's queue is full or a quota is
exhausted.  Quotas can bound accumulated crossbar wear (in bytes, the
device-lifetime currency of Eq. 1 — see
:func:`repro.hw.endurance.wear_budget_bytes`) and accumulated energy.

Dispatch order between tenants is weighted fair sharing: the next batch
seed is taken from the backlogged tenant with the smallest attained
service time divided by its weight (start-time fair queueing with a
virtual-time tie-break on arrival order).  A tenant with queued work and
no attained service is always preferred eventually, so no tenant starves
regardless of how hard the others flood the server; weights implement
priorities (weight 2 receives twice the service share under contention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.serve.accounting import AccountingLedger
from repro.serve.request import TenantRequest


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits of one tenant.

    ``max_queue_depth`` bounds the number of admitted-but-undispatched
    requests (backpressure).  ``wear_budget_bytes`` bounds the tenant's
    accumulated crossbar write volume; derive it from a minimum device
    lifetime with :func:`repro.hw.endurance.wear_budget_bytes`.
    ``energy_budget_j`` bounds accumulated total energy.  ``weight``
    scales the tenant's fair share (must be positive).
    """

    max_queue_depth: int = 32
    weight: float = 1.0
    wear_budget_bytes: Optional[float] = None
    energy_budget_j: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.wear_budget_bytes is not None and self.wear_budget_bytes < 0:
            raise ValueError("wear budget cannot be negative")
        if self.energy_budget_j is not None and self.energy_budget_j < 0:
            raise ValueError("energy budget cannot be negative")


class AdmissionController:
    """Bounded per-tenant queues + quota checks + fair-share pick."""

    def __init__(
        self,
        ledger: AccountingLedger,
        default_quota: Optional[TenantQuota] = None,
    ):
        self.ledger = ledger
        self.default_quota = default_quota or TenantQuota()
        self.quotas: dict[str, TenantQuota] = {}
        self.queues: dict[str, list[TenantRequest]] = {}
        #: Attained service time per tenant, the fair-share currency.
        self.attained_s: dict[str, float] = {}
        #: Graceful degradation: the fleet tier shrinks every tenant's
        #: effective queue bound by this factor as devices die, so the
        #: backlog the (smaller) fleet must eventually serve stays bounded
        #: instead of collapsing into unbounded queueing delay.
        self.depth_scale: float = 1.0

    # ------------------------------------------------------------------
    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self.quotas[tenant] = quota

    def quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def queue(self, tenant: str) -> list[TenantRequest]:
        return self.queues.setdefault(tenant, [])

    def queue_depths(self) -> dict[str, int]:
        return {tenant: len(queue) for tenant, queue in self.queues.items()}

    @property
    def total_queued(self) -> int:
        return sum(len(queue) for queue in self.queues.values())

    # ------------------------------------------------------------------
    # Admission (at simulated arrival time)
    # ------------------------------------------------------------------
    def admit(self, request: TenantRequest, now_s: float) -> bool:
        """Admit *request* into its tenant queue, or reject it.

        Returns ``True`` when admitted.  On rejection the handle is
        resolved to ``REJECTED`` with the reason and the rejection is
        counted against the tenant's account.
        """
        quota = self.quota(request.tenant)
        queue = self.queue(request.tenant)
        reason: Optional[str] = None
        effective_depth = self.effective_queue_depth(quota)
        if len(queue) >= effective_depth:
            reason = (
                f"queue full ({len(queue)}/{effective_depth} requests"
                + (
                    f", tightened from {quota.max_queue_depth} at "
                    f"{self.depth_scale:.2f} fleet capacity)"
                    if effective_depth != quota.max_queue_depth
                    else ")"
                )
            )
        else:
            account = self.ledger.account(request.tenant)
            if (
                quota.wear_budget_bytes is not None
                and account.wear_bytes >= quota.wear_budget_bytes
            ):
                reason = (
                    f"wear quota exhausted ({account.wear_bytes} B written "
                    f">= budget {quota.wear_budget_bytes:.0f} B)"
                )
            elif (
                quota.energy_budget_j is not None
                and account.energy_j >= quota.energy_budget_j
            ):
                reason = (
                    f"energy quota exhausted ({account.energy_j:.3e} J "
                    f">= budget {quota.energy_budget_j:.3e} J)"
                )
        if reason is not None:
            request.handle.mark_rejected(reason)
            self.ledger.record_rejection(request.tenant)
            return False
        request.handle.mark_queued(now_s)
        queue.append(request)
        return True

    def effective_queue_depth(self, quota: TenantQuota) -> int:
        """Queue bound after graceful-degradation tightening (never < 1,
        so a shrunken fleet still makes progress request by request)."""
        return max(1, math.ceil(quota.max_queue_depth * self.depth_scale))

    def requeue(self, request: TenantRequest) -> None:
        """Put an already-admitted request back in its tenant queue (fleet
        retry / lease migration).  Bypasses quota checks — admission was
        already granted; re-judging it would turn a device fault into a
        spurious rejection."""
        self.queue(request.tenant).append(request)

    # ------------------------------------------------------------------
    # Fair-share scheduling
    # ------------------------------------------------------------------
    def pick_seed(self) -> Optional[TenantRequest]:
        """Head request of the backlogged tenant with the least attained
        weighted service (deterministic: ties break on the tenant's
        earliest queued request, then on the tenant name)."""
        best: Optional[tuple[float, tuple[float, int], str]] = None
        best_tenant: Optional[str] = None
        for tenant, queue in sorted(self.queues.items()):
            if not queue:
                continue
            weight = self.quota(tenant).weight
            virtual = self.attained_s.get(tenant, 0.0) / weight
            head = min(queue, key=TenantRequest.sort_key)
            key = (virtual, head.sort_key(), tenant)
            if best is None or key < best:
                best = key
                best_tenant = tenant
        if best_tenant is None:
            return None
        return min(self.queue(best_tenant), key=TenantRequest.sort_key)

    def charge_service(self, tenant: str, service_s: float) -> None:
        self.attained_s[tenant] = self.attained_s.get(tenant, 0.0) + service_s

    def remove(self, requests: list[TenantRequest]) -> None:
        """Drop dispatched requests from their queues."""
        chosen = {id(request) for request in requests}
        for tenant in {request.tenant for request in requests}:
            queue = self.queue(tenant)
            self.queues[tenant] = [
                request for request in queue if id(request) not in chosen
            ]

    def queued_requests(self) -> list[TenantRequest]:
        return [request for queue in self.queues.values() for request in queue]

"""The serving layer's simulated clock.

Everything in the emulated stack is deterministic, so the server does not
need real concurrency: it advances one virtual clock through arrival,
batching-window and service events in order.  Two runs over the same
submission sequence therefore produce identical schedules, timelines and
accounting — the property every serving test and benchmark leans on.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start_s: float = 0.0):
        if start_s < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance(self, delta_s: float) -> float:
        """Move time forward by *delta_s* (>= 0); returns the new time."""
        if delta_s < 0:
            raise ValueError(f"cannot advance the clock by {delta_s}")
        self._now_s += delta_s
        return self._now_s

    def advance_to(self, time_s: float) -> float:
        """Move time forward to *time_s*; moving backwards is a no-op
        (events that already happened never rewind the clock)."""
        if time_s > self._now_s:
            self._now_s = time_s
        return self._now_s

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now_s:.9f}s)"

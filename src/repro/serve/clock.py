"""The serving layer's clocks: one protocol, two implementations.

Everything in the emulated stack is deterministic, so the simulated
serving tiers do not need real concurrency: they advance one
:class:`VirtualClock` through arrival, batching-window and service events
in order.  Two runs over the same submission sequence therefore produce
identical schedules, timelines and accounting — the property every
serving test and benchmark leans on.

The wall-clock gateway (:mod:`repro.gateway`) runs the same dispatch
machinery against real time: :class:`WallClock` implements the same
:class:`Clock` protocol over ``time.monotonic`` so timestamps, pacing and
latency measurement read identically at both tiers, while ``advance``
becomes an actual sleep (real time cannot be skipped, only waited out).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Monotonic time in seconds — simulated or real.

    ``advance``/``advance_to`` move time forward: the virtual
    implementation jumps instantly, the wall implementation sleeps.  Both
    are monotonic (moving backwards is a no-op) and both report the
    current time through :attr:`now_s`.
    """

    @property
    def now_s(self) -> float: ...

    def advance(self, delta_s: float) -> float: ...

    def advance_to(self, time_s: float) -> float: ...


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start_s: float = 0.0):
        if start_s < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance(self, delta_s: float) -> float:
        """Move time forward by *delta_s* (>= 0); returns the new time."""
        if delta_s < 0:
            raise ValueError(f"cannot advance the clock by {delta_s}")
        self._now_s += delta_s
        return self._now_s

    def advance_to(self, time_s: float) -> float:
        """Move time forward to *time_s*; moving backwards is a no-op
        (events that already happened never rewind the clock)."""
        if time_s > self._now_s:
            self._now_s = time_s
        return self._now_s

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now_s:.9f}s)"


class WallClock:
    """Real monotonic time, zeroed at construction.

    ``now_s`` is seconds since the clock was created (so wall timestamps
    read like virtual ones: a run starts near t=0).  ``advance`` and
    ``advance_to`` *sleep* — real time cannot be skipped — which is what
    the open-loop load generator leans on to pace arrivals.
    """

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    @property
    def now_s(self) -> float:
        return time.monotonic() - self._epoch

    def advance(self, delta_s: float) -> float:
        """Sleep *delta_s* seconds (>= 0); returns the new time."""
        if delta_s < 0:
            raise ValueError(f"cannot advance the clock by {delta_s}")
        if delta_s > 0:
            time.sleep(delta_s)
        return self.now_s

    def advance_to(self, time_s: float) -> float:
        """Sleep until *time_s*; times already past return immediately."""
        remaining = time_s - self.now_s
        if remaining > 0:
            time.sleep(remaining)
        return self.now_s

    def __repr__(self) -> str:
        return f"WallClock(now={self.now_s:.6f}s)"

"""Serving metrics: queue depths, batch occupancy, latency percentiles,
compile-cache hit rates.

The registry is passive — the server pushes observations into it as the
event loop progresses — and :meth:`MetricsRegistry.snapshot` folds the
state into one plain dictionary (JSON-ready, used by the benchmark
harness and by operators' dashboards in a real deployment).  Percentiles
are computed on the simulated latencies with linear interpolation, the
same convention as ``numpy.percentile``; everything is deterministic
because the underlying clock is.
"""

from __future__ import annotations

import math
from typing import Optional


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) without NumPy —
    the registry must stay importable in stripped-down tooling."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class MetricsRegistry:
    """Aggregated serving statistics."""

    def __init__(self) -> None:
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.fused_batches = 0
        self.batch_sizes: list[float] = []
        self.latencies_s: list[float] = []
        self.queueing_delays_s: list[float] = []
        self.tenant_latencies_s: dict[str, list[float]] = {}
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0
        self.peak_queue_depth = 0
        self.peak_queue_tenant: Optional[str] = None
        # Fleet health (populated only by the fleet tier).
        self.device_states: dict[int, str] = {}
        self.retries = 0
        self.migrations = 0
        self.faults_injected = 0
        self.faults_by_op: dict[str, int] = {}
        self.faults_recovered = 0
        self.faults_unrecovered = 0
        # Gateway resilience (populated only by the wall-clock tier).
        self.hangs_detected = 0
        self.respawns = 0
        self.spares_promoted = 0
        self.slots_quarantined = 0
        self.deadline_shed = 0
        self.deadline_expired = 0
        self.corrupt_frames = 0
        self.late_frames_ignored = 0

    # ------------------------------------------------------------------
    # Observations pushed by the server
    # ------------------------------------------------------------------
    def observe_submit(self) -> None:
        self.submitted += 1

    def observe_admission(self, admitted: bool) -> None:
        if admitted:
            self.admitted += 1
        else:
            self.rejected += 1

    def observe_queue_depths(self, depths: dict[str, int]) -> None:
        for tenant, depth in depths.items():
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
                self.peak_queue_tenant = tenant

    def observe_batch(self, size: int, fused: bool) -> None:
        self.batches += 1
        self.batch_sizes.append(float(size))
        if fused:
            self.fused_batches += 1

    def observe_completion(
        self, tenant: str, latency_s: float, queueing_delay_s: float
    ) -> None:
        self.completed += 1
        self.latencies_s.append(latency_s)
        self.queueing_delays_s.append(queueing_delay_s)
        self.tenant_latencies_s.setdefault(tenant, []).append(latency_s)

    def observe_failure(self) -> None:
        self.failed += 1

    # ------------------------------------------------------------------
    # Fleet-tier observations
    # ------------------------------------------------------------------
    def observe_device_state(self, device_id: int, state: str) -> None:
        self.device_states[device_id] = state

    def observe_fault(self, op: str) -> None:
        self.faults_injected += 1
        self.faults_by_op[op] = self.faults_by_op.get(op, 0) + 1

    def observe_retry(self) -> None:
        self.retries += 1

    def observe_migration(self) -> None:
        self.migrations += 1

    def observe_recovery(self) -> None:
        """A previously-faulted request was eventually served to success."""
        self.faults_recovered += 1

    def observe_unrecovered(self) -> None:
        """A faulted request exhausted its retries (or had no device left)."""
        self.faults_unrecovered += 1

    def observe_compile(self, hits_delta: int, misses_delta: int) -> None:
        self.compile_cache_hits += hits_delta
        self.compile_cache_misses += misses_delta

    # ------------------------------------------------------------------
    # Gateway-resilience observations (wall-clock tier only)
    # ------------------------------------------------------------------
    def observe_hang_detected(self) -> None:
        """The watchdog declared a worker wedged and killed it."""
        self.hangs_detected += 1

    def observe_respawn(self) -> None:
        """A dead worker slot was refilled with a fresh process."""
        self.respawns += 1

    def observe_spare_promoted(self) -> None:
        """A pre-spawned hot spare took over a dead worker's slot."""
        self.spares_promoted += 1

    def observe_slot_quarantined(self) -> None:
        """A crash-looping worker slot exhausted its respawn budget."""
        self.slots_quarantined += 1

    def observe_deadline_shed(self) -> None:
        """A request's deadline passed before dispatch (never ran)."""
        self.deadline_shed += 1

    def observe_deadline_expired(self) -> None:
        """A request's deadline expired while it was in flight."""
        self.deadline_expired += 1

    def observe_corrupt_frame(self) -> None:
        """A worker shipped an undecodable response frame."""
        self.corrupt_frames += 1

    def observe_late_frame(self) -> None:
        """A response frame arrived from a worker already declared dead."""
        self.late_frames_ignored += 1

    # ------------------------------------------------------------------
    @property
    def mean_batch_occupancy(self) -> float:
        """Mean requests per dispatch batch (1.0 = no coalescing)."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def compile_cache_hit_rate(self) -> float:
        total = self.compile_cache_hits + self.compile_cache_misses
        if total == 0:
            return 0.0
        return self.compile_cache_hits / total

    def latency_percentile_s(self, q: float) -> float:
        return percentile(self.latencies_s, q)

    # ------------------------------------------------------------------
    def snapshot(self, queue_depths: Optional[dict[str, int]] = None) -> dict:
        """One JSON-ready view of every serving metric."""
        snap: dict = {
            "requests": {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
            },
            "batching": {
                "batches": self.batches,
                "fused_batches": self.fused_batches,
                "mean_occupancy": round(self.mean_batch_occupancy, 3),
                "max_size": max(self.batch_sizes) if self.batch_sizes else 0,
            },
            "queues": {
                "current_depths": dict(queue_depths or {}),
                "peak_depth": self.peak_queue_depth,
                "peak_tenant": self.peak_queue_tenant,
            },
            "compile_cache": {
                "hits": self.compile_cache_hits,
                "misses": self.compile_cache_misses,
                "hit_rate": round(self.compile_cache_hit_rate, 4),
            },
        }
        if self.device_states:
            states = list(self.device_states.values())
            snap["fleet"] = {
                "devices": {
                    str(device_id): state
                    for device_id, state in sorted(self.device_states.items())
                },
                "up": states.count("up"),
                "quarantined": states.count("quarantined"),
                "drained": states.count("drained"),
                "retries": self.retries,
                "migrations": self.migrations,
                "faults_injected": self.faults_injected,
                "faults_by_op": dict(sorted(self.faults_by_op.items())),
                "faults_recovered": self.faults_recovered,
                "faults_unrecovered": self.faults_unrecovered,
            }
        resilience = {
            "hangs_detected": self.hangs_detected,
            "respawns": self.respawns,
            "spares_promoted": self.spares_promoted,
            "slots_quarantined": self.slots_quarantined,
            "deadline_shed": self.deadline_shed,
            "deadline_expired": self.deadline_expired,
            "corrupt_frames": self.corrupt_frames,
            "late_frames_ignored": self.late_frames_ignored,
        }
        if any(resilience.values()):
            # Only when something fired: the simulated tiers never touch
            # these counters and their golden snapshots must stay stable.
            snap["resilience"] = resilience
        if self.latencies_s:
            snap["latency_s"] = {
                "p50": self.latency_percentile_s(50),
                "p99": self.latency_percentile_s(99),
                "mean": sum(self.latencies_s) / len(self.latencies_s),
                "max": max(self.latencies_s),
            }
            snap["queueing_delay_s"] = {
                "p50": percentile(self.queueing_delays_s, 50),
                "p99": percentile(self.queueing_delays_s, 99),
            }
            snap["tenant_latency_p99_s"] = {
                tenant: percentile(values, 99)
                for tenant, values in sorted(self.tenant_latencies_s.items())
            }
        return snap

"""Per-tenant accounting: latency, energy and crossbar wear.

Every dispatched request produces one :class:`RequestUsage` record, built
from the same measured deltas (driver ledger, accelerator run stats) that
the :class:`~repro.codegen.executor.ExecutionReport` is built from.  The
records *partition* the device's activity: each accelerator run, each
charged host instruction and each programmed crossbar cell belongs to
exactly one request, so per-tenant sums reconcile exactly with the device
totals — integer wear counters by ``==``, energy roll-ups via
:func:`math.fsum` (correctly rounded, hence order-independent over the
same records).

Wear is expressed in bytes written to the crossbar (one byte per
programmed 8-bit cell, the same convention as
:mod:`repro.eval.lifetime`), which plugs straight into the Eq. 1 lifetime
model of :mod:`repro.hw.endurance`: a tenant's implied device lifetime is
``cell_endurance * crossbar_size / tenant_write_traffic``, and admission
quotas are expressed as byte budgets derived from a minimum acceptable
lifetime (:func:`repro.hw.endurance.wear_budget_bytes`).

At the fleet tier every record carries a ``device_id``, and work a device
performed for an attempt that was then lost to an injected fault (the
device died before the response left it) is *compensated*: recorded as a
:class:`FaultCompensation` attributed to the fault, never billed to the
tenant.  Per-device physical ledgers then still partition exactly —
``tenant bills + compensations + housekeeping == device totals`` on every
device (:meth:`AccountingLedger.verify_fleet_partition`) — with no lost
and no double-billed work even when requests are retried across devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.hw.endurance import EnduranceTracker, system_lifetime_years


@dataclass(frozen=True)
class RequestUsage:
    """Measured resource usage of one dispatched request."""

    request_id: int
    tenant: str
    batch_id: int
    arrival_s: float
    completed_s: float
    service_s: float                  # simulated wall time spent serving it
    latency_s: float                  # arrival -> completion (incl. queueing)
    host_energy_j: float              # host-resident loop nests
    offload_energy_j: float           # driver calls, copies, flushes, polling
    accelerator_energy_j: float
    crossbar_cell_writes: int
    crossbar_write_ops: int
    gemv_count: int
    macs: int
    dma_bytes: int
    #: Fleet tier: device that performed (and is debited for) the work.
    device_id: int = 0

    @property
    def energy_j(self) -> float:
        return self.host_energy_j + self.offload_energy_j + self.accelerator_energy_j

    @property
    def wear_bytes(self) -> int:
        """Crossbar write volume (one byte per programmed 8-bit cell)."""
        return self.crossbar_cell_writes


@dataclass(frozen=True)
class FaultCompensation:
    """Physical work a device performed for an attempt lost to a fault.

    The work happened (the device's wear counters and energy ledger moved)
    but the tenant is never billed for it — the request was retried and
    billed exactly once, on the attempt that actually produced its
    response.  Compensation records keep the per-device partition exact:
    they absorb the faulted attempt's measured deltas on the fault's side
    of the ledger.
    """

    request_id: int
    tenant: str
    device_id: int
    batch_id: int
    at_s: float                       # device time the fault surfaced
    reason: str                       # str(fault), e.g. "LeaseAborted: ..."
    op: str                           # faulted operation class
    offload_energy_j: float
    accelerator_energy_j: float
    crossbar_cell_writes: int
    crossbar_write_ops: int
    gemv_count: int
    macs: int
    dma_bytes: int

    @property
    def energy_j(self) -> float:
        return self.offload_energy_j + self.accelerator_energy_j

    @property
    def wear_bytes(self) -> int:
        return self.crossbar_cell_writes


@dataclass
class TenantAccount:
    """Running account of one tenant's usage."""

    tenant: str
    usages: list[RequestUsage] = field(default_factory=list)
    rejected: int = 0

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.usages)

    @property
    def energy_j(self) -> float:
        return math.fsum(u.energy_j for u in self.usages)

    @property
    def accelerator_energy_j(self) -> float:
        return math.fsum(u.accelerator_energy_j for u in self.usages)

    @property
    def service_s(self) -> float:
        return math.fsum(u.service_s for u in self.usages)

    @property
    def wear_bytes(self) -> int:
        return sum(u.wear_bytes for u in self.usages)

    @property
    def crossbar_write_ops(self) -> int:
        return sum(u.crossbar_write_ops for u in self.usages)

    @property
    def gemv_count(self) -> int:
        return sum(u.gemv_count for u in self.usages)

    @property
    def macs(self) -> int:
        return sum(u.macs for u in self.usages)

    @property
    def dma_bytes(self) -> int:
        return sum(u.dma_bytes for u in self.usages)

    def latencies_s(self) -> list[float]:
        return [u.latency_s for u in self.usages]

    # ------------------------------------------------------------------
    def endurance_tracker(self, crossbar_size_bytes: float) -> EnduranceTracker:
        """This tenant's wear folded into the Eq. 1 tracker of
        :mod:`repro.hw.endurance` (write volume over busy service time)."""
        tracker = EnduranceTracker(crossbar_size_bytes=crossbar_size_bytes)
        for usage in self.usages:
            tracker.record_kernel(float(usage.wear_bytes), usage.service_s)
        return tracker

    def implied_lifetime_years(
        self,
        cell_endurance_writes: float,
        crossbar_size_bytes: float,
        elapsed_s: Optional[float] = None,
    ) -> float:
        """Device lifetime (years) if the whole crossbar saw only this
        tenant's write traffic.  With ``elapsed_s`` the traffic is averaged
        over that wall-clock window (the serving view: a tenant that is
        mostly idle wears the device less); otherwise over the tenant's
        busy service time (the worst-case sustained view)."""
        if elapsed_s is None:
            return self.endurance_tracker(crossbar_size_bytes).lifetime_years(
                cell_endurance_writes
            )
        if elapsed_s <= 0:
            return float("inf")
        traffic = self.wear_bytes / elapsed_s
        if traffic == 0.0:
            return float("inf")
        return system_lifetime_years(
            cell_endurance_writes, crossbar_size_bytes, traffic
        )


class AccountingLedger:
    """All tenants' accounts plus the device roll-up they partition."""

    def __init__(self, crossbar_size_bytes: float):
        self.crossbar_size_bytes = crossbar_size_bytes
        self.tenants: dict[str, TenantAccount] = {}
        #: Host-side housekeeping the server performs between requests
        #: (releasing lease buffers), charged to the device ledger but not
        #: to any single tenant request.
        self.housekeeping_energy_j_records: list[float] = []
        #: Device that performed each housekeeping record (parallel list).
        self.housekeeping_device_ids: list[int] = []
        #: Work lost to injected faults — reconciled here, never billed.
        self.compensations: list[FaultCompensation] = []

    # ------------------------------------------------------------------
    def account(self, tenant: str) -> TenantAccount:
        if tenant not in self.tenants:
            self.tenants[tenant] = TenantAccount(tenant=tenant)
        return self.tenants[tenant]

    def record(self, usage: RequestUsage) -> None:
        self.account(usage.tenant).usages.append(usage)

    def record_rejection(self, tenant: str) -> None:
        self.account(tenant).rejected += 1

    def record_housekeeping(self, energy_j: float, device_id: int = 0) -> None:
        if energy_j != 0.0:
            self.housekeeping_energy_j_records.append(energy_j)
            self.housekeeping_device_ids.append(device_id)

    def record_compensation(self, compensation: FaultCompensation) -> None:
        self.compensations.append(compensation)

    # ------------------------------------------------------------------
    # Device totals (the partition view)
    # ------------------------------------------------------------------
    def all_usages(self) -> list[RequestUsage]:
        return [u for account in self.tenants.values() for u in account.usages]

    def device_usages(self, device_id: int) -> list[RequestUsage]:
        return [u for u in self.all_usages() if u.device_id == device_id]

    def device_compensations(self, device_id: int) -> list[FaultCompensation]:
        return [c for c in self.compensations if c.device_id == device_id]

    @property
    def device_energy_j(self) -> float:
        """Total energy across every request of every tenant plus server
        housekeeping and fault compensations.  ``fsum`` over the
        underlying records makes this identical to summing the per-tenant
        accounts in any order."""
        return math.fsum(
            [u.energy_j for u in self.all_usages()]
            + [c.energy_j for c in self.compensations]
            + self.housekeeping_energy_j_records
        )

    @property
    def device_accelerator_energy_j(self) -> float:
        return math.fsum(
            [u.accelerator_energy_j for u in self.all_usages()]
            + [c.accelerator_energy_j for c in self.compensations]
        )

    @property
    def device_wear_bytes(self) -> int:
        return sum(u.wear_bytes for u in self.all_usages()) + sum(
            c.wear_bytes for c in self.compensations
        )

    @property
    def device_crossbar_write_ops(self) -> int:
        return sum(u.crossbar_write_ops for u in self.all_usages()) + sum(
            c.crossbar_write_ops for c in self.compensations
        )

    @property
    def device_gemv_count(self) -> int:
        return sum(u.gemv_count for u in self.all_usages()) + sum(
            c.gemv_count for c in self.compensations
        )

    @property
    def device_macs(self) -> int:
        return sum(u.macs for u in self.all_usages()) + sum(
            c.macs for c in self.compensations
        )

    @property
    def housekeeping_energy_j(self) -> float:
        return math.fsum(self.housekeeping_energy_j_records)

    @property
    def compensated_energy_j(self) -> float:
        return math.fsum(c.energy_j for c in self.compensations)

    @property
    def compensated_wear_bytes(self) -> int:
        return sum(c.wear_bytes for c in self.compensations)

    # ------------------------------------------------------------------
    def verify_partition(self, accelerator) -> dict[str, bool]:
        """Cross-check the accounting partition against the accelerator's
        own ledgers.  Integer wear/work counters must agree exactly; the
        energy roll-up (floats accumulated in a different order by the
        hardware ledger) must agree to float precision.  Compensated
        (faulted-attempt) work counts toward the device totals — the
        device physically performed it — but never toward a tenant."""
        acc_energy = accelerator.total_energy_j()
        own_energy = self.device_accelerator_energy_j
        checks = {
            "cell_writes": self.device_wear_bytes == accelerator.total_cell_writes(),
            "macs": self.device_macs == accelerator.total_macs(),
            "gemv_count": self.device_gemv_count
            == sum(run.gemv_count for run in accelerator.completed_runs),
            "write_ops": self.device_crossbar_write_ops
            == sum(run.crossbar_write_ops for run in accelerator.completed_runs),
            "energy": math.isclose(
                own_energy, acc_energy, rel_tol=1e-9, abs_tol=1e-18
            ),
        }
        return checks

    def verify_fleet_partition(self, accelerators: Mapping[int, object]) -> dict[str, bool]:
        """Fleet-wide exactly-once check: on *every* device, billed tenant
        work plus fault compensations reconciles exactly with that
        device's physical ledgers, and the per-device records partition
        the fleet totals (nothing lost, nothing double-billed).

        ``accelerators`` maps ``device_id`` to the device's accelerator
        (its hardware ledger of record).  Integer counters compare by
        ``==``; energies via order-independent ``fsum`` to float
        precision.
        """
        checks: dict[str, bool] = {}
        for device_id, accelerator in sorted(accelerators.items()):
            usages = self.device_usages(device_id)
            comps = self.device_compensations(device_id)
            prefix = f"device{device_id}"
            checks[f"{prefix}.cell_writes"] = (
                sum(u.wear_bytes for u in usages) + sum(c.wear_bytes for c in comps)
                == accelerator.total_cell_writes()
            )
            checks[f"{prefix}.macs"] = (
                sum(u.macs for u in usages) + sum(c.macs for c in comps)
                == accelerator.total_macs()
            )
            checks[f"{prefix}.gemv_count"] = sum(u.gemv_count for u in usages) + sum(
                c.gemv_count for c in comps
            ) == sum(run.gemv_count for run in accelerator.completed_runs)
            checks[f"{prefix}.write_ops"] = sum(
                u.crossbar_write_ops for u in usages
            ) + sum(c.crossbar_write_ops for c in comps) == sum(
                run.crossbar_write_ops for run in accelerator.completed_runs
            )
            checks[f"{prefix}.energy"] = math.isclose(
                math.fsum(
                    [u.accelerator_energy_j for u in usages]
                    + [c.accelerator_energy_j for c in comps]
                ),
                accelerator.total_energy_j(),
                rel_tol=1e-9,
                abs_tol=1e-18,
            )
        # Every record must belong to a known device (no orphaned bills).
        known = set(accelerators)
        checks["no_orphan_records"] = all(
            u.device_id in known for u in self.all_usages()
        ) and all(c.device_id in known for c in self.compensations)
        # The per-device partition must also exhaust the fleet totals.
        checks["fleet_wear_total"] = self.device_wear_bytes == sum(
            accelerators[d].total_cell_writes() for d in accelerators
        )
        checks["fleet_energy_total"] = math.isclose(
            self.device_accelerator_energy_j,
            math.fsum(accelerators[d].total_energy_j() for d in accelerators),
            rel_tol=1e-9,
            abs_tol=1e-18,
        )
        return checks

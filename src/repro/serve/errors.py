"""Errors raised by the multi-tenant serving layer and the fleet tier."""

from __future__ import annotations

from typing import Optional


class ServeError(RuntimeError):
    """Invalid serving-layer usage (bad submission, unresolved handle, ...)."""


class AdmissionError(ServeError):
    """A request was refused by the admission controller (backpressure or
    an exhausted tenant quota).  Carried on the rejected handle; raised
    when the caller asks the handle for its result."""


class HandleStateError(ServeError):
    """An illegal :class:`~repro.serve.request.RequestHandle` transition —
    resolving an already-terminal handle (e.g. a retry racing a fault
    abort).  Raised instead of silently overwriting status or billing."""


class DeviceFault(ServeError):
    """An injected (or emulated) device-level failure.

    ``fatal`` faults take the whole device down (the fleet quarantines it
    and migrates its in-flight lease); transient faults fail only the one
    operation and the request is retried with backoff.  ``op`` names the
    faulted operation class (``"dma"``, ``"compile"``, ``"dispatch"`` —
    or ``"device"`` for whole-device deaths).
    """

    def __init__(
        self,
        message: str,
        device_id: int,
        op: str = "dispatch",
        fatal: bool = False,
    ):
        super().__init__(message)
        self.device_id = device_id
        self.op = op
        self.fatal = fatal


class LeaseAborted(DeviceFault):
    """The device died mid-lease: the current attempt's work is lost
    (compensated in the ledger, never billed to the tenant) and every
    unserved request of the lease migrates to a healthy device."""

    def __init__(self, message: str, device_id: int, op: str = "device"):
        super().__init__(message, device_id=device_id, op=op, fatal=True)


class RetryExhausted(ServeError):
    """A request faulted on every allowed attempt; its handle resolves to
    ``FAILED`` with the last fault as the reason."""

    def __init__(self, message: str, attempts: int, last_fault: Optional[DeviceFault] = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_fault = last_fault

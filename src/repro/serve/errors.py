"""Errors raised by the multi-tenant serving layer."""

from __future__ import annotations


class ServeError(RuntimeError):
    """Invalid serving-layer usage (bad submission, unresolved handle, ...)."""


class AdmissionError(ServeError):
    """A request was refused by the admission controller (backpressure or
    an exhausted tenant quota).  Carried on the rejected handle; raised
    when the caller asks the handle for its result."""

"""The multi-tenant CIM serving layer.

:class:`CimServer` multiplexes offload requests from many logical tenants
onto one emulated CIM system under a single simulated clock.  The paper's
runtime (Listing 1) assumes one host program driving one device;
the server turns that stack into a shared service:

* ``submit(tenant, kernel, params, arrays)`` compiles the kernel through
  one shared, thread-safe :class:`~repro.compiler.cache.KernelCompileCache`
  and returns a future-style :class:`~repro.serve.request.RequestHandle`;
* the **admission controller** applies per-tenant bounded queues,
  backpressure and lifetime-denominated wear/energy quotas
  (:mod:`repro.serve.admission`);
* the **dynamic batcher** coalesces compatible requests inside a
  configurable simulated batching window into one crossbar *lease*
  (:mod:`repro.serve.batcher`): the stationary operand is programmed
  once, the batch streams against the resident operand;
* the **event loop** (:meth:`step` / :meth:`drain`) advances the
  simulated clock deterministically through arrivals, windows and
  dispatches, leasing the device (and its ``num_tiles`` hardware lanes —
  each dispatch shards across them, see :mod:`repro.hw.scheduler`) to one
  batch at a time and recording lease spans on a serving
  :class:`~repro.hw.timeline.Timeline`;
* **per-tenant accounting** (:mod:`repro.serve.accounting`) partitions
  every joule, second and programmed crossbar cell over the requests that
  caused them, so tenant bills reconcile exactly with the device ledgers
  and quotas can be expressed in Eq. 1 device-lifetime terms;
* the **metrics registry** (:mod:`repro.serve.metrics`) snapshots queue
  depths, batch occupancy, latency percentiles and cache hit rates.

Functional results are bit-identical per request to a direct
:class:`~repro.codegen.executor.OffloadExecutor` execution of the same
program — batching changes scheduling, latency and wear accounting, never
values.  Every run is reproducible: same submissions, same schedule.

The server owns its system's runtime session and releases all device
buffers between requests (crossbar leases never leak CMA memory);
:meth:`shutdown` — or leaving the server's context — tears the session
down via :meth:`~repro.runtime.api.CimRuntime.cim_shutdown`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

import numpy as np

from repro.codegen.executor import OffloadExecutor
from repro.compiler.cache import KernelCompileCache, compile_fingerprint
from repro.compiler.driver import TdoCimCompiler
from repro.compiler.options import CompileOptions
from repro.hw.timeline import Timeline
from repro.ir.program import Program
from repro.serve.accounting import AccountingLedger
from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.batcher import DynamicBatcher, batch_signature
from repro.serve.clock import VirtualClock
from repro.serve.dispatch import LeaseExecutor
from repro.serve.errors import ServeError
from repro.serve.metrics import MetricsRegistry
from repro.serve.request import RequestHandle, TenantRequest
from repro.system.config import SystemConfig
from repro.system.system import CimSystem


@dataclass
class ServerConfig:
    """Tuning knobs of one :class:`CimServer`."""

    #: CIM tiles the device shards each dispatch over (PR 2 lanes).
    num_tiles: int = 1
    #: Simulated batching window: a batch seeded at time t dispatches at
    #: t + window, collecting compatible arrivals in between.
    batch_window_s: float = 100e-6
    #: Hard cap on requests per dispatch batch.
    max_batch_size: int = 16
    #: Admission defaults for tenants without an explicit quota.
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: Scrub crossbar residency between leases (tenant isolation: one
    #: batch never inherits another's programmed operand).
    scrub_leases: bool = True
    #: Compiler options for ``submit`` calls that pass mini-C source.
    compile_options: CompileOptions = field(default_factory=CompileOptions)
    #: Optional crossbar geometry overrides for the private system.
    crossbar_rows: Optional[int] = None
    crossbar_cols: Optional[int] = None
    crossbar_mode: str = "ideal"


class CimServer:
    """Serve offload requests from many tenants on one emulated device."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        system: Optional[CimSystem] = None,
        compile_cache: Optional[KernelCompileCache] = None,
    ):
        self.config = config or ServerConfig()
        self._owns_system = system is None
        if system is None:
            system = CimSystem(
                SystemConfig(
                    num_tiles=self.config.num_tiles,
                    crossbar_rows=self.config.crossbar_rows,
                    crossbar_cols=self.config.crossbar_cols,
                    crossbar_mode=self.config.crossbar_mode,
                )
            )
        elif system.config.num_tiles != self.config.num_tiles:
            raise ServeError(
                f"config.num_tiles={self.config.num_tiles} conflicts with "
                f"the given system (num_tiles={system.config.num_tiles})"
            )
        self.system = system
        self.executor = OffloadExecutor(system)
        self.compile_cache = compile_cache or KernelCompileCache()
        self.compiler = TdoCimCompiler(
            self.config.compile_options, cache=self.compile_cache
        )
        self.clock = VirtualClock()
        tile = system.accelerator.tile
        # One byte per programmed 8-bit cell, the lifetime-model currency.
        self.ledger = AccountingLedger(crossbar_size_bytes=tile.rows * tile.cols)
        self.admission = AdmissionController(
            self.ledger, self.config.default_quota
        )
        self.batcher = DynamicBatcher(
            window_s=self.config.batch_window_s,
            max_batch_size=self.config.max_batch_size,
        )
        self.metrics = MetricsRegistry()
        #: Serving-level lease/occupancy timeline (one event per lease).
        self.timeline = Timeline()
        #: The dispatch half of the server (shared with the fleet tier).
        self.lease_executor = LeaseExecutor(
            system=self.system,
            executor=self.executor,
            clock=self.clock,
            ledger=self.ledger,
            metrics=self.metrics,
            timeline=self.timeline,
            scrub_leases=self.config.scrub_leases,
            charge_service=self.admission.charge_service,
        )
        # Submissions are enforced non-decreasing in arrival time, so the
        # arrival queue is consumed strictly from the left.
        self._arrivals: deque[TenantRequest] = deque()
        self._seq = 0
        self._batch_counter = 0
        self._last_arrival_s = 0.0
        self._closed = False
        self.system.runtime.cim_init(0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(self) -> None:
        """Resolve nothing further; release the device session.

        Pending (undispatched) requests stay pending — the simulated
        service simply stops.  Idempotent.  The runtime session is torn
        down only when the server built its own system; a caller-provided
        :class:`CimSystem` stays usable (its leased buffers are released,
        its runtime is not shut down).
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_system:
            self.system.runtime.cim_shutdown()
        else:
            self.system.runtime.free_all()

    def __enter__(self) -> "CimServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def _require_open(self) -> None:
        if self._closed:
            raise ServeError("server has been shut down")

    # ------------------------------------------------------------------
    # Tenant API
    # ------------------------------------------------------------------
    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self.admission.set_quota(tenant, quota)

    def submit(
        self,
        tenant: str,
        kernel: Union[str, Program, object],
        params: Optional[Mapping[str, Union[int, float]]] = None,
        arrays: Optional[Mapping[str, np.ndarray]] = None,
        arrival_s: Optional[float] = None,
    ) -> RequestHandle:
        """Queue one offload request; returns its handle immediately.

        ``kernel`` is mini-C source, an IR program, or a prior
        :class:`~repro.compiler.driver.CompilationResult`.  ``arrival_s``
        is the simulated arrival time; it defaults to "now" and must be
        non-decreasing across submissions (the event loop replays
        arrivals in order).  The tenant's ``arrays`` are snapshotted at
        submission, so the caller may reuse or mutate them afterwards.
        """
        self._require_open()
        if not tenant:
            raise ServeError("tenant name must be non-empty")
        params = {key: value for key, value in (params or {}).items()}
        earliest = max(self.clock.now_s, self._last_arrival_s)
        if arrival_s is None:
            arrival_s = earliest
        elif arrival_s < earliest:
            raise ServeError(
                f"arrival_s={arrival_s} is in the simulated past "
                f"(clock={self.clock.now_s}, last arrival={self._last_arrival_s})"
            )
        program, fingerprint, engine = self._resolve_kernel(kernel, params)
        snapshot = {
            name: np.array(value, copy=True)
            for name, value in (arrays or {}).items()
        }
        signature = batch_signature(fingerprint, program, params, snapshot)
        self._seq += 1
        handle = RequestHandle(
            request_id=self._seq, tenant=tenant, arrival_s=arrival_s
        )
        request = TenantRequest(
            seq=self._seq,
            tenant=tenant,
            signature=signature,
            program=program,
            params=params,
            arrays=snapshot,
            arrival_s=arrival_s,
            engine=engine,
            handle=handle,
        )
        self._arrivals.append(request)
        self._last_arrival_s = arrival_s
        self.metrics.observe_submit()
        return handle

    def _resolve_kernel(
        self, kernel: Union[str, Program, object], params: Mapping[str, float]
    ) -> tuple[Program, str, Optional[str]]:
        """Compile (through the shared cache) or unwrap the kernel.

        Returns ``(program, fingerprint, engine)``.  The fingerprint
        reuses the compile-cache key when one is available (no second
        hash on the submission hot path); the engine is the one the
        kernel was compiled for, so dispatch honours it exactly like a
        direct ``OffloadExecutor.run`` of the compilation result would.
        """
        if hasattr(kernel, "program") and hasattr(kernel, "report"):
            program = kernel.program  # pre-compiled CompilationResult
            fingerprint = getattr(kernel, "cache_key", None) or compile_fingerprint(
                program, self.config.compile_options, params
            )
            options = getattr(kernel, "options", None)
            engine = options.engine if options is not None else None
            return program, fingerprint, engine
        hits0 = self.compile_cache.hits
        misses0 = self.compile_cache.misses
        result = self.compiler.compile(kernel, size_hint=params)
        self.metrics.observe_compile(
            self.compile_cache.hits - hits0, self.compile_cache.misses - misses0
        )
        fingerprint = result.cache_key or compile_fingerprint(
            kernel, self.config.compile_options, params
        )
        return result.program, fingerprint, self.config.compile_options.engine

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Advance the simulated service by one event (one dispatched
        batch, or one clock hop to the next arrival).  Returns ``False``
        when there is nothing left to do."""
        self._require_open()
        self._pump_arrivals(self.clock.now_s)
        if self.admission.total_queued == 0:
            if not self._arrivals:
                return False
            self.clock.advance_to(self._arrivals[0].arrival_s)
            self._pump_arrivals(self.clock.now_s)
            if self.admission.total_queued == 0:
                return True  # everything at this instant was rejected
        seed = self.admission.pick_seed()
        window_close_s = self.clock.now_s + self.batcher.window_s
        self._pump_arrivals(window_close_s)
        batch = self.batcher.form_batch(seed, self.admission.queued_requests())
        self.admission.remove(batch)
        self.clock.advance_to(window_close_s)
        self._dispatch(batch)
        return True

    def drain(self) -> dict:
        """Run the event loop until every submitted request is resolved;
        returns a metrics snapshot."""
        while self.step():
            pass
        return self.metrics.snapshot(self.admission.queue_depths())

    def _pump_arrivals(self, until_s: float) -> None:
        """Admit (or reject) every submission with arrival <= *until_s*."""
        while self._arrivals and self._arrivals[0].arrival_s <= until_s:
            request = self._arrivals.popleft()
            admitted = self.admission.admit(request, now_s=request.arrival_s)
            self.metrics.observe_admission(admitted)
            if admitted:
                self.metrics.observe_queue_depths(self.admission.queue_depths())

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, batch: list[TenantRequest]) -> None:
        self._batch_counter += 1
        # One device, no fault hook: the lease executor never returns
        # faulted requests here (see repro.fleet for the faulted path).
        self.lease_executor.dispatch(batch, self._batch_counter)

"""Lease dispatch onto one device, shared by the server and fleet tiers.

:class:`LeaseExecutor` owns the mechanics of serving one dispatch batch
(a crossbar *lease*) on one emulated device: the fused single-GEMV fast
path, the whole-program fallback, per-request measurement of the device's
physical ledgers, billing, and failure isolation.  It is exactly the
dispatch half of the PR 4 :class:`~repro.serve.server.CimServer`, hoisted
out so the fleet tier (:mod:`repro.fleet`) can run one per device.

Fault injection hooks in via ``fault_hook(stage, request)``:

* ``stage == "attempt"`` fires before a request executes — a raised
  :class:`~repro.serve.errors.DeviceFault` here loses no work;
* ``stage == "commit"`` fires after execution but before the response is
  released — a fault here (the device died mid-attempt) discards the
  computed outputs and *compensates* the measured work in the ledger
  (:class:`~repro.serve.accounting.FaultCompensation`), so the tenant is
  never billed for an attempt that produced no response and the device's
  physical ledgers still partition exactly.

A fatal fault (:class:`~repro.serve.errors.LeaseAborted`) stops the lease;
the unserved requests come back in the returned
:class:`FaultedRequest` list (``attempted=False``) for the caller to
migrate.  Transient faults return only the faulted request and the lease
continues.  With no hook installed (the single-device server) behaviour
is bit-identical to the pre-fleet dispatch path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.codegen.executor import ExecutionReport, OffloadExecutor
from repro.hw.timeline import Timeline
from repro.serve.accounting import AccountingLedger, FaultCompensation, RequestUsage
from repro.serve.batcher import FusedGemvPlan, extract_fused_gemv_plan
from repro.serve.clock import VirtualClock
from repro.serve.errors import DeviceFault
from repro.serve.metrics import MetricsRegistry
from repro.serve.request import TenantRequest
from repro.system.system import CimSystem

#: ``fault_hook(stage, request)`` — raises DeviceFault to inject a fault.
FaultHook = Callable[[str, TenantRequest], None]


@dataclass(frozen=True)
class FaultedRequest:
    """One request a lease could not serve because of a device fault."""

    request: TenantRequest
    fault: DeviceFault
    #: Whether the request actually started executing (and therefore
    #: consumed one of its retry attempts) or was merely stranded in an
    #: aborted lease and only needs migration.
    attempted: bool


class LeaseExecutor:
    """Serves dispatch batches on one device's emulated system."""

    def __init__(
        self,
        system: CimSystem,
        executor: OffloadExecutor,
        clock: VirtualClock,
        ledger: AccountingLedger,
        metrics: MetricsRegistry,
        timeline: Timeline,
        scrub_leases: bool = True,
        charge_service: Optional[Callable[[str, float], None]] = None,
        device_id: int = 0,
        component: str = "serve.device",
        fault_hook: Optional[FaultHook] = None,
    ):
        self.system = system
        self.executor = executor
        self.clock = clock
        self.ledger = ledger
        self.metrics = metrics
        self.timeline = timeline
        self.scrub_leases = scrub_leases
        self.charge_service = charge_service
        self.device_id = device_id
        self.component = component
        self.fault_hook = fault_hook

    # ------------------------------------------------------------------
    def dispatch(self, batch: list[TenantRequest], batch_id: int) -> list[FaultedRequest]:
        """Serve *batch* as one crossbar lease; returns the requests a
        device fault prevented from being served (empty without faults)."""
        if self.scrub_leases:
            # Lease isolation: a batch never inherits the previous
            # tenant's programmed operand.
            self.system.accelerator.micro_engine.invalidate_residency()
        plan = extract_fused_gemv_plan(batch[0].program, batch[0].params)
        lease_start_s = self.clock.now_s
        if plan is not None:
            faulted = self._dispatch_fused(batch, plan, batch_id)
        else:
            faulted = self._dispatch_programs(batch, batch_id)
        self.timeline.record(
            self.component,
            f"lease[{batch[0].signature[:8]}]x{len(batch)}",
            lease_start_s,
            self.clock.now_s - lease_start_s,
        )
        self.metrics.observe_batch(len(batch), fused=plan is not None)
        return faulted

    def _dispatch_programs(
        self, batch: list[TenantRequest], batch_id: int
    ) -> list[FaultedRequest]:
        """Generic lease: run each request's whole program back to back.

        Within the lease the crossbar keeps the operand of the previous
        request resident, and because the runtime releases every device
        buffer between requests, identical programs re-allocate at
        identical addresses — so compatible followers skip the
        reprogramming entirely (the PR 1 residency path) while staying
        bit-identical to their direct execution.
        """
        faulted: list[FaultedRequest] = []
        for index, request in enumerate(batch):

            def run_program(request=request):
                return self.executor.run(
                    request.program,
                    request.params,
                    request.arrays,
                    reset_stats=False,
                    engine=request.engine,
                )

            fault = self._execute_guarded(
                request, batch_id, len(batch), run_program
            )
            self._release_lease_buffers()
            if fault is not None:
                faulted.append(FaultedRequest(request, fault, attempted=True))
                if fault.fatal:
                    # The device is gone: strand the rest of the lease for
                    # migration instead of feeding a dead device.
                    faulted.extend(
                        FaultedRequest(rest, fault, attempted=False)
                        for rest in batch[index + 1 :]
                    )
                    break
        return faulted

    def _dispatch_fused(
        self, batch: list[TenantRequest], plan: FusedGemvPlan, batch_id: int
    ) -> list[FaultedRequest]:
        """Fused GEMV lease: upload the stationary matrix once, then
        stream one ``sgemv`` per request against the resident operand."""
        runtime = self.system.runtime
        buffers: dict[str, object] = {"a": None, "x": None, "y": None}
        faulted: list[FaultedRequest] = []

        def run_fused(request: TenantRequest):
            if buffers["a"] is None:
                # Lease setup — the request that establishes the lease
                # supplies the operands and pays for the shared upload.
                # (Batch compatibility makes the stationary matrix
                # byte-identical across members, so any establisher
                # serves the whole lease; a malformed member must only
                # ever fail itself.)
                matrix = request.arrays[plan.array_a]
                buffers["a"] = runtime.cim_malloc(matrix.nbytes)
                buffers["x"] = runtime.cim_malloc(
                    request.arrays[plan.array_x].nbytes
                )
                buffers["y"] = runtime.cim_malloc(
                    request.arrays[plan.array_y].nbytes
                )
                runtime.cim_host_to_dev(buffers["a"], matrix)
            x = request.arrays[plan.array_x]
            y = request.arrays[plan.array_y]
            runtime.cim_host_to_dev(buffers["x"], x)
            if plan.uploads_y:
                runtime.cim_host_to_dev(buffers["y"], y)
            self.system.blas.sgemv(
                plan.trans_a,
                plan.m,
                plan.n,
                plan.alpha,
                buffers["a"],
                plan.n,
                buffers["x"],
                plan.beta,
                buffers["y"],
            )
            result_y = runtime.cim_dev_to_host(buffers["y"], y.shape).astype(
                y.dtype
            )
            outputs = {
                name: np.array(value, copy=True)
                for name, value in request.arrays.items()
            }
            outputs[plan.array_y] = result_y
            return outputs, None

        try:
            for index, request in enumerate(batch):
                fault = self._execute_guarded(
                    request,
                    batch_id,
                    len(batch),
                    lambda request=request: run_fused(request),
                    runtime_calls=["polly_cimBlasSGemv"],
                )
                if fault is not None:
                    faulted.append(FaultedRequest(request, fault, attempted=True))
                    if fault.fatal:
                        faulted.extend(
                            FaultedRequest(rest, fault, attempted=False)
                            for rest in batch[index + 1 :]
                        )
                        break
                # A failed or faulted request may leave the lease half set
                # up; scrub it so the next request re-establishes cleanly.
                if not _served_ok(request):
                    self._release_lease_buffers()
                    buffers["a"] = buffers["x"] = buffers["y"] = None
        finally:
            self._release_lease_buffers()
        return faulted

    # ------------------------------------------------------------------
    def _execute_guarded(
        self,
        request: TenantRequest,
        batch_id: int,
        batch_size: int,
        thunk,
        runtime_calls: Optional[list[str]] = None,
    ) -> Optional[DeviceFault]:
        """Execute one request under full measurement.

        Outcomes:

        * success — the handle resolves ``COMPLETED`` and the measured
          work is billed to the tenant;
        * ordinary failure (bad payload, execution error) — the handle
          resolves ``FAILED`` and the tenant is billed for the work the
          device actually performed, so one bad request never kills the
          event loop or strands the rest of the queue;
        * injected :class:`DeviceFault` — the attempt's measured work is
          *compensated* (reconciled in the ledger against the fault, not
          billed) and the fault is returned for the caller to retry or
          migrate the request.  The handle stays unresolved.
        """
        request.handle.dispatched_s = self.clock.now_s
        request.handle.attempts += 1
        overhead = self.system.host_overhead
        energy0 = overhead.energy_j
        time0 = overhead.time_s
        instr0 = overhead.instructions
        runs_before = len(self.system.accelerator.completed_runs)
        failure: Optional[str] = None
        device_fault: Optional[DeviceFault] = None
        outputs: Optional[dict[str, np.ndarray]] = None
        report: Optional[ExecutionReport] = None
        try:
            if self.fault_hook is not None:
                self.fault_hook("attempt", request)
            outputs, report = thunk()
        except DeviceFault as fault:
            device_fault = fault
            report = None  # bill nothing; measure the lost work below
        except Exception as exc:
            failure = f"{type(exc).__name__}: {exc}"
        if report is None:
            # Fused path (returns no report), the failure path and the
            # faulted path all account from the measured ledger deltas.
            report = ExecutionReport(program_name=request.program.name)
            report.offload_instructions = overhead.instructions - instr0
            report.offload_energy_j = overhead.energy_j - energy0
            report.offload_time_s = overhead.time_s - time0
            if runtime_calls is not None and failure is None and device_fault is None:
                report.runtime_calls = list(runtime_calls)
            for run in self.system.accelerator.completed_runs[runs_before:]:
                report.accelerator_energy_j += run.energy_j
                report.accelerator_time_s += run.latency_s
                report.gemv_count += run.gemv_count
                report.crossbar_cell_writes += run.crossbar_cell_writes
                report.crossbar_write_ops += run.crossbar_write_ops
                report.accelerator_macs += run.macs
                report.dma_bytes += run.dma_bytes
                for key, value in run.energy_breakdown.items():
                    report.accelerator_energy_breakdown[key] = (
                        report.accelerator_energy_breakdown.get(key, 0.0) + value
                    )
        service_s = report.total_time_s
        self.clock.advance(service_s)
        if device_fault is None and failure is None and self.fault_hook is not None:
            # Commit stage: the attempt ran and the clock has absorbed its
            # service time — a fault here is the device dying mid-attempt.
            # The computed outputs are discarded and the measured work is
            # compensated below, exactly like an attempt-stage fault.
            try:
                self.fault_hook("commit", request)
            except DeviceFault as fault:
                device_fault = fault
        if device_fault is not None:
            self._compensate(request, batch_id, report, device_fault)
            return device_fault
        if failure is not None:
            self._fail(request, batch_id, batch_size, report, service_s, failure)
            return None
        self._complete(request, batch_id, batch_size, outputs, report, service_s)
        return None

    def _release_lease_buffers(self) -> None:
        """Free every device buffer of the lease; the host cost of the
        releases lands in the ledger's housekeeping bucket (it belongs to
        the lease, not to any single request)."""
        overhead = self.system.host_overhead
        energy0 = overhead.energy_j
        time0 = overhead.time_s
        self.system.runtime.free_all()
        self.ledger.record_housekeeping(
            overhead.energy_j - energy0, device_id=self.device_id
        )
        self.clock.advance(overhead.time_s - time0)

    def _compensate(
        self,
        request: TenantRequest,
        batch_id: int,
        report: ExecutionReport,
        fault: DeviceFault,
    ) -> None:
        """Reconcile the faulted attempt's physical work: the device's
        ledgers moved, so the partition must carry the delta — on the
        fault's account, never the tenant's."""
        if (
            report.offload_energy_j == 0.0
            and report.accelerator_energy_j == 0.0
            and report.crossbar_cell_writes == 0
            and report.accelerator_macs == 0
            and report.dma_bytes == 0
        ):
            return  # the fault fired before any work happened
        self.ledger.record_compensation(
            FaultCompensation(
                request_id=request.seq,
                tenant=request.tenant,
                device_id=self.device_id,
                batch_id=batch_id,
                at_s=self.clock.now_s,
                reason=f"{type(fault).__name__}: {fault}",
                op=fault.op,
                offload_energy_j=report.offload_energy_j,
                accelerator_energy_j=report.accelerator_energy_j,
                crossbar_cell_writes=report.crossbar_cell_writes,
                crossbar_write_ops=report.crossbar_write_ops,
                gemv_count=report.gemv_count,
                macs=report.accelerator_macs,
                dma_bytes=report.dma_bytes,
            )
        )

    def _fail(
        self,
        request: TenantRequest,
        batch_id: int,
        batch_size: int,
        report: ExecutionReport,
        service_s: float,
        reason: str,
    ) -> None:
        request.handle.mark_failed(
            completed_s=self.clock.now_s,
            reason=reason,
            batch_id=batch_id,
            batch_size=batch_size,
            report=report,
            device_id=self.device_id,
        )
        self._record_usage(request, batch_id, report, service_s)
        self.metrics.observe_failure()

    def _complete(
        self,
        request: TenantRequest,
        batch_id: int,
        batch_size: int,
        outputs: dict[str, np.ndarray],
        report: ExecutionReport,
        service_s: float,
    ) -> None:
        handle = request.handle
        handle.mark_completed(
            completed_s=self.clock.now_s,
            batch_id=batch_id,
            batch_size=batch_size,
            report=report,
            result=outputs,
            device_id=self.device_id,
        )
        self._record_usage(request, batch_id, report, service_s)
        self.metrics.observe_completion(
            request.tenant, handle.latency_s, handle.queueing_delay_s
        )

    def _record_usage(
        self,
        request: TenantRequest,
        batch_id: int,
        report: ExecutionReport,
        service_s: float,
    ) -> None:
        handle = request.handle
        usage = RequestUsage(
            request_id=request.seq,
            tenant=request.tenant,
            batch_id=batch_id,
            arrival_s=request.arrival_s,
            completed_s=handle.completed_s,
            service_s=service_s,
            latency_s=handle.latency_s,
            host_energy_j=report.host_estimate.energy_j,
            offload_energy_j=report.offload_energy_j,
            accelerator_energy_j=report.accelerator_energy_j,
            crossbar_cell_writes=report.crossbar_cell_writes,
            crossbar_write_ops=report.crossbar_write_ops,
            gemv_count=report.gemv_count,
            macs=report.accelerator_macs,
            dma_bytes=report.dma_bytes,
            device_id=self.device_id,
        )
        self.ledger.record(usage)
        if self.charge_service is not None:
            self.charge_service(request.tenant, service_s)


def _served_ok(request: TenantRequest) -> bool:
    """Whether the request just completed successfully (lease still clean)."""
    from repro.serve.request import RequestStatus

    return request.handle.status is RequestStatus.COMPLETED

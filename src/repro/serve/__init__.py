"""Multi-tenant CIM serving layer.

Accepts offload requests from many logical tenants and drives the
compiler + runtime + emulated-hardware stack under one simulated clock:
dynamic request batching onto crossbar leases, admission control with
bounded queues and lifetime-denominated quotas, weighted fair-share
scheduling, per-tenant accounting that reconciles exactly with the
device ledgers, and a serving metrics registry.  See
:class:`~repro.serve.server.CimServer` and ``docs/serving.md``.
"""

from repro.serve.accounting import (
    AccountingLedger,
    FaultCompensation,
    RequestUsage,
    TenantAccount,
)
from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.batcher import (
    DynamicBatcher,
    FusedGemvPlan,
    batch_signature,
    extract_fused_gemv_plan,
    stationary_operand_arrays,
)
from repro.serve.clock import Clock, VirtualClock, WallClock
from repro.serve.dispatch import FaultedRequest, LeaseExecutor
from repro.serve.errors import (
    AdmissionError,
    DeviceFault,
    HandleStateError,
    LeaseAborted,
    RetryExhausted,
    ServeError,
)
from repro.serve.metrics import MetricsRegistry, percentile
from repro.serve.request import RequestHandle, RequestStatus, TenantRequest
from repro.serve.server import CimServer, ServerConfig

__all__ = [
    "AccountingLedger",
    "Clock",
    "WallClock",
    "AdmissionController",
    "AdmissionError",
    "CimServer",
    "DeviceFault",
    "DynamicBatcher",
    "FaultCompensation",
    "FaultedRequest",
    "FusedGemvPlan",
    "HandleStateError",
    "LeaseAborted",
    "LeaseExecutor",
    "MetricsRegistry",
    "RequestHandle",
    "RequestStatus",
    "RequestUsage",
    "RetryExhausted",
    "ServeError",
    "ServerConfig",
    "TenantAccount",
    "TenantQuota",
    "TenantRequest",
    "VirtualClock",
    "batch_signature",
    "extract_fused_gemv_plan",
    "percentile",
    "stationary_operand_arrays",
]

"""Core CIM runtime API: device management, buffers, transfers.

These are the Python counterparts of ``polly_cimInit``, ``polly_cimMalloc``,
``polly_cimHostToDev``, ``polly_cimDevToHost`` and ``polly_cimFree`` from the
paper's Listing 1.  Host-to-device and device-to-host "transfers" are copies
between host NumPy arrays and the CMA shared-memory region; they charge host
copy instructions, because the data preparation in shared memory is host
work (Figure 2 (d): "Prepare data in shared memory").
"""

from __future__ import annotations

import numpy as np

from repro.driver.driver import CimDriver
from repro.runtime.errors import CimRuntimeError
from repro.runtime.handles import DeviceBuffer


class CimRuntime:
    """User-space runtime for one CIM device.

    The runtime is also a context manager: entering initialises the
    device, leaving calls :meth:`cim_shutdown`, so long-lived callers
    (e.g. the serving layer) cannot leak device buffers across sessions::

        with CimRuntime(driver) as runtime:
            buffer = runtime.cim_malloc(1024)
            ...
        # all outstanding buffers released here
    """

    def __init__(self, driver: CimDriver):
        self.driver = driver
        self._initialised_devices: set[int] = set()
        self._buffers: dict[int, DeviceBuffer] = {}
        # Handles are issued from a monotonic counter, so "issued but not
        # live" identifies a double free without keeping per-handle state
        # (long-lived serving runs free millions of buffers).
        self._last_issued_handle = 0
        self._shut_down = False

    # ------------------------------------------------------------------
    # polly_cimInit / polly_cimShutdown
    # ------------------------------------------------------------------
    def cim_init(self, device: int = 0) -> None:
        """Initialise (open) the CIM device.  Idempotent per device."""
        self._require_not_shut_down()
        if device != 0:
            raise CimRuntimeError(f"no CIM device {device} in the emulated system")
        if device in self._initialised_devices:
            return
        self.driver.open()
        self._initialised_devices.add(device)

    def cim_shutdown(self) -> None:
        """Tear the runtime down: release every outstanding
        :class:`DeviceBuffer` and close the session.  Idempotent; any API
        call other than another ``cim_shutdown`` afterwards raises a
        :class:`CimRuntimeError`."""
        if self._shut_down:
            return
        if self._initialised_devices:
            self.free_all()
        self._initialised_devices.clear()
        self._shut_down = True

    @property
    def closed(self) -> bool:
        return self._shut_down

    def __enter__(self) -> "CimRuntime":
        self.cim_init()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cim_shutdown()

    def _require_not_shut_down(self) -> None:
        if self._shut_down:
            raise CimRuntimeError("CIM runtime has been shut down")

    def _require_init(self) -> None:
        self._require_not_shut_down()
        if not self._initialised_devices:
            raise CimRuntimeError("cim_init() must be called before any other API")

    def cim_device_info(self) -> dict:
        """Structural device info (tile count, crossbar geometry) via the
        driver's ``CIM_QUERY`` ioctl — the counterpart of a
        ``polly_cimDeviceInfo`` query."""
        self._require_init()
        return self.driver.query_info()

    # ------------------------------------------------------------------
    # polly_cimMalloc / polly_cimFree
    # ------------------------------------------------------------------
    def cim_malloc(self, size: int) -> DeviceBuffer:
        """Allocate a physically-contiguous shared buffer of *size* bytes."""
        self._require_init()
        if size <= 0:
            raise CimRuntimeError("cim_malloc size must be positive")
        virtual, physical = self.driver.alloc(size)
        self._last_issued_handle += 1
        buffer = DeviceBuffer(
            handle=self._last_issued_handle,
            virtual=virtual,
            physical=physical,
            size=self.driver.buffer_size(virtual),
        )
        self._buffers[buffer.handle] = buffer
        return buffer

    def cim_free(self, buffer: DeviceBuffer) -> None:
        self._require_init()
        if buffer.handle not in self._buffers:
            # Distinguish a double free from a handle this runtime never
            # issued; neither may touch the handle table.
            if 0 < buffer.handle <= self._last_issued_handle:
                raise CimRuntimeError(
                    f"double free of buffer {buffer.handle} (already released)"
                )
            raise CimRuntimeError(f"unknown buffer {buffer.handle}")
        if self._buffers[buffer.handle] is not buffer:
            raise CimRuntimeError(
                f"buffer object does not match live handle {buffer.handle}"
            )
        # Release driver-side state first: if the driver rejects the free,
        # the handle table is left untouched instead of silently dropping
        # a still-allocated buffer.
        self.driver.free(buffer.virtual)
        del self._buffers[buffer.handle]

    def free_all(self) -> None:
        """Release every live buffer (used by program epilogues and tests)."""
        for buffer in list(self._buffers.values()):
            self.cim_free(buffer)

    def reset_handle_counter(self) -> None:
        """Restart buffer-handle numbering from 1.

        Only legal with no live buffers (handles must stay unambiguous).
        The serving tiers use this between requests for measurement
        isolation: with the counter reset, the handles a request's
        execution sees — including the ones quoted in its error messages —
        are a pure function of the request, not of how much the session
        served before it.
        """
        self._require_init()
        if self._buffers:
            raise CimRuntimeError(
                f"cannot reset handle numbering with {len(self._buffers)} "
                "live buffer(s)"
            )
        self._last_issued_handle = 0

    @property
    def live_buffers(self) -> int:
        return len(self._buffers)

    # ------------------------------------------------------------------
    # polly_cimHostToDev / polly_cimDevToHost
    # ------------------------------------------------------------------
    def cim_host_to_dev(self, buffer: DeviceBuffer, array: np.ndarray) -> int:
        """Copy a host array into the shared buffer.  Returns bytes copied."""
        self._require_init()
        data = np.ascontiguousarray(array, dtype=np.float32)
        nbytes = data.nbytes
        buffer.require_capacity(nbytes)
        self.driver.memory.write(buffer.physical, data.view(np.uint8).ravel())
        self._charge_copy(nbytes)
        return nbytes

    def cim_dev_to_host(
        self,
        buffer: DeviceBuffer,
        shape: tuple[int, ...],
        dtype=np.float32,
    ) -> np.ndarray:
        """Copy data back from the shared buffer into a new host array."""
        self._require_init()
        dtype = np.dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dtype.itemsize
        buffer.require_capacity(nbytes)
        raw = self.driver.memory.read(buffer.physical, nbytes)
        self._charge_copy(nbytes)
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()

    def _charge_copy(self, nbytes: int) -> None:
        instructions = nbytes * self.driver.host_model.copy_instructions_per_byte
        self.driver.overhead.charge_instructions(instructions)
        self.driver.counters.add("runtime.copy_bytes", nbytes)

    # ------------------------------------------------------------------
    # Introspection helpers used by the executor and tests
    # ------------------------------------------------------------------
    def buffer(self, handle: int) -> DeviceBuffer:
        if handle not in self._buffers:
            raise CimRuntimeError(f"unknown buffer handle {handle}")
        return self._buffers[handle]

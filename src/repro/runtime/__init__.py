"""User-space CIM runtime library (Figure 3, user space).

The runtime offers a host-callable API in the spirit of cuBLAS/MKL — exactly
the functions the compiler's device-mapping pass emits (Listing 1 of the
paper): initialisation, buffer allocation, host/device transfers, GEMM,
GEMV, batched GEMM and 2D convolution.  It encodes high-level parameters
into context-register writes through the kernel driver and collects the
per-call accelerator statistics the evaluation layer consumes.
"""

from repro.runtime.errors import CimRuntimeError
from repro.runtime.handles import DeviceBuffer
from repro.runtime.api import CimRuntime
from repro.runtime.blas import CimBlas, BlasCallStats

__all__ = [
    "CimRuntimeError",
    "DeviceBuffer",
    "CimRuntime",
    "CimBlas",
    "BlasCallStats",
]

"""BLAS-like kernel entry points of the CIM runtime.

``polly_cimBlasSGemm``, ``polly_cimBlasSGemv``, ``polly_cimBlasGemmBatched``
and ``polly_cimConv2D`` from the paper map onto :class:`CimBlas`.  Each call
encodes its parameters into context-register values, submits them through
the driver (which flushes caches and triggers the accelerator), waits for
completion, and returns the accelerator's per-run statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.driver.driver import CimDriver
from repro.hw.accelerator import (
    BATCH_DESCRIPTOR_BYTES,
    AcceleratorRunStats,
    pack_batch_descriptor,
)
from repro.hw.context_regs import Flags, Opcode, Register, encode_scalar
from repro.runtime.api import CimRuntime
from repro.runtime.errors import CimRuntimeError
from repro.runtime.handles import DeviceBuffer


@dataclass
class BlasCallStats:
    """Statistics of one runtime BLAS call (accelerator + submission info)."""

    operation: str
    accelerator: AcceleratorRunStats
    flush_bytes: int
    batch_size: int = 1


class CimBlas:
    """BLAS-style kernel launches on the CIM accelerator."""

    def __init__(self, runtime: CimRuntime):
        self.runtime = runtime
        self.driver: CimDriver = runtime.driver
        self.calls: list[BlasCallStats] = []

    # ------------------------------------------------------------------
    # polly_cimBlasSGemm
    # ------------------------------------------------------------------
    def sgemm(
        self,
        trans_a: bool,
        trans_b: bool,
        m: int,
        n: int,
        k: int,
        alpha: float,
        a: DeviceBuffer,
        lda: int,
        b: DeviceBuffer,
        ldb: int,
        beta: float,
        c: DeviceBuffer,
        ldc: int,
    ) -> BlasCallStats:
        """Single-precision GEMM: ``C = alpha * op(A) * op(B) + beta * C``."""
        self._check_gemm_sizes(m, n, k, a, b, c, trans_a, trans_b)
        flags = Flags.NONE
        if trans_a:
            flags |= Flags.TRANS_A
        if trans_b:
            flags |= Flags.TRANS_B
        registers = {
            Register.OPCODE: int(Opcode.GEMM),
            Register.ADDR_A: a.physical,
            Register.ADDR_B: b.physical,
            Register.ADDR_C: c.physical,
            Register.DIM_M: m,
            Register.DIM_N: n,
            Register.DIM_K: k,
            Register.ALPHA: encode_scalar(alpha),
            Register.BETA: encode_scalar(beta),
            Register.FLAGS: int(flags),
            Register.ELEM_SIZE: 4,
        }
        flush_bytes = self._gemm_flush_bytes(m, n, k, beta)
        return self._submit("sgemm", registers, flush_bytes)

    # ------------------------------------------------------------------
    # polly_cimBlasSGemv
    # ------------------------------------------------------------------
    def sgemv(
        self,
        trans_a: bool,
        m: int,
        n: int,
        alpha: float,
        a: DeviceBuffer,
        lda: int,
        x: DeviceBuffer,
        beta: float,
        y: DeviceBuffer,
    ) -> BlasCallStats:
        """Single-precision GEMV: ``y = alpha * op(A) * x + beta * y``.

        ``m`` and ``n`` describe ``op(A)`` (m rows, n columns); ``x`` has
        ``n`` entries and ``y`` has ``m`` entries.
        """
        if min(m, n) <= 0:
            raise CimRuntimeError("GEMV dimensions must be positive")
        a.require_capacity(m * n * 4)
        x.require_capacity(n * 4)
        y.require_capacity(m * 4)
        flags = Flags.TRANS_A if trans_a else Flags.NONE
        registers = {
            Register.OPCODE: int(Opcode.GEMV),
            Register.ADDR_A: y.physical,   # placeholder, fixed below
        }
        # The accelerator's GEMV is GEMM with N = 1: A is the matrix operand,
        # x the single-column B, y the single-column C.
        registers = {
            Register.OPCODE: int(Opcode.GEMV),
            Register.ADDR_A: a.physical,
            Register.ADDR_B: x.physical,
            Register.ADDR_C: y.physical,
            Register.DIM_M: m,
            Register.DIM_N: 1,
            Register.DIM_K: n,
            Register.ALPHA: encode_scalar(alpha),
            Register.BETA: encode_scalar(beta),
            Register.FLAGS: int(flags),
            Register.ELEM_SIZE: 4,
        }
        flush_bytes = (m * n + n + (m if beta != 0.0 else 0)) * 4
        return self._submit("sgemv", registers, flush_bytes)

    # ------------------------------------------------------------------
    # polly_cimBlasGemmBatched
    # ------------------------------------------------------------------
    def gemm_batched(
        self,
        trans_a: bool,
        trans_b: bool,
        problems: Sequence[dict],
    ) -> BlasCallStats:
        """Batched GEMM.

        ``problems`` is a sequence of dictionaries with keys ``m``, ``n``,
        ``k``, ``alpha``, ``beta``, ``a``, ``b``, ``c`` (DeviceBuffers).  The
        descriptor table is written into a dedicated shared buffer; the
        micro-engine reuses an already-programmed operand when consecutive
        problems share their ``A`` matrix, which is how the fused kernels of
        Listing 2 avoid rewriting the crossbar.
        """
        if not problems:
            raise CimRuntimeError("batched GEMM needs at least one problem")
        table = bytearray()
        flush_bytes = 0
        for problem in problems:
            a: DeviceBuffer = problem["a"]
            b: DeviceBuffer = problem["b"]
            c: DeviceBuffer = problem["c"]
            m, n, k = int(problem["m"]), int(problem["n"]), int(problem["k"])
            alpha = float(problem.get("alpha", 1.0))
            beta = float(problem.get("beta", 0.0))
            self._check_gemm_sizes(m, n, k, a, b, c, trans_a, trans_b)
            table += pack_batch_descriptor(
                a.physical, b.physical, c.physical, m, n, k,
                encode_scalar(alpha), encode_scalar(beta),
            )
            flush_bytes += self._gemm_flush_bytes(m, n, k, beta)
        descriptor_buffer = self.runtime.cim_malloc(len(table))
        self.driver.memory.write(descriptor_buffer.physical, bytes(table))
        self.runtime._charge_copy(len(table))
        flags = Flags.NONE
        if trans_a:
            flags |= Flags.TRANS_A
        if trans_b:
            flags |= Flags.TRANS_B
        registers = {
            Register.OPCODE: int(Opcode.GEMM_BATCHED),
            Register.ADDR_D: descriptor_buffer.physical,
            Register.BATCH_COUNT: len(problems),
            Register.FLAGS: int(flags),
            Register.ELEM_SIZE: 4,
        }
        flush_bytes += len(table)
        stats = self._submit("gemm_batched", registers, flush_bytes,
                             batch_size=len(problems))
        self.runtime.cim_free(descriptor_buffer)
        return stats

    # ------------------------------------------------------------------
    # polly_cimConv2D
    # ------------------------------------------------------------------
    def conv2d(
        self,
        out_h: int,
        out_w: int,
        filter_h: int,
        filter_w: int,
        alpha: float,
        img: DeviceBuffer,
        weights: DeviceBuffer,
        beta: float,
        out: DeviceBuffer,
    ) -> BlasCallStats:
        """Direct 2D convolution (valid padding, unit stride)."""
        if min(out_h, out_w, filter_h, filter_w) <= 0:
            raise CimRuntimeError("convolution dimensions must be positive")
        img_h = out_h + filter_h - 1
        img_w = out_w + filter_w - 1
        img.require_capacity(img_h * img_w * 4)
        weights.require_capacity(filter_h * filter_w * 4)
        out.require_capacity(out_h * out_w * 4)
        registers = {
            Register.OPCODE: int(Opcode.CONV2D),
            Register.ADDR_A: img.physical,
            Register.ADDR_B: weights.physical,
            Register.ADDR_C: out.physical,
            Register.DIM_M: out_h,
            Register.DIM_N: out_w,
            Register.DIM_K: (filter_h << 16) | filter_w,
            Register.ALPHA: encode_scalar(alpha),
            Register.BETA: encode_scalar(beta),
            Register.FLAGS: int(Flags.NONE),
            Register.ELEM_SIZE: 4,
        }
        flush_bytes = (img_h * img_w + filter_h * filter_w) * 4
        if beta != 0.0:
            flush_bytes += out_h * out_w * 4
        return self._submit("conv2d", registers, flush_bytes)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_gemm_sizes(
        self,
        m: int,
        n: int,
        k: int,
        a: DeviceBuffer,
        b: DeviceBuffer,
        c: DeviceBuffer,
        trans_a: bool,
        trans_b: bool,
    ) -> None:
        if min(m, n, k) <= 0:
            raise CimRuntimeError("GEMM dimensions must be positive")
        a.require_capacity(m * k * 4)
        b.require_capacity(k * n * 4)
        c.require_capacity(m * n * 4)

    @staticmethod
    def _gemm_flush_bytes(m: int, n: int, k: int, beta: float) -> int:
        operand_bytes = (m * k + k * n) * 4
        if beta != 0.0:
            operand_bytes += m * n * 4
        return operand_bytes

    def _submit(
        self,
        operation: str,
        registers: dict[Register, int],
        flush_bytes: int,
        batch_size: int = 1,
    ) -> BlasCallStats:
        self.driver.submit(registers, flush_bytes)
        self.driver.wait()
        run = self.driver.accelerator.last_run
        if run is None:
            raise CimRuntimeError("accelerator finished without reporting statistics")
        stats = BlasCallStats(
            operation=operation,
            accelerator=run,
            flush_bytes=flush_bytes,
            batch_size=batch_size,
        )
        self.calls.append(stats)
        return stats

"""Device buffer handles returned by ``cim_malloc``."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceBuffer:
    """A shared-memory buffer usable by the CIM accelerator.

    ``virtual`` is the address the host-side runtime uses, ``physical`` the
    address the accelerator's DMA uses (translation happens in the driver at
    allocation time and the pair is carried around together, mirroring how
    the real runtime caches the translation).
    """

    handle: int
    virtual: int
    physical: int
    size: int

    def require_capacity(self, needed: int) -> None:
        from repro.runtime.errors import CimRuntimeError

        if needed > self.size:
            raise CimRuntimeError(
                f"buffer {self.handle} holds {self.size} B, {needed} B required"
            )

"""Errors raised by the CIM runtime library."""

from __future__ import annotations


class CimRuntimeError(RuntimeError):
    """Invalid runtime usage: bad handle, size mismatch, uninitialised device."""

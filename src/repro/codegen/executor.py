"""Execution of compiled programs on the emulated system.

The executor is the "linker + loader" of the flow: it runs a (possibly
offloaded) IR program with the reference interpreter, dispatching every
``polly_cim*`` call statement to the CIM runtime library of a
:class:`~repro.system.system.CimSystem`, and collects a complete execution
report — host instructions/energy/time for the statements that stayed on
the host, driver/copy/flush overheads, and the accelerator's energy,
latency, GEMV count and crossbar writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.codegen.runtime_calls import (
    CIM_CONV2D,
    CIM_DEV_TO_HOST,
    CIM_FREE,
    CIM_GEMM,
    CIM_GEMM_BATCHED,
    CIM_GEMV,
    CIM_HOST_TO_DEV,
    CIM_INIT,
    CIM_MALLOC,
    BatchedGemmCallArgs,
    Conv2DCallArgs,
    CopyCallArgs,
    GemmCallArgs,
    GemvCallArgs,
    InitCallArgs,
    MallocCallArgs,
)
from repro.host.cost_model import HostCostModel, HostExecutionEstimate
from repro.ir.engine import DEFAULT_ENGINE, make_engine, validate_engine
from repro.ir.expr import Expr
from repro.ir.interp import Interpreter, evaluate_expr
from repro.ir.program import Program
from repro.runtime.handles import DeviceBuffer
from repro.system.system import CimSystem


class ExecutorError(RuntimeError):
    """Malformed runtime call encountered during execution."""


@dataclass
class ExecutionReport:
    """Complete accounting of one program execution on the emulated system."""

    program_name: str = ""
    # Host-executed statements (loop nests left on the host).
    host_estimate: HostExecutionEstimate = field(default_factory=HostExecutionEstimate)
    # Host-side offload overhead: driver calls, copies, flushes, polling.
    offload_instructions: float = 0.0
    offload_energy_j: float = 0.0
    offload_time_s: float = 0.0
    # Accelerator side.
    accelerator_energy_j: float = 0.0
    accelerator_time_s: float = 0.0
    accelerator_energy_breakdown: dict[str, float] = field(default_factory=dict)
    gemv_count: int = 0
    crossbar_cell_writes: int = 0
    crossbar_write_ops: int = 0
    accelerator_macs: int = 0
    dma_bytes: int = 0
    runtime_calls: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total_energy_j(self) -> float:
        return (
            self.host_estimate.energy_j + self.offload_energy_j + self.accelerator_energy_j
        )

    @property
    def total_time_s(self) -> float:
        # The offload time already contains the wall-clock wait for the
        # accelerator (the host blocks on the status register), so the
        # accelerator latency is not added again.
        return self.host_estimate.time_s + self.offload_time_s

    @property
    def edp(self) -> float:
        return self.total_energy_j * self.total_time_s

    @property
    def macs_per_cim_write(self) -> float:
        """The paper's compute-intensity metric for offloaded kernels."""
        if self.crossbar_cell_writes == 0:
            return float("inf") if self.accelerator_macs else 0.0
        return self.accelerator_macs / self.crossbar_cell_writes

    @property
    def offloaded(self) -> bool:
        return bool(self.runtime_calls)


class OffloadExecutor:
    """Runs IR programs against the emulated host + CIM system.

    ``engine`` selects the execution engine for the host-side IR (see
    :data:`repro.ir.engine.ENGINE_MODES`): the slice-folding ``"fast"``
    engine (default, bit-identical to the interpreter), ``"native"``
    (adds the optional C backend), ``"vectorized"`` (gather lowering),
    the reference ``"interpreter"``, or ``"vectorized-fast"`` (einsum
    lowering, results only approximately equal).  All engines produce
    identical execution traces, so the cost-model numbers do not depend
    on this choice.

    Engine precedence, most specific wins: the ``engine`` argument of
    :meth:`run`, then an ``engine`` given to this constructor, then the
    :class:`~repro.compiler.options.CompileOptions` of a
    ``CompilationResult`` passed to :meth:`run`, then
    :data:`~repro.ir.engine.DEFAULT_ENGINE`.

    ``num_tiles`` is a convenience for multi-tile offload: without an
    explicit ``system`` it builds a
    :class:`~repro.system.config.SystemConfig` with that tile count (see
    :mod:`repro.hw.scheduler`); with one, it must agree with the system's
    configuration.
    """

    def __init__(
        self,
        system: Optional[CimSystem] = None,
        host_cost_model: Optional[HostCostModel] = None,
        engine: Optional[str] = None,
        num_tiles: Optional[int] = None,
    ):
        if engine is not None:
            validate_engine(engine)
        if system is None:
            from repro.system.config import SystemConfig

            # num_tiles=0 must reach AcceleratorConfig's validation and
            # raise, not silently fall back to the 1-tile default.
            config = (
                SystemConfig(num_tiles=num_tiles) if num_tiles is not None else None
            )
            system = CimSystem(config)
        elif num_tiles is not None and system.config.num_tiles != num_tiles:
            raise ValueError(
                f"num_tiles={num_tiles} conflicts with the given system's "
                f"config (num_tiles={system.config.num_tiles}); configure "
                "SystemConfig.num_tiles instead"
            )
        self.system = system
        self.host_cost_model = host_cost_model or HostCostModel(self.system.config.host)
        #: Explicit engine choice; ``None`` defers to the compiled options.
        self.engine = engine
        #: Engine actually used by the most recent :meth:`run` call.
        self.last_engine_used: Optional[str] = None
        self._buffers: dict[str, DeviceBuffer] = {}
        self._buffer_arrays: dict[str, str] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        params: Mapping[str, int | float],
        arrays: Optional[Mapping[str, np.ndarray]] = None,
        reset_stats: bool = True,
        engine: Optional[str] = None,
    ) -> tuple[dict[str, np.ndarray], ExecutionReport]:
        """Execute *program* and return (final arrays, execution report).

        *program* may also be a
        :class:`~repro.compiler.driver.CompilationResult`, in which case
        the compiled program is executed and — unless ``engine`` is given
        explicitly — the engine choice from its
        :class:`~repro.compiler.options.CompileOptions` is honoured.
        """
        # Accept a CompilationResult (duck-typed to avoid a compiler
        # import cycle) and pick up its engine option.
        options_engine = None
        if hasattr(program, "program") and hasattr(program, "report"):
            options = getattr(program, "options", None)
            if options is not None:
                options_engine = options.engine
            program = program.program
        # Validate before touching any executor/system state, so a typo'd
        # engine name does not wipe the previous run's statistics.
        self.last_engine_used = validate_engine(
            engine or self.engine or options_engine or DEFAULT_ENGINE
        )

        if reset_stats:
            self.system.reset_stats()
        self._buffers.clear()
        self._buffer_arrays.clear()

        overhead = self.system.host_overhead
        overhead_energy_before = overhead.energy_j
        overhead_time_before = overhead.time_s
        overhead_instr_before = overhead.instructions
        runs_before = len(self.system.accelerator.completed_runs)

        interpreter = make_engine(
            program, call_handler=self._handle_call, engine=self.last_engine_used
        )
        final_arrays = interpreter.run(params, arrays)

        report = ExecutionReport(program_name=program.name)
        report.host_estimate = self.host_cost_model.estimate_trace(interpreter.trace)
        report.offload_instructions = overhead.instructions - overhead_instr_before
        report.offload_energy_j = overhead.energy_j - overhead_energy_before
        report.offload_time_s = overhead.time_s - overhead_time_before
        report.runtime_calls = [name for name, _ in interpreter.trace.runtime_calls]

        new_runs = self.system.accelerator.completed_runs[runs_before:]
        for run in new_runs:
            report.accelerator_energy_j += run.energy_j
            report.accelerator_time_s += run.latency_s
            report.gemv_count += run.gemv_count
            report.crossbar_cell_writes += run.crossbar_cell_writes
            report.crossbar_write_ops += run.crossbar_write_ops
            report.accelerator_macs += run.macs
            report.dma_bytes += run.dma_bytes
            for key, value in run.energy_breakdown.items():
                report.accelerator_energy_breakdown[key] = (
                    report.accelerator_energy_breakdown.get(key, 0.0) + value
                )
        return final_arrays, report

    # ------------------------------------------------------------------
    # Runtime call dispatch
    # ------------------------------------------------------------------
    def _handle_call(self, callee: str, args: list, interp: Interpreter) -> None:
        if callee == CIM_INIT:
            payload = args[0] if args else InitCallArgs(0)
            device = payload.device if isinstance(payload, InitCallArgs) else int(payload)
            self.system.runtime.cim_init(device)
            return
        if callee == CIM_MALLOC:
            self._do_malloc(args[0], interp)
            return
        if callee == CIM_HOST_TO_DEV:
            self._do_host_to_dev(args[0], interp)
            return
        if callee == CIM_DEV_TO_HOST:
            self._do_dev_to_host(args[0], interp)
            return
        if callee == CIM_FREE:
            payload = args[0]
            buffer = self._require_buffer(payload if isinstance(payload, str) else payload.buffer)
            self.system.runtime.cim_free(buffer)
            return
        if callee == CIM_GEMM:
            self._do_gemm(args[0], interp)
            return
        if callee == CIM_GEMM_BATCHED:
            self._do_gemm_batched(args[0], interp)
            return
        if callee == CIM_GEMV:
            self._do_gemv(args[0], interp)
            return
        if callee == CIM_CONV2D:
            self._do_conv2d(args[0], interp)
            return
        raise ExecutorError(f"unknown runtime call {callee!r}")

    # ------------------------------------------------------------------
    def _eval(self, expr, interp: Interpreter) -> float:
        if isinstance(expr, Expr):
            return evaluate_expr(expr, interp.scalars, interp.arrays)
        return float(expr)

    def _eval_int(self, expr, interp: Interpreter) -> int:
        return int(round(self._eval(expr, interp)))

    def _require_buffer(self, name: str) -> DeviceBuffer:
        if name not in self._buffers:
            raise ExecutorError(f"runtime call references unknown buffer {name!r}")
        return self._buffers[name]

    def _do_malloc(self, payload: MallocCallArgs, interp: Interpreter) -> None:
        size = self._eval_int(payload.size, interp)
        buffer = self.system.runtime.cim_malloc(size)
        self._buffers[payload.buffer] = buffer
        self._buffer_arrays[payload.buffer] = payload.array

    def _do_host_to_dev(self, payload: CopyCallArgs, interp: Interpreter) -> None:
        buffer = self._require_buffer(payload.buffer)
        array = interp.arrays.get(payload.array)
        if array is None:
            raise ExecutorError(f"host array {payload.array!r} is not bound")
        self.system.runtime.cim_host_to_dev(buffer, array)

    def _do_dev_to_host(self, payload: CopyCallArgs, interp: Interpreter) -> None:
        buffer = self._require_buffer(payload.buffer)
        array = interp.arrays.get(payload.array)
        if array is None:
            raise ExecutorError(f"host array {payload.array!r} is not bound")
        result = self.system.runtime.cim_dev_to_host(buffer, array.shape)
        interp.arrays[payload.array] = result.astype(array.dtype)

    def _do_gemm(self, payload: GemmCallArgs, interp: Interpreter) -> None:
        self.system.blas.sgemm(
            payload.trans_a,
            payload.trans_b,
            self._eval_int(payload.m, interp),
            self._eval_int(payload.n, interp),
            self._eval_int(payload.k, interp),
            self._eval(payload.alpha, interp),
            self._require_buffer(payload.buffer_a),
            self._eval_int(payload.lda, interp),
            self._require_buffer(payload.buffer_b),
            self._eval_int(payload.ldb, interp),
            self._eval(payload.beta, interp),
            self._require_buffer(payload.buffer_c),
            self._eval_int(payload.ldc, interp),
        )

    def _do_gemm_batched(self, payload: BatchedGemmCallArgs, interp: Interpreter) -> None:
        problems = []
        for problem in payload.problems:
            problems.append(
                {
                    "m": self._eval_int(problem.m, interp),
                    "n": self._eval_int(problem.n, interp),
                    "k": self._eval_int(problem.k, interp),
                    "alpha": self._eval(problem.alpha, interp),
                    "beta": self._eval(problem.beta, interp),
                    "a": self._require_buffer(problem.buffer_a),
                    "b": self._require_buffer(problem.buffer_b),
                    "c": self._require_buffer(problem.buffer_c),
                }
            )
        self.system.blas.gemm_batched(
            payload.trans_a, payload.trans_b, problems
        )

    def _do_gemv(self, payload: GemvCallArgs, interp: Interpreter) -> None:
        self.system.blas.sgemv(
            payload.trans_a,
            self._eval_int(payload.m, interp),
            self._eval_int(payload.n, interp),
            self._eval(payload.alpha, interp),
            self._require_buffer(payload.buffer_a),
            self._eval_int(payload.lda, interp),
            self._require_buffer(payload.buffer_x),
            self._eval(payload.beta, interp),
            self._require_buffer(payload.buffer_y),
        )

    def _do_conv2d(self, payload: Conv2DCallArgs, interp: Interpreter) -> None:
        self.system.blas.conv2d(
            self._eval_int(payload.out_h, interp),
            self._eval_int(payload.out_w, interp),
            self._eval_int(payload.filter_h, interp),
            self._eval_int(payload.filter_w, interp),
            self._eval(payload.alpha, interp),
            self._require_buffer(payload.buffer_img),
            self._require_buffer(payload.buffer_w),
            self._eval(payload.beta, interp),
            self._require_buffer(payload.buffer_out),
        )

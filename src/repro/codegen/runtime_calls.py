"""Runtime-call interface emitted by device mapping.

The names match the paper's Listing 1 (``polly_cim*``).  Each call statement
carries one structured argument object; the objects render as the C-like
argument lists Listing 1 shows, so ``repro.ir.to_source`` output of a
compiled program reads like the paper's generated code.

Dimension and scalar fields are IR expressions (parameters stay symbolic in
the compiled program and are evaluated at run time by the executor); array
fields are array *names* in the enclosing program; buffer fields are the
symbolic device-buffer names (``cim_A`` etc.) introduced by device mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ir.expr import Expr

# Call names (Listing 1 of the paper).
CIM_INIT = "polly_cimInit"
CIM_MALLOC = "polly_cimMalloc"
CIM_FREE = "polly_cimFree"
CIM_HOST_TO_DEV = "polly_cimHostToDev"
CIM_DEV_TO_HOST = "polly_cimDevToHost"
CIM_GEMM = "polly_cimBlasSGemm"
CIM_GEMV = "polly_cimBlasSGemv"
CIM_GEMM_BATCHED = "polly_cimBlasGemmBatched"
CIM_CONV2D = "polly_cimConv2D"

ALL_RUNTIME_CALLS = (
    CIM_INIT,
    CIM_MALLOC,
    CIM_FREE,
    CIM_HOST_TO_DEV,
    CIM_DEV_TO_HOST,
    CIM_GEMM,
    CIM_GEMV,
    CIM_GEMM_BATCHED,
    CIM_CONV2D,
)


@dataclass(frozen=True)
class InitCallArgs:
    """``polly_cimInit(device)``"""

    device: int = 0

    def __str__(self) -> str:
        return str(self.device)


@dataclass(frozen=True)
class MallocCallArgs:
    """``polly_cimMalloc((void**)&<buffer>, <size>)``

    ``array`` is the host array whose data the buffer will hold; ``size`` is
    a symbolic byte count.
    """

    buffer: str
    array: str
    size: Expr

    def __str__(self) -> str:
        return f"(void**)&{self.buffer}, {self.size}"


@dataclass(frozen=True)
class CopyCallArgs:
    """``polly_cimHostToDev(buffer, host_array, size)`` (or DevToHost)."""

    buffer: str
    array: str
    size: Expr

    def __str__(self) -> str:
        return f"{self.buffer}, {self.array}, {self.size}"


@dataclass(frozen=True)
class GemmCallArgs:
    """``polly_cimBlasSGemm(transA, transB, M, N, K, alpha, A, lda, B, ldb,
    beta, C, ldc)``"""

    trans_a: bool
    trans_b: bool
    m: Expr
    n: Expr
    k: Expr
    alpha: Expr
    buffer_a: str
    lda: Expr
    buffer_b: str
    ldb: Expr
    beta: Expr
    buffer_c: str
    ldc: Expr
    # Host arrays backing the buffers (used by the executor for data flow).
    array_a: str = ""
    array_b: str = ""
    array_c: str = ""

    def __str__(self) -> str:
        ta = "CimTrans" if self.trans_a else "CimNoTrans"
        tb = "CimTrans" if self.trans_b else "CimNoTrans"
        return (
            f"{ta}, {tb}, {self.m}, {self.n}, {self.k}, &{self.alpha}, "
            f"{self.buffer_a}, {self.lda}, {self.buffer_b}, {self.ldb}, "
            f"&{self.beta}, {self.buffer_c}, {self.ldc}"
        )


@dataclass(frozen=True)
class GemvCallArgs:
    """``polly_cimBlasSGemv(trans, M, N, alpha, A, lda, x, beta, y)``"""

    trans_a: bool
    m: Expr
    n: Expr
    alpha: Expr
    buffer_a: str
    lda: Expr
    buffer_x: str
    beta: Expr
    buffer_y: str
    array_a: str = ""
    array_x: str = ""
    array_y: str = ""

    def __str__(self) -> str:
        ta = "CimTrans" if self.trans_a else "CimNoTrans"
        return (
            f"{ta}, {self.m}, {self.n}, &{self.alpha}, {self.buffer_a}, "
            f"{self.lda}, {self.buffer_x}, &{self.beta}, {self.buffer_y}"
        )


@dataclass(frozen=True)
class BatchedGemmCallArgs:
    """``polly_cimBlasGemmBatched(transA, transB, M, N, K, alpha, A[], lda,
    B[], ldb, beta, C[], ldc, batchCount)``

    The per-problem parameters are carried as a tuple of
    :class:`GemmCallArgs`; the batch shares transpose flags.
    """

    problems: tuple[GemmCallArgs, ...]

    def __post_init__(self) -> None:
        if not self.problems:
            raise ValueError("batched GEMM needs at least one problem")

    @property
    def trans_a(self) -> bool:
        return self.problems[0].trans_a

    @property
    def trans_b(self) -> bool:
        return self.problems[0].trans_b

    def __str__(self) -> str:
        first = self.problems[0]
        ta = "CimTrans" if first.trans_a else "CimNoTrans"
        tb = "CimTrans" if first.trans_b else "CimNoTrans"
        a_list = ", ".join(p.buffer_a for p in self.problems)
        b_list = ", ".join(p.buffer_b for p in self.problems)
        c_list = ", ".join(p.buffer_c for p in self.problems)
        return (
            f"{ta}, {tb}, {first.m}, {first.n}, {first.k}, &{first.alpha}, "
            f"{{{a_list}}}, {first.lda}, {{{b_list}}}, {first.ldb}, "
            f"&{first.beta}, {{{c_list}}}, {first.ldc}, {len(self.problems)}"
        )


@dataclass(frozen=True)
class Conv2DCallArgs:
    """``polly_cimConv2D(outH, outW, kH, kW, alpha, img, W, beta, out)``"""

    out_h: Expr
    out_w: Expr
    filter_h: Expr
    filter_w: Expr
    alpha: Expr
    buffer_img: str
    buffer_w: str
    beta: Expr
    buffer_out: str
    array_img: str = ""
    array_w: str = ""
    array_out: str = ""

    def __str__(self) -> str:
        return (
            f"{self.out_h}, {self.out_w}, {self.filter_h}, {self.filter_w}, "
            f"&{self.alpha}, {self.buffer_img}, {self.buffer_w}, &{self.beta}, "
            f"{self.buffer_out}"
        )

"""Back-end: runtime-call emission, program reassembly, and execution.

After Loop Tactics has matched kernels and the transformations have mapped
them to the device, this package

* defines the runtime call interface the compiler emits
  (:mod:`repro.codegen.runtime_calls` — the ``polly_cim*`` entry points of
  Listing 1),
* reassembles the transformed SCoPs into a complete program
  (:mod:`repro.codegen.lowering`),
* and executes compiled programs against the simulated system
  (:mod:`repro.codegen.executor`), dispatching runtime calls to
  :mod:`repro.runtime` and host statements to the IR interpreter.
"""

from repro.codegen.runtime_calls import (
    CIM_INIT,
    CIM_MALLOC,
    CIM_FREE,
    CIM_HOST_TO_DEV,
    CIM_DEV_TO_HOST,
    CIM_GEMM,
    CIM_GEMV,
    CIM_GEMM_BATCHED,
    CIM_CONV2D,
    GemmCallArgs,
    GemvCallArgs,
    BatchedGemmCallArgs,
    Conv2DCallArgs,
    MallocCallArgs,
    CopyCallArgs,
    InitCallArgs,
)
from repro.codegen.lowering import reassemble_program
from repro.codegen.executor import OffloadExecutor, ExecutionReport

__all__ = [
    "CIM_INIT",
    "CIM_MALLOC",
    "CIM_FREE",
    "CIM_HOST_TO_DEV",
    "CIM_DEV_TO_HOST",
    "CIM_GEMM",
    "CIM_GEMV",
    "CIM_GEMM_BATCHED",
    "CIM_CONV2D",
    "GemmCallArgs",
    "GemvCallArgs",
    "BatchedGemmCallArgs",
    "Conv2DCallArgs",
    "MallocCallArgs",
    "CopyCallArgs",
    "InitCallArgs",
    "reassemble_program",
    "OffloadExecutor",
    "ExecutionReport",
]

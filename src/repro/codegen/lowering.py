"""Reassemble transformed SCoPs into a complete program.

Polly regenerates LLVM-IR for each transformed SCoP and splices it back into
the surrounding function; here the regenerated top-level statements of every
SCoP replace the original loop nests in the program body, and a prologue
(``polly_cimInit``) is prepended when anything was offloaded.

The emitted runtime calls are deliberately *tile-agnostic*: a compiled
program names kernels and operands (``polly_cimBlasSGemm(...)``), never
tile placements, so the same artifact — including one served from the
kernel-compile cache (:mod:`repro.compiler.cache`) — runs unchanged on any
``num_tiles`` configuration.  Sharding and pipelining happen below the
runtime ABI, in the micro-engine's scheduler (:mod:`repro.hw.scheduler`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.codegen.runtime_calls import CIM_INIT, InitCallArgs
from repro.ir.program import Program
from repro.ir.stmt import Block, CallStmt, Stmt
from repro.poly.scop import Scop


def reassemble_program(
    original: Program,
    replacements: Sequence[tuple[Scop, list[Stmt]]],
    add_init_call: bool = False,
    suffix: str = "_cim",
) -> Program:
    """Build the compiled program.

    ``replacements`` pairs each SCoP with the top-level statements generated
    from its (transformed) schedule tree.  SCoPs must come from *original*;
    statements of the original body that belong to no SCoP are kept as they
    are.  When ``add_init_call`` is set, a ``polly_cimInit(0)`` call is
    prepended (the device is initialised once per program, as in Listing 1).
    """
    covered: dict[int, tuple[Scop, list[Stmt]]] = {}
    for scop, stmts in replacements:
        if scop.program is not original:
            raise ValueError(
                f"SCoP {scop.name!r} does not belong to the program being reassembled"
            )
        covered[scop.body_start] = (scop, stmts)

    new_body: list[Stmt] = []
    if add_init_call:
        new_body.append(CallStmt(CIM_INIT, [InitCallArgs(0)]))

    index = 0
    body = original.body.stmts
    while index < len(body):
        if index in covered:
            scop, stmts = covered[index]
            new_body.extend(stmts)
            index += len(scop.nests)
        else:
            new_body.append(body[index])
            index += 1

    return Program(
        name=original.name + suffix,
        params=list(original.params),
        arrays=list(original.arrays),
        body=Block(new_body),
    )

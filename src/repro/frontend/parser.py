"""Recursive-descent parser for the mini-C subset.

The accepted language covers the PolyBench/C kernels the paper evaluates:

* one ``void`` function per translation unit;
* scalar parameters (``int M``, ``float alpha``) and array parameters with
  symbolic or constant dimensions (``float A[M][K]``);
* counted ``for`` loops with lower-bound initialisation, ``<``/``<=``
  comparison against an expression, and ``++``/``+= const`` increments;
* assignments ``=``, ``+=``, ``*=`` to array elements or scalars;
* arithmetic expressions over parameters, induction variables, constants and
  array accesses.

The parser lowers directly to the loop-nest IR (:class:`repro.ir.Program`).
Semantic checks: every identifier used must be a declared parameter, array,
or an in-scope induction variable; array access rank must match the
declaration.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.errors import FrontendError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    FloatConst,
    IntConst,
    ParamRef,
    UnaryOp,
    VarRef,
)
from repro.ir.program import ArrayDecl, ParamDecl, Program
from repro.ir.stmt import Assign, Block, Loop
from repro.ir.types import ElementType


def parse_program(source: str) -> Program:
    """Parse mini-C *source* into an IR :class:`Program`."""
    return _Parser(tokenize(source)).parse_translation_unit()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.program: Optional[Program] = None
        self.loop_vars: list[str] = []

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, text: str) -> bool:
        return self._peek().text == text and self._peek().kind is not TokenKind.EOF

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if token.text != text or token.kind is TokenKind.EOF:
            raise FrontendError(
                f"expected {text!r}, found {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise FrontendError(
                f"expected identifier, found {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return self._advance()

    def _error(self, message: str) -> FrontendError:
        token = self._peek()
        return FrontendError(message, line=token.line, column=token.column)

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_translation_unit(self) -> Program:
        self._expect("void")
        name = self._expect_ident().text
        self.program = Program(name=name)
        self._expect("(")
        if not self._check(")"):
            self._parse_parameter()
            while self._accept(","):
                self._parse_parameter()
        self._expect(")")
        self._expect("{")
        while not self._check("}"):
            self.program.body.append(self._parse_statement())
        self._expect("}")
        trailing = self._peek()
        if trailing.kind is not TokenKind.EOF:
            raise FrontendError(
                "only one function per translation unit is supported",
                line=trailing.line,
                column=trailing.column,
            )
        return self.program

    def _parse_type(self) -> ElementType:
        while self._accept("const") or self._accept("static"):
            pass
        token = self._peek()
        if token.text in ("int", "float", "double", "long"):
            self._advance()
            return ElementType.from_c_name(token.text)
        raise self._error(f"expected a type name, found {token.text!r}")

    def _parse_parameter(self) -> None:
        assert self.program is not None
        elem_type = self._parse_type()
        # Pointer-style array parameters (e.g. ``float *A``) are not part of
        # the affine subset; reject them explicitly for a clear message.
        if self._check("*"):
            raise self._error("pointer parameters are not supported; use C arrays")
        name = self._expect_ident().text
        dims: list[Expr] = []
        while self._accept("["):
            dims.append(self._parse_expression())
            self._expect("]")
        if dims:
            self.program.arrays.append(ArrayDecl(name, dims, elem_type))
        else:
            self.program.params.append(ParamDecl(name, elem_type))

    def _parse_statement(self):
        if self._check("for"):
            return self._parse_for()
        if self._check("{"):
            return self._parse_block()
        return self._parse_assignment()

    def _parse_block(self) -> Block:
        self._expect("{")
        block = Block()
        while not self._check("}"):
            block.append(self._parse_statement())
        self._expect("}")
        return block

    def _parse_for(self) -> Loop:
        assert self.program is not None
        self._expect("for")
        self._expect("(")
        # init: [int] var = expr
        self._accept("int")
        var = self._expect_ident().text
        if var in self.program.param_names or self.program.has_array(var):
            raise self._error(
                f"loop variable {var!r} shadows a parameter or array name"
            )
        self._expect("=")
        lower = self._parse_expression()
        self._expect(";")
        # condition: var < expr  or  var <= expr
        cond_var = self._expect_ident().text
        if cond_var != var:
            raise self._error(
                f"loop condition must test the induction variable {var!r}"
            )
        inclusive = False
        if self._accept("<="):
            inclusive = True
        else:
            self._expect("<")
        upper = self._parse_expression()
        if inclusive:
            upper = BinOp("+", upper, IntConst(1))
        self._expect(";")
        # increment: var++ / ++var / var += const
        step = self._parse_increment(var)
        self._expect(")")
        self.loop_vars.append(var)
        body_stmt = self._parse_statement()
        self.loop_vars.pop()
        body = body_stmt if isinstance(body_stmt, Block) else Block([body_stmt])
        return Loop(var=var, lower=lower, upper=upper, body=body, step=step)

    def _parse_increment(self, var: str) -> int:
        if self._accept("++"):
            name = self._expect_ident().text
            if name != var:
                raise self._error("loop increment must update the induction variable")
            return 1
        name = self._expect_ident().text
        if name != var:
            raise self._error("loop increment must update the induction variable")
        if self._accept("++"):
            return 1
        self._expect("+=")
        token = self._peek()
        if token.kind is not TokenKind.INT:
            raise self._error("loop step must be an integer constant")
        self._advance()
        return int(token.text)

    def _parse_assignment(self) -> Assign:
        target = self._parse_lvalue()
        reduction: Optional[str] = None
        if self._accept("+="):
            reduction = "+"
        elif self._accept("*="):
            reduction = "*"
        else:
            self._expect("=")
        rhs = self._parse_expression()
        self._expect(";")
        return Assign(target=target, rhs=rhs, reduction=reduction)

    def _parse_lvalue(self) -> ArrayRef | VarRef:
        assert self.program is not None
        name = self._expect_ident().text
        indices: list[Expr] = []
        while self._accept("["):
            indices.append(self._parse_expression())
            self._expect("]")
        if indices:
            if not self.program.has_array(name):
                raise self._error(f"assignment to undeclared array {name!r}")
            decl = self.program.array(name)
            if len(indices) != decl.rank:
                raise self._error(
                    f"array {name!r} has rank {decl.rank}, got {len(indices)} indices"
                )
            return ArrayRef(name, indices)
        if self.program.has_array(name):
            raise self._error(f"array {name!r} used without indices")
        if name in self.program.param_names:
            raise self._error(f"cannot assign to parameter {name!r}")
        return VarRef(name)

    # Expression grammar: additive over multiplicative over unary/primary.
    def _parse_expression(self) -> Expr:
        expr = self._parse_term()
        while self._check("+") or self._check("-"):
            op = self._advance().text
            expr = BinOp(op, expr, self._parse_term())
        return expr

    def _parse_term(self) -> Expr:
        expr = self._parse_unary()
        while self._check("*") or self._check("/") or self._check("%"):
            op = self._advance().text
            expr = BinOp(op, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> Expr:
        if self._accept("-"):
            return UnaryOp("-", self._parse_unary())
        if self._accept("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        assert self.program is not None
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return IntConst(int(token.text))
        if token.kind is TokenKind.FLOAT:
            self._advance()
            return FloatConst(float(token.text.rstrip("fF")))
        if self._accept("("):
            # C-style cast of a parenthesised type, e.g. ``(float) x``.
            if self._peek().text in ("float", "double", "int", "long"):
                self._advance()
                self._expect(")")
                return self._parse_unary()
            expr = self._parse_expression()
            self._expect(")")
            return expr
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = token.text
            indices: list[Expr] = []
            while self._accept("["):
                indices.append(self._parse_expression())
                self._expect("]")
            if indices:
                if not self.program.has_array(name):
                    raise FrontendError(
                        f"use of undeclared array {name!r}",
                        line=token.line,
                        column=token.column,
                    )
                decl = self.program.array(name)
                if len(indices) != decl.rank:
                    raise FrontendError(
                        f"array {name!r} has rank {decl.rank}, "
                        f"got {len(indices)} indices",
                        line=token.line,
                        column=token.column,
                    )
                return ArrayRef(name, indices)
            if self.program.has_array(name):
                raise FrontendError(
                    f"array {name!r} used without indices",
                    line=token.line,
                    column=token.column,
                )
            if name in self.program.param_names:
                return ParamRef(name)
            if name in self.loop_vars:
                return VarRef(name)
            raise FrontendError(
                f"use of undeclared identifier {name!r}",
                line=token.line,
                column=token.column,
            )
        raise self._error(f"unexpected token {token.text!r} in expression")

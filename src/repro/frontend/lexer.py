"""Tokenizer for the mini-C subset."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator

from repro.frontend.errors import FrontendError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "void",
    "int",
    "float",
    "double",
    "long",
    "for",
    "if",
    "else",
    "return",
    "const",
    "static",
}

# Multi-character punctuators must come before their single-char prefixes.
_PUNCTUATORS = [
    "+=",
    "-=",
    "*=",
    "/=",
    "++",
    "--",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ";",
    ",",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "&",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r\n]+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCTUATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.text!r}@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C source, raising :class:`FrontendError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise FrontendError(
                f"unexpected character {source[pos]!r}", line=line, column=column
            )
        text = match.group(0)
        column = pos - line_start + 1
        kind_name = match.lastgroup
        if kind_name in ("ws", "line_comment", "block_comment"):
            pass  # skipped; only track newlines below
        elif kind_name == "float":
            tokens.append(Token(TokenKind.FLOAT, text, line, column))
        elif kind_name == "int":
            tokens.append(Token(TokenKind.INT, text, line, column))
        elif kind_name == "ident":
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, column))
        elif kind_name == "punct":
            tokens.append(Token(TokenKind.PUNCT, text, line, column))
        # Maintain line/column bookkeeping across the consumed text.
        newline_count = text.count("\n")
        if newline_count:
            line += newline_count
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token(TokenKind.EOF, "", line, pos - line_start + 1))
    return tokens

"""Mini-C front-end: the reproduction's stand-in for Clang.

Parses the restricted C subset used by the PolyBench/C kernels the paper
evaluates (affine ``for`` loops, array accesses, scalar parameters) and
lowers it to the loop-nest IR in :mod:`repro.ir`.
"""

from repro.frontend.errors import FrontendError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import parse_program

__all__ = ["FrontendError", "Token", "TokenKind", "tokenize", "parse_program"]

"""Diagnostics for the mini-C front-end."""

from __future__ import annotations


class FrontendError(Exception):
    """Syntax or semantic error in mini-C source.

    Carries the 1-based line and column of the offending token so tests and
    users get actionable messages.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")

"""IR normalisation passes applied before polyhedral analysis.

The only pass currently needed is reduction canonicalisation: PolyBench
kernels frequently spell accumulations as ``x[i] = x[i] + expr`` rather than
``x[i] += expr``.  The pattern matchers (and LLVM's own reduction detection)
work on the canonical compound-assignment form, so the compiler runs this
pass right after parsing.
"""

from __future__ import annotations

from repro.ir.expr import ArrayRef, BinOp, Expr
from repro.ir.program import Program
from repro.ir.stmt import Assign, Block, IfStmt, Loop, Stmt


def _same_access(a: ArrayRef, b: ArrayRef) -> bool:
    """Structural equality of two array accesses."""
    return a.name == b.name and tuple(map(str, a.indices)) == tuple(map(str, b.indices))


def _canonicalise_assign(stmt: Assign) -> Assign:
    """Rewrite ``T = T + e`` / ``T = e + T`` / ``T = T * e`` as reductions."""
    if stmt.reduction is not None or not isinstance(stmt.target, ArrayRef):
        return stmt
    rhs = stmt.rhs
    if not isinstance(rhs, BinOp) or rhs.op not in ("+", "*"):
        return stmt
    target = stmt.target
    if isinstance(rhs.lhs, ArrayRef) and _same_access(rhs.lhs, target):
        return Assign(target=target, rhs=rhs.rhs, reduction=rhs.op, name=stmt.name)
    if rhs.op == "+" and isinstance(rhs.rhs, ArrayRef) and _same_access(rhs.rhs, target):
        return Assign(target=target, rhs=rhs.lhs, reduction=rhs.op, name=stmt.name)
    if rhs.op == "*" and isinstance(rhs.rhs, ArrayRef) and _same_access(rhs.rhs, target):
        return Assign(target=target, rhs=rhs.lhs, reduction=rhs.op, name=stmt.name)
    return stmt


def _normalize_stmt(stmt: Stmt) -> Stmt:
    if isinstance(stmt, Assign):
        return _canonicalise_assign(stmt)
    if isinstance(stmt, Block):
        return Block([_normalize_stmt(s) for s in stmt.stmts])
    if isinstance(stmt, Loop):
        body = _normalize_stmt(stmt.body)
        assert isinstance(body, Block)
        return Loop(var=stmt.var, lower=stmt.lower, upper=stmt.upper, body=body,
                    step=stmt.step)
    if isinstance(stmt, IfStmt):
        then_body = _normalize_stmt(stmt.then_body)
        else_body = _normalize_stmt(stmt.else_body) if stmt.else_body else None
        assert isinstance(then_body, Block)
        return IfStmt(stmt.cond, then_body, else_body)
    return stmt


def normalize_reductions(program: Program) -> Program:
    """Return a copy of *program* with reductions in canonical ``+=`` form."""
    body = _normalize_stmt(program.body)
    assert isinstance(body, Block)
    return Program(
        name=program.name,
        params=list(program.params),
        arrays=list(program.arrays),
        body=body,
    )

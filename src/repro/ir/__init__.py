"""Loop-nest intermediate representation (IR) for TDO-CIM.

This package is the reproduction's stand-in for LLVM-IR.  The front-end
(:mod:`repro.frontend`) lowers a restricted C subset into this IR, the
polyhedral layer (:mod:`repro.poly`) extracts iteration domains and access
relations from it, and the code generator (:mod:`repro.codegen`) turns
transformed schedule trees back into IR programs that can be executed by the
interpreter (:mod:`repro.ir.interp`) against the host cost model and the CIM
runtime.

The IR is deliberately small and explicit: expressions, statements,
counted ``for`` loops, and whole programs with typed array declarations.
"""

from repro.ir.types import ElementType
from repro.ir.expr import (
    Expr,
    IntConst,
    FloatConst,
    VarRef,
    ParamRef,
    ArrayRef,
    BinOp,
    UnaryOp,
    Min,
    Max,
)
from repro.ir.stmt import (
    Stmt,
    Assign,
    Block,
    Loop,
    CallStmt,
    IfStmt,
)
from repro.ir.program import ArrayDecl, ParamDecl, Program
from repro.ir.builder import IRBuilder
from repro.ir.printer import to_source
from repro.ir.visitor import IRVisitor, IRTransformer, walk
from repro.ir.interp import Interpreter, ExecutionTrace
from repro.ir.engine import ENGINE_MODES, VectorizedEngine, make_engine

__all__ = [
    "ElementType",
    "Expr",
    "IntConst",
    "FloatConst",
    "VarRef",
    "ParamRef",
    "ArrayRef",
    "BinOp",
    "UnaryOp",
    "Min",
    "Max",
    "Stmt",
    "Assign",
    "Block",
    "Loop",
    "CallStmt",
    "IfStmt",
    "ArrayDecl",
    "ParamDecl",
    "Program",
    "IRBuilder",
    "to_source",
    "IRVisitor",
    "IRTransformer",
    "walk",
    "Interpreter",
    "ExecutionTrace",
    "ENGINE_MODES",
    "VectorizedEngine",
    "make_engine",
]

"""Pretty-print IR programs as C-like source.

The output mirrors the pseudo-C the paper uses in Listings 1-3, which makes
compiler-output comparisons in tests and examples human-readable.
"""

from __future__ import annotations

from repro.ir.expr import Expr
from repro.ir.program import Program
from repro.ir.stmt import Assign, Block, CallStmt, IfStmt, Loop, Stmt

_INDENT = "  "


def to_source(node: Program | Stmt | Expr) -> str:
    """Render a program, statement, or expression as C-like source text."""
    if isinstance(node, Program):
        return _program_to_source(node)
    if isinstance(node, Stmt):
        return "\n".join(_stmt_lines(node, 0))
    return str(node)


def _program_to_source(program: Program) -> str:
    lines: list[str] = []
    sizes = [p.name for p in program.params if p.is_size]
    scalars = [p.name for p in program.params if not p.is_size]
    args = [f"int {name}" for name in sizes]
    args += [f"float {name}" for name in scalars]
    for arr in program.arrays:
        dims = "".join(f"[{d}]" for d in arr.shape)
        args.append(f"{arr.elem_type.value} {arr.name}{dims}")
    lines.append(f"void {program.name}({', '.join(args)}) {{")
    for stmt in program.body.stmts:
        lines.extend(_stmt_lines(stmt, 1))
    lines.append("}")
    return "\n".join(lines)


def _stmt_lines(stmt: Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Block):
        lines = []
        for child in stmt.stmts:
            lines.extend(_stmt_lines(child, depth))
        return lines
    if isinstance(stmt, Loop):
        step = f"{stmt.var} += {stmt.step}" if stmt.step != 1 else f"++{stmt.var}"
        header = (
            f"{pad}for (int {stmt.var} = {stmt.lower}; "
            f"{stmt.var} < {stmt.upper}; {step}) {{"
        )
        lines = [header]
        lines.extend(_stmt_lines(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, Assign):
        op = f"{stmt.reduction}=" if stmt.reduction else "="
        return [f"{pad}{stmt.target} {op} {stmt.rhs};"]
    if isinstance(stmt, CallStmt):
        args = ", ".join(str(a) for a in stmt.args)
        return [f"{pad}{stmt.callee}({args});"]
    if isinstance(stmt, IfStmt):
        lines = [f"{pad}if ({stmt.cond}) {{"]
        lines.extend(_stmt_lines(stmt.then_body, depth + 1))
        if stmt.else_body is not None:
            lines.append(f"{pad}}} else {{")
            lines.extend(_stmt_lines(stmt.else_body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    return [f"{pad}{stmt}"]

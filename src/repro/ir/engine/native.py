"""Optional native (C-via-cffi) backend for the execution engine.

Eligible host loop nests are translated **literally** — loop for loop,
statement for statement, in original program order — into a small C
kernel, compiled with the system C compiler and called through ``cffi``'s
ABI mode (``dlopen``; no Python headers needed).  Because the translation
preserves the interpreter's evaluation order exactly, and the code
generator emulates NumPy's NEP 50 scalar-promotion rules with explicit C
casts (float constants are emitted as C99 hex literals, so not a single
bit is lost in translation), the native results are bit-identical to the
interpreter.  Compilation uses ``-ffp-contract=off`` so the compiler
cannot fuse multiply-adds into FMAs, which would change rounding.

The backend is strictly optional and fails soft at every layer:

* :func:`native_available` gates on ``cffi`` being importable, a C
  compiler being on ``PATH``, and the ``REPRO_NATIVE`` environment
  variable not disabling it (``0``/``off``/``false``).
* A nest the code generator cannot translate raises
  :class:`NativeUnsupported` with the reason; the engine runs that nest
  on the fold/vectorized path instead.
* At call time, parameter/array types are revalidated; any mismatch (or
  an out-of-bounds subscript detected by the kernel's index guards)
  restores the written arrays from a snapshot and falls back — NumPy's
  negative-index wrapping and IndexError behavior are reproduced by the
  Python paths, never approximated natively.

Compiled kernels are content-addressed by the SHA-256 of their C source
and cached on disk (``REPRO_NATIVE_CACHE`` overrides the location), so
repeat compilations across processes are ``dlopen``-only.  The generated
source also rides the :class:`~repro.compiler.report.CompilationReport`
(``nest_lowerings``), which is what the kernel-compile cache persists.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    FloatConst,
    IntConst,
    Max,
    Min,
    ParamRef,
    UnaryOp,
    VarRef,
)
from repro.ir.interp import CallHandler
from repro.ir.program import Program
from repro.ir.stmt import Assign, Block, Loop, Stmt
from repro.ir.types import ElementType
from repro.ir.engine.engine import VectorizedEngine


class NativeUnsupported(Exception):
    """The code generator cannot translate this nest exactly."""


# ----------------------------------------------------------------------
# Availability
# ----------------------------------------------------------------------

_DISABLE_VALUES = ("0", "off", "false", "no")


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def native_available() -> bool:
    """True when the native backend can compile and load kernels."""
    if os.environ.get("REPRO_NATIVE", "").lower() in _DISABLE_VALUES:
        return False
    if _find_compiler() is None:
        return False
    try:
        import cffi  # noqa: F401
    except ImportError:
        return False
    return True


# ----------------------------------------------------------------------
# Typed C code generation
# ----------------------------------------------------------------------

#: Value types: weak (python) int, weak float, and strong array elements.
_I64, _F64W, _F32, _F64 = "i64", "f64w", "f32", "f64"

_C_TYPE = {_I64: "int64_t", _F64W: "double", _F32: "float", _F64: "double"}

_ELEM_TYPE = {ElementType.F32: _F32, ElementType.F64: _F64}


def _promote(lhs: str, rhs: str) -> str:
    """NEP 50 result type of a binary operation between *lhs* and *rhs*."""
    if _F64 in (lhs, rhs):
        return _F64
    if _F32 in (lhs, rhs):
        return _F32  # weak scalars convert to the array dtype
    if _F64W in (lhs, rhs):
        return _F64W
    return _I64


def _cast(code: str, src: str, dst: str) -> str:
    if src == dst or (src, dst) == (_F64W, _F64) or (src, dst) == (_F64, _F64W):
        return code
    return f"({_C_TYPE[dst]})({code})"


@dataclass
class NativeKernel:
    """Generated C source plus the argument layout to call it with."""

    c_source: str
    float_params: tuple[str, ...]
    int_params: tuple[str, ...]
    array_names: tuple[str, ...]
    written: tuple[str, ...]


class _CodeGen:
    def __init__(self, root: Loop, program: Program):
        self.root = root
        self.program = program
        self.lines: list[str] = []
        self.indent = 1
        self.temp = 0
        self.loop_vars: set[str] = {
            node.var for node in root.walk() if isinstance(node, Loop)
        }
        self.param_types = {p.name: p.elem_type for p in self.program.params}
        self.used_arrays: list[str] = []
        self.used_fparams: list[str] = []
        self.used_iparams: list[str] = []
        self.written: list[str] = []
        self.uses_pymod = False

    # -- bookkeeping ----------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self.temp += 1
        return f"_{prefix}{self.temp}"

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def _use_array(self, name: str):
        if not self.program.has_array(name):
            raise NativeUnsupported(f"unknown array {name}")
        decl = self.program.array(name)
        if decl.elem_type not in _ELEM_TYPE:
            raise NativeUnsupported(f"array {name} has integer element type")
        if name not in self.used_arrays:
            self.used_arrays.append(name)
        return decl

    def _use_param(self, name: str) -> str:
        elem = self.param_types[name]
        if elem.is_float:
            if name not in self.used_fparams:
                self.used_fparams.append(name)
            return _F64W
        if name not in self.used_iparams:
            self.used_iparams.append(name)
        return _I64

    # -- expressions ----------------------------------------------------
    def expr(self, node: Expr) -> tuple[str, str]:
        """Emit one expression; returns (C code, value type)."""
        if isinstance(node, IntConst):
            return f"INT64_C({node.value})", _I64
        if isinstance(node, FloatConst):
            return float(node.value).hex(), _F64W
        if isinstance(node, (VarRef, ParamRef)):
            name = node.name
            if name in self.loop_vars:
                return name, _I64
            if name in self.param_types:
                return name, self._use_param(name)
            raise NativeUnsupported(f"non-parameter scalar {name}")
        if isinstance(node, ArrayRef):
            return self.array_read(node)
        if isinstance(node, UnaryOp):
            code, kind = self.expr(node.operand)
            return f"(-({code}))", kind
        if isinstance(node, BinOp):
            return self.binop(node)
        if isinstance(node, (Min, Max)):
            lhs, lk = self.expr(node.lhs)
            rhs, rk = self.expr(node.rhs)
            if lk != _I64 or rk != _I64:
                raise NativeUnsupported("min/max on floating operands")
            a, b = self._fresh("m"), self._fresh("m")
            self.emit(f"int64_t {a} = {lhs};")
            self.emit(f"int64_t {b} = {rhs};")
            op = "<" if isinstance(node, Min) else ">"
            return f"({a} {op} {b} ? {a} : {b})", _I64
        raise NativeUnsupported(f"unsupported expression {type(node).__name__}")

    def binop(self, node: BinOp) -> tuple[str, str]:
        lhs, lk = self.expr(node.lhs)
        rhs, rk = self.expr(node.rhs)
        op = node.op
        if op == "/":
            # Python semantics: int/int is true division to double; the
            # result could then be divided by zero (Python raises) — too
            # divergent to translate, so only the fold path handles "/".
            raise NativeUnsupported("division")
        if op == "%":
            if lk != _I64 or rk != _I64:
                raise NativeUnsupported("modulo on floating operands")
            self.uses_pymod = True
            return f"pymod({lhs}, {rhs})", _I64
        if op not in ("+", "-", "*"):
            raise NativeUnsupported(f"operator {op}")
        kind = _promote(lk, rk)
        return (
            f"({_cast(lhs, lk, kind)} {op} {_cast(rhs, rk, kind)})",
            kind,
        )

    def index_expr(self, node: Expr) -> str:
        code, kind = self.expr(node)
        if kind != _I64:
            raise NativeUnsupported("non-integer subscript arithmetic")
        return code

    def flat_index(self, ref: ArrayRef) -> str:
        """Emit guarded index normalization; returns the flat-offset temp."""
        decl = self._use_array(ref.name)
        if len(ref.indices) != decl.rank:
            raise NativeUnsupported(f"rank mismatch on {ref.name}")
        name = ref.name
        flat = self._fresh("idx")
        self.emit(f"int64_t {flat} = 0;")
        for axis, idx in enumerate(ref.indices):
            code = self.index_expr(idx)
            tmp = self._fresh("i")
            dim = f"dims_{name}[{axis}]"
            self.emit(f"int64_t {tmp} = {code};")
            self.emit(f"if ({tmp} < 0) {tmp} += {dim};")
            self.emit(f"if ({tmp} < 0 || {tmp} >= {dim}) return 1;")
            self.emit(f"{flat} = {flat} * {dim} + {tmp};")
        return flat

    def array_read(self, ref: ArrayRef) -> tuple[str, str]:
        decl = self._use_array(ref.name)
        flat = self.flat_index(ref)
        return f"{ref.name}[{flat}]", _ELEM_TYPE[decl.elem_type]

    # -- statements -----------------------------------------------------
    def stmt(self, node: Stmt) -> None:
        if isinstance(node, Block):
            for child in node.stmts:
                self.stmt(child)
        elif isinstance(node, Loop):
            self.loop(node)
        elif isinstance(node, Assign):
            self.assign(node)
        else:
            raise NativeUnsupported(f"statement {type(node).__name__}")

    def loop(self, node: Loop) -> None:
        lo_code = self.index_expr(node.lower)
        hi_code = self.index_expr(node.upper)
        lo, hi = self._fresh("lo"), self._fresh("hi")
        self.emit(f"int64_t {lo} = {lo_code};")
        self.emit(f"int64_t {hi} = {hi_code};")
        self.emit(
            f"for (int64_t {node.var} = {lo}; {node.var} < {hi}; "
            f"{node.var} += {node.step}) {{"
        )
        self.indent += 1
        self.stmt(node.body)
        self.indent -= 1
        self.emit("}")

    def assign(self, node: Assign) -> None:
        target = node.target
        if not isinstance(target, ArrayRef):
            raise NativeUnsupported(f"scalar target {target}")
        decl = self._use_array(target.name)
        if target.name not in self.written:
            self.written.append(target.name)
        elem = _ELEM_TYPE[decl.elem_type]
        value, kind = self.expr(node.rhs)
        flat = self.flat_index(target)
        slot = f"{target.name}[{flat}]"
        if node.reduction in ("+", "*"):
            # In-place update: computed in the NEP 50 promoted type of
            # (element, value), then cast back on store — exactly NumPy's
            # in-place ufunc behavior the interpreter hits per element.
            op = node.reduction
            kind2 = _promote(elem, kind)
            self.emit(
                f"{slot} = ({_C_TYPE[elem]})"
                f"({_cast(slot, elem, kind2)} {op} {_cast(value, kind, kind2)});"
            )
        elif node.reduction is None:
            self.emit(f"{slot} = ({_C_TYPE[elem]})({value});")
        else:
            raise NativeUnsupported(f"reduction {node.reduction!r}")

    # -- assembly -------------------------------------------------------
    def generate(self) -> NativeKernel:
        self.stmt(self.root)
        body = self.lines
        header = [
            "#include <stdint.h>",
            "",
        ]
        if self.uses_pymod:
            header += [
                "static inline int64_t pymod(int64_t a, int64_t b) {",
                "    int64_t r = a % b;",
                "    return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;",
                "}",
                "",
            ]
        header.append(
            "int kernel(const double *fp, const int64_t *ip, "
            "char **arrays, const int64_t *dims) {"
        )
        prologue = []
        for pos, name in enumerate(self.used_fparams):
            prologue.append(f"    double {name} = fp[{pos}];")
        for pos, name in enumerate(self.used_iparams):
            prologue.append(f"    int64_t {name} = ip[{pos}];")
        offset = 0
        for pos, name in enumerate(self.used_arrays):
            decl = self.program.array(name)
            ctype = _C_TYPE[_ELEM_TYPE[decl.elem_type]]
            prologue.append(f"    {ctype} *{name} = ({ctype} *)arrays[{pos}];")
            prologue.append(
                f"    const int64_t *dims_{name} = dims + {offset};"
            )
            offset += decl.rank
        footer = ["    return 0;", "}", ""]
        source = "\n".join(header + prologue + body + footer)
        return NativeKernel(
            c_source=source,
            float_params=tuple(self.used_fparams),
            int_params=tuple(self.used_iparams),
            array_names=tuple(self.used_arrays),
            written=tuple(self.written),
        )


def generate_nest_source(root: Loop, program: Program) -> NativeKernel:
    """Translate one loop nest to C, or raise :class:`NativeUnsupported`."""
    return _CodeGen(root, program).generate()


# ----------------------------------------------------------------------
# Compilation and loading (content-addressed .so cache)
# ----------------------------------------------------------------------

_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fwrapv")

_loaded_libs: dict[str, object] = {}
_ffi = None


def _get_ffi():
    global _ffi
    if _ffi is None:
        import cffi

        _ffi = cffi.FFI()
        _ffi.cdef(
            "int kernel(const double *fp, const int64_t *ip, "
            "char **arrays, const int64_t *dims);"
        )
    return _ffi


def native_cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else "user"
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def compile_and_load(c_source: str):
    """Compile *c_source* (or reuse the cached .so) and return the cffi lib.

    Returns ``None`` when compilation or loading fails for any reason —
    the engine then stays on the Python fast path.
    """
    digest = hashlib.sha256(c_source.encode()).hexdigest()
    lib = _loaded_libs.get(digest)
    if lib is not None:
        return lib
    try:
        ffi = _get_ffi()
        cache_dir = native_cache_dir()
        os.makedirs(cache_dir, exist_ok=True)
        so_path = os.path.join(cache_dir, f"{digest}.so")
        if not os.path.exists(so_path):
            compiler = _find_compiler()
            if compiler is None:
                return None
            fd, c_path = tempfile.mkstemp(suffix=".c", dir=cache_dir)
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(c_source)
                fd_so, tmp_so = tempfile.mkstemp(suffix=".so", dir=cache_dir)
                os.close(fd_so)
                result = subprocess.run(
                    [compiler, *_CFLAGS, c_path, "-o", tmp_so],
                    capture_output=True,
                    timeout=120,
                )
                if result.returncode != 0:
                    os.unlink(tmp_so)
                    return None
                os.replace(tmp_so, so_path)
            finally:
                os.unlink(c_path)
        lib = ffi.dlopen(so_path)
    except Exception:
        return None
    _loaded_libs[digest] = lib
    return lib


# ----------------------------------------------------------------------
# The native engine
# ----------------------------------------------------------------------


class _CompiledNest:
    """One nest bound to its compiled kernel and argument layout."""

    def __init__(self, kernel: NativeKernel, lib):
        self.kernel = kernel
        self.lib = lib
        self.ffi = _get_ffi()

    def run(self, scalars: dict, arrays: dict) -> bool:
        """Execute natively; True on success, False to fall back.

        On fallback nothing observable has changed: written arrays are
        snapshotted before the call and restored if the kernel bails on
        an index guard.
        """
        kernel = self.kernel
        fvals = []
        for name in kernel.float_params:
            value = scalars.get(name)
            if type(value) is not float:
                return False  # weak-type mismatch: Python path is exact
            fvals.append(value)
        ivals = []
        for name in kernel.int_params:
            value = scalars.get(name)
            if type(value) is not int:
                return False
            ivals.append(value)
        buffers = []
        dims = []
        for name in kernel.array_names:
            array = arrays.get(name)
            if (
                not isinstance(array, np.ndarray)
                or not array.flags.c_contiguous
                or array.dtype not in (np.float32, np.float64)
            ):
                return False
            buffers.append(array)
            dims.extend(array.shape)
        ffi = self.ffi
        fp = ffi.new("double[]", fvals or [0.0])
        ip = ffi.new("int64_t[]", ivals or [0])
        views = [ffi.from_buffer(array) for array in buffers]
        ptrs = ffi.new("char *[]", [ffi.cast("char *", v) for v in views])
        dim_buf = ffi.new("int64_t[]", dims or [0])
        snapshots = {
            name: arrays[name].copy()
            for name in kernel.written
            if name in arrays
        }
        rc = self.lib.kernel(fp, ip, ptrs, dim_buf)
        if rc != 0:
            for name, saved in snapshots.items():
                np.copyto(arrays[name], saved)
            return False  # Python path reproduces wrap/IndexError exactly
        return True


class NativeEngine(VectorizedEngine):
    """Fold engine that dispatches eligible nests to compiled C kernels."""

    def __init__(self, program: Program, call_handler: Optional[CallHandler] = None):
        super().__init__(program, call_handler, fold=True)
        self._native_nests: dict[int, Optional[_CompiledNest]] = {}

    def _native_nest(self, root: Loop) -> Optional[_CompiledNest]:
        compiled = self._native_nests.get(id(root), _NATIVE_UNSET)
        if compiled is _NATIVE_UNSET:
            compiled = None
            if native_available():
                try:
                    kernel = generate_nest_source(root, self.program)
                except NativeUnsupported:
                    kernel = None
                if kernel is not None:
                    lib = compile_and_load(kernel.c_source)
                    if lib is not None:
                        compiled = _CompiledNest(kernel, lib)
            self._native_nests[id(root)] = compiled
        return compiled

    def _exec_planned_nest(self, plan) -> None:
        compiled = self._native_nest(plan.root)
        if compiled is not None and compiled.run(self.scalars, self.arrays):
            return
        super()._exec_planned_nest(plan)


_NATIVE_UNSET = object()


__all__ = [
    "NativeEngine",
    "NativeKernel",
    "NativeUnsupported",
    "compile_and_load",
    "generate_nest_source",
    "native_available",
    "native_cache_dir",
]

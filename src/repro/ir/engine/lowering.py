"""Per-nest lowering report: which tier each loop nest executes on, and why.

Every top-level loop nest of a program lands on exactly one lowering tier:

* ``"interpreter"`` — the vectorization analysis rejected the nest (the
  reason says what: calls, scalar accumulators, non-affine bounds, ragged
  enumeration, no vectorizable axis).
* ``"vectorized"`` — the nest is planned, but at least one assignment
  stays on the generic broadcast-gather path (the per-statement entries
  say which and why).
* ``"fold"`` — every assignment is slice-lowered: sequential reduction
  loops run as ordered folds of vectorized view updates, bit-identical to
  the interpreter.  This is the tier the default ``"fast"`` engine aims
  for.
* ``"native"`` — the nest additionally compiles to a C kernel (engine
  ``"native"`` with a working toolchain); the generated source rides the
  report for inspection.

The report is pure analysis — building it executes nothing — so the
compiler's ``engine-lower`` pass can attach it to the
:class:`~repro.compiler.report.CompilationReport` (it is picklable and
travels through the kernel-compile cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.program import Program
from repro.ir.stmt import Loop
from repro.ir.engine.analysis import (
    build_plan_with_reason,
    plan_assigns,
)

#: Tier names, slowest to fastest.
TIERS = ("interpreter", "vectorized", "fold", "native")


@dataclass
class StatementLowering:
    """Lowering outcome of one assignment inside a planned nest."""

    statement: str
    tier: str
    reason: str = ""


@dataclass
class NestLowering:
    """Lowering outcome of one top-level loop nest."""

    nest: str
    tier: str
    reason: str = ""
    statements: list[StatementLowering] = field(default_factory=list)
    #: Generated C source when the nest lowers to the native tier.
    c_source: str = ""

    def summary(self) -> str:
        line = f"{self.nest}: {self.tier}"
        if self.reason:
            line += f" ({self.reason})"
        return line


def _describe_nest(root: Loop) -> str:
    return f"for {root.var} in [{root.lower}, {root.upper})"


def nest_lowering(
    root: Loop, program: Optional[Program] = None, native: bool = False
) -> NestLowering:
    """Classify one top-level loop nest onto its lowering tier."""
    plan, reason = build_plan_with_reason(root)
    if plan is None:
        return NestLowering(
            nest=_describe_nest(root), tier="interpreter", reason=reason
        )
    statements = []
    gather_reasons = []
    for assign in plan_assigns(plan):
        if assign.fold is not None:
            statements.append(
                StatementLowering(statement=str(assign.stmt), tier="fold")
            )
        else:
            statements.append(
                StatementLowering(
                    statement=str(assign.stmt),
                    tier="vectorized",
                    reason=assign.fold_reason,
                )
            )
            gather_reasons.append(assign.fold_reason)
    tier = "vectorized" if gather_reasons else "fold"
    reason = "; ".join(dict.fromkeys(gather_reasons))
    c_source = ""
    if native and program is not None:
        from repro.ir.engine.native import generate_nest_source, NativeUnsupported

        try:
            c_source = generate_nest_source(root, program).c_source
            tier = "native"
            reason = ""
        except NativeUnsupported as exc:
            if reason:
                reason += f"; native: {exc}"
            else:
                reason = f"native: {exc}"
    return NestLowering(
        nest=_describe_nest(root),
        tier=tier,
        reason=reason,
        statements=statements,
        c_source=c_source,
    )


def program_lowering_report(
    program: Program, native: bool = False
) -> list[NestLowering]:
    """Lowering report for every top-level loop nest of *program*.

    ``native=True`` additionally attempts the C lowering per nest (pure
    code generation — nothing is compiled or executed here).
    """
    return [
        nest_lowering(stmt, program, native=native)
        for stmt in program.body.stmts
        if isinstance(stmt, Loop)
    ]


def tier_histogram(report: list[NestLowering]) -> dict[str, int]:
    """Nest count per tier (all tiers present, zero-filled)."""
    counts = {tier: 0 for tier in TIERS}
    for nest in report:
        counts[nest.tier] = counts.get(nest.tier, 0) + 1
    return counts


__all__ = [
    "NestLowering",
    "StatementLowering",
    "TIERS",
    "nest_lowering",
    "program_lowering_report",
    "tier_histogram",
]

"""Vectorization analysis: loop distribution and axis classification.

The engine turns a loop nest into an execution *plan*:

1. **Structural screening** — the nest may contain only counted loops and
   array assignments, with affine-friendly bound and index expressions.
   Anything else (calls, data-dependent branches, scalar accumulators,
   indirect indexing) makes the whole nest fall back to the interpreter.
2. **Loop distribution** — each loop body is split into independence groups
   (maximal loop fission), so that a statement sharing a loop with an
   unrelated reduction does not inhibit its vectorization.  Two statements
   stay in the same group only when they conflict: they touch a common
   array, at least one writes it, and the accesses are not aligned on the
   loop variable.
3. **Classification** — every distributed loop is marked ``vec`` (executed
   as a NumPy array axis) or sequential (a Python loop).  A loop is
   vectorizable when every array written in its subtree is accessed through
   a dedicated dimension that is affine in the loop variable with a nonzero
   coefficient (and independent of the other vectorized variables), which
   guarantees that distinct iterations touch disjoint elements.  Reduction
   loops — the loop variable missing from the target subscripts — stay
   sequential, which is what keeps floating-point accumulation order, and
   therefore results, bit-identical to the interpreter.

The plan also records which reduction loops can be lowered to
``np.einsum`` contractions; the engine only uses those taggings in its
opt-in "vectorized-fast" mode because einsum reassociates the reduction
sum.

On top of the gather-based plan, every planned assignment is analysed for
the exact **fold** lowering (the default "fast" engine): when every array
subscript is affine with at most one vectorized variable per dimension
(``coeff * var + offset``) and each vectorized variable separates exactly
one dimension per reference, the assignment can be executed through basic
NumPy slices (views) instead of broadcast index-grid gathers.  Sequential
reduction loops then become ordered folds of vectorized slice updates —
per element the exact same operations in the exact same order as the
interpreter, so results stay bit-identical while the per-iteration cost
drops from building and gathering index grids to taking views.  The
analysis records a human-readable reason whenever an assignment cannot be
slice-lowered; the engine falls back to the gather path (and the per-nest
lowering report surfaces the reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    FloatConst,
    IntConst,
    Max,
    Min,
    ParamRef,
    UnaryOp,
    VarRef,
)
from repro.ir.stmt import Assign, Block, Loop, Stmt
from repro.poly.affine import affine_from_expr

# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------


@dataclass
class FoldDim:
    """Lowering of one subscript dimension of one array reference.

    ``kind`` is ``"scalar"`` (no vectorized variable: the index expression
    evaluates to a plain integer) or ``"slice"`` (affine in exactly one
    vectorized variable: ``coeff * vec_var + offset`` becomes a basic
    slice).  ``expr`` is the original index expression — the engine
    evaluates it with the vectorized variables bound to zero to recover
    the runtime offset.
    """

    kind: str
    expr: Expr
    vec_var: Optional[str] = None
    coeff: int = 0


@dataclass
class FoldRef:
    """Slice lowering of one array reference."""

    name: str
    dims: tuple[FoldDim, ...]


@dataclass
class FoldSpec:
    """Exact slice lowering of one planned assignment.

    ``refs`` maps ``id()`` of every :class:`~repro.ir.expr.ArrayRef` node
    in the right-hand side to its :class:`FoldRef`; ``target`` is the
    lowering of the write.  The spec is only valid for the statement
    objects it was built from (identity-keyed, like the plan itself).
    """

    target: FoldRef
    refs: dict[int, FoldRef]
    vec_vars: tuple[str, ...]


@dataclass
class PlanAssign:
    """One assignment inside a planned nest."""

    stmt: Assign
    #: Names of the enclosing vectorized loop variables, outermost first
    #: (filled in after classification).
    vec_vars: tuple[str, ...] = ()
    #: Exact slice lowering ("fast" engine), or None with the reason why
    #: this assignment stays on the gather path.
    fold: Optional["FoldSpec"] = None
    fold_reason: str = ""


@dataclass
class PlanLoop:
    """One (possibly distributed) loop of the plan."""

    var: str
    lower: Expr
    upper: Expr
    step: int
    body: list["PlanNode"] = field(default_factory=list)
    vec: bool = True
    #: Einsum lowering of a sequential reduction loop (fast mode only).
    einsum: Optional["EinsumSpec"] = None
    # Compiled bound closures, filled lazily by the engine.
    lower_fn: Optional[Callable] = None
    upper_fn: Optional[Callable] = None


PlanNode = Union[PlanLoop, PlanAssign]


@dataclass
class NestPlan:
    """Complete plan for one top-level loop nest."""

    root: Loop
    nodes: list[PlanNode] = field(default_factory=list)
    #: Per original-loop id: loop variables referenced by bounds deeper in
    #: the nest (drives enumeration in the analytical trace pass).
    enumerate_vars: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def has_vectorized_loop(self) -> bool:
        def any_vec(nodes: list[PlanNode]) -> bool:
            for node in nodes:
                if isinstance(node, PlanLoop):
                    if node.vec or any_vec(node.body):
                        return True
            return False

        return any_vec(self.nodes)


@dataclass
class EinsumSpec:
    """A reduction loop recognised as a multiplicative contraction."""

    #: The reduction variable (the tagged loop's own variable).
    red_var: str
    #: Array factors: (array name, per-dimension variable names).
    array_factors: tuple[tuple[str, tuple[str, ...]], ...]
    #: Scalar factors: compiled closures over (scalars, arrays).
    scalar_exprs: tuple[Expr, ...]
    #: Target array and its subscript variables (plain, one var per dim).
    target: str
    target_vars: tuple[str, ...]


# ----------------------------------------------------------------------
# Structural screening
# ----------------------------------------------------------------------


def _index_expr_ok(expr: Expr) -> bool:
    """Index expressions must stay integer-exact under NumPy evaluation."""
    if isinstance(expr, (IntConst, VarRef, ParamRef)):
        return True
    if isinstance(expr, BinOp):
        # "/" would produce floats (the interpreter truncates with int());
        # everything else is exact integer arithmetic in both worlds.
        return (
            expr.op in ("+", "-", "*", "%")
            and _index_expr_ok(expr.lhs)
            and _index_expr_ok(expr.rhs)
        )
    if isinstance(expr, UnaryOp):
        return _index_expr_ok(expr.operand)
    if isinstance(expr, (Min, Max)):
        return _index_expr_ok(expr.lhs) and _index_expr_ok(expr.rhs)
    return False  # ArrayRef (indirect indexing), FloatConst, unknown nodes


def _bound_expr_ok(expr: Expr) -> bool:
    """Loop bounds evaluated analytically must be integer-exact."""
    return _index_expr_ok(expr)


def _value_expr_ok(expr: Expr) -> bool:
    """Right-hand sides must evaluate identically element- and array-wise.

    ``Min``/``Max`` are excluded: the interpreter evaluates them with
    Python's ``min``/``max`` (which preserves operand dtypes) while the
    vectorized path would promote, so bit-identity could be lost.
    """
    if isinstance(expr, (IntConst, FloatConst, VarRef, ParamRef)):
        return True
    if isinstance(expr, ArrayRef):
        return all(_index_expr_ok(i) for i in expr.indices)
    if isinstance(expr, BinOp):
        return _value_expr_ok(expr.lhs) and _value_expr_ok(expr.rhs)
    if isinstance(expr, UnaryOp):
        return _value_expr_ok(expr.operand)
    return False


def _loop_vars_in(root: Loop) -> set[str]:
    return {node.var for node in root.walk() if isinstance(node, Loop)}


def _screen_nest(root: Loop) -> bool:
    """True when the whole nest is made of plannable constructs."""
    for node in root.walk():
        if isinstance(node, Loop):
            if not (_bound_expr_ok(node.lower) and _bound_expr_ok(node.upper)):
                return False
        elif isinstance(node, Assign):
            if not isinstance(node.target, ArrayRef):
                return False  # scalar accumulators stay on the interpreter
            if not all(_index_expr_ok(i) for i in node.target.indices):
                return False
            if not _value_expr_ok(node.rhs):
                return False
        elif isinstance(node, Block):
            continue
        else:
            return False  # IfStmt, CallStmt, anything unknown
    return True


def _compute_enumerate_vars(root: Loop) -> Optional[dict[int, frozenset[str]]]:
    """Loop variables that deeper bounds reference, per original loop.

    Returns ``None`` when the analytical trace pass cannot handle the nest:
    a loop that must be enumerated (its variable appears in deeper bounds)
    must itself have parameter-only bounds, otherwise the enumeration would
    be ragged.
    """
    loop_vars = _loop_vars_in(root)
    result: dict[int, frozenset[str]] = {}

    def visit(loop: Loop) -> set[str]:
        used: set[str] = set()
        for child in loop.body.walk():
            if isinstance(child, Loop):
                used |= (child.lower.free_vars() | child.upper.free_vars()) & loop_vars
        result[id(loop)] = frozenset(used)
        return used

    for node in root.walk():
        if isinstance(node, Loop):
            needed = visit(node)
            if node.var in needed:
                own = (node.lower.free_vars() | node.upper.free_vars()) & loop_vars
                if own:
                    return None  # ragged enumeration — fall back
    return result


# ----------------------------------------------------------------------
# Access collection
# ----------------------------------------------------------------------


@dataclass
class _Accesses:
    """Array accesses of one plan subtree."""

    reads: dict[str, list[tuple[Expr, ...]]] = field(default_factory=dict)
    writes: dict[str, list[tuple[Expr, ...]]] = field(default_factory=dict)

    def add_read(self, name: str, indices: tuple[Expr, ...]) -> None:
        self.reads.setdefault(name, []).append(indices)

    def add_write(self, name: str, indices: tuple[Expr, ...]) -> None:
        self.writes.setdefault(name, []).append(indices)

    def all_accesses(self, name: str) -> list[tuple[Expr, ...]]:
        return self.reads.get(name, []) + self.writes.get(name, [])

    def touched(self) -> set[str]:
        return set(self.reads) | set(self.writes)


def _collect_accesses(node: PlanNode, acc: Optional[_Accesses] = None) -> _Accesses:
    acc = acc or _Accesses()
    if isinstance(node, PlanAssign):
        stmt = node.stmt
        target = stmt.target
        assert isinstance(target, ArrayRef)
        acc.add_write(target.name, target.indices)
        if stmt.reduction is not None:
            acc.add_read(target.name, target.indices)  # implicit load
        for sub in stmt.rhs.walk():
            if isinstance(sub, ArrayRef):
                acc.add_read(sub.name, sub.indices)
    else:
        for child in node.body:
            _collect_accesses(child, acc)
    return acc


# ----------------------------------------------------------------------
# Alignment tests
# ----------------------------------------------------------------------


def _aligned_dim(
    accesses: list[tuple[Expr, ...]],
    var: str,
    loop_vars: set[str],
    exclude_vars: set[str],
) -> bool:
    """True when a dimension separates *var* iterations for all accesses.

    The dimension must carry a syntactically identical index expression in
    every access, affine in *var* with a nonzero coefficient, and with zero
    coefficients for every variable in *exclude_vars* (the other vectorized
    variables — this keeps the joint write mapping injective).
    """
    ranks = {len(t) for t in accesses}
    if len(ranks) != 1:
        return False
    (rank,) = ranks
    for d in range(rank):
        first = accesses[0][d]
        if any(acc[d] != first for acc in accesses[1:]):
            continue
        free = first.free_vars()
        params = free - loop_vars
        affine = affine_from_expr(first, loop_vars, params)
        if affine is None or affine.coeff(var) == 0:
            continue
        if any(affine.coeff(other) != 0 for other in exclude_vars if other != var):
            continue
        return True
    return False


# ----------------------------------------------------------------------
# Loop distribution
# ----------------------------------------------------------------------


def _conflict(a: _Accesses, b: _Accesses, var: str, loop_vars: set[str]) -> bool:
    """Do two statement groups forbid distribution of the *var* loop?"""
    shared = a.touched() & b.touched()
    for name in shared:
        if name not in a.writes and name not in b.writes:
            continue  # read-read: never a conflict
        accesses = a.all_accesses(name) + b.all_accesses(name)
        if not _aligned_dim(accesses, var, loop_vars, set()):
            return True
    return False


def _independence_groups(
    items: list[PlanNode], var: str, loop_vars: set[str]
) -> list[list[PlanNode]]:
    """Partition a loop body into maximal distributable groups (in order)."""
    n = len(items)
    accs = [_collect_accesses(item) for item in items]
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(n):
        for j in range(i + 1, n):
            if _conflict(accs[i], accs[j], var, loop_vars):
                parent[find(i)] = find(j)

    # Groups must be contiguous statement ranges: emitting an interleaved
    # group out of program order would hoist a statement above a
    # same-iteration producer it depends on (e.g. [S1, S2, S3] with S1~S3
    # conflicting and S3 reading what S2 writes).  Merge any groups whose
    # index intervals overlap until all groups are intervals.
    changed = True
    while changed:
        changed = False
        members: dict[int, list[int]] = {}
        for i in range(n):
            members.setdefault(find(i), []).append(i)
        intervals = sorted(
            (min(idxs), max(idxs), root) for root, idxs in members.items()
        )
        for (_, hi1, r1), (lo2, _, r2) in zip(intervals, intervals[1:]):
            if lo2 < hi1:  # interleaved
                parent[find(r1)] = find(r2)
                changed = True

    groups: dict[int, list[PlanNode]] = {}
    order: list[int] = []
    for i, item in enumerate(items):
        root = find(i)
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(item)
    return [groups[root] for root in order]


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------


def _flatten_body(block: Block) -> list[Stmt]:
    out: list[Stmt] = []
    for stmt in block.stmts:
        if isinstance(stmt, Block):
            out.extend(_flatten_body(stmt))
        else:
            out.append(stmt)
    return out


def _rewrite_loop(loop: Loop, loop_vars: set[str]) -> list[PlanLoop]:
    items: list[PlanNode] = []
    for stmt in _flatten_body(loop.body):
        if isinstance(stmt, Assign):
            items.append(PlanAssign(stmt))
        else:
            assert isinstance(stmt, Loop)
            items.extend(_rewrite_loop(stmt, loop_vars))
    groups = _independence_groups(items, loop.var, loop_vars)
    return [
        PlanLoop(loop.var, loop.lower, loop.upper, loop.step, body=group)
        for group in groups
    ]


def _vec_legal(node: PlanLoop, loop_vars: set[str], vec_names: set[str]) -> bool:
    acc = _collect_accesses(node)
    for name in acc.writes:
        accesses = acc.all_accesses(name)
        if not _aligned_dim(accesses, node.var, loop_vars, vec_names):
            return False
    return True


def _classify(nodes: list[PlanNode], loop_vars: set[str]) -> None:
    """Fixpoint VEC/SEQ classification over the plan tree."""

    def all_loops(items: list[PlanNode]) -> list[PlanLoop]:
        result = []
        for item in items:
            if isinstance(item, PlanLoop):
                result.append(item)
                result.extend(all_loops(item.body))
        return result

    loops = all_loops(nodes)

    def demote_bound_deps(items: list[PlanNode], ancestors: list[PlanLoop]) -> bool:
        changed = False
        for item in items:
            if not isinstance(item, PlanLoop):
                continue
            free = item.lower.free_vars() | item.upper.free_vars()
            for anc in ancestors:
                if anc.vec and anc.var in free:
                    anc.vec = False
                    changed = True
            changed |= demote_bound_deps(item.body, ancestors + [item])
        return changed

    changed = True
    while changed:
        changed = demote_bound_deps(nodes, [])
        vec_names = {loop.var for loop in loops if loop.vec}
        for loop in loops:
            if loop.vec and not _vec_legal(loop, loop_vars, vec_names):
                loop.vec = False
                changed = True
                vec_names = {l.var for l in loops if l.vec}

    def record_vec_vars(items: list[PlanNode], stack: tuple[str, ...]) -> None:
        for item in items:
            if isinstance(item, PlanAssign):
                item.vec_vars = stack
            else:
                child_stack = stack + (item.var,) if item.vec else stack
                record_vec_vars(item.body, child_stack)

    record_vec_vars(nodes, ())


# ----------------------------------------------------------------------
# Einsum tagging (fast mode)
# ----------------------------------------------------------------------


def _product_factors(expr: Expr) -> Optional[list[Expr]]:
    if isinstance(expr, BinOp) and expr.op == "*":
        lhs = _product_factors(expr.lhs)
        rhs = _product_factors(expr.rhs)
        if lhs is None or rhs is None:
            return None
        return lhs + rhs
    if isinstance(expr, (IntConst, FloatConst, VarRef, ParamRef, ArrayRef)):
        return [expr]
    return None


def _tag_einsum(nodes: list[PlanNode], loop_vars: set[str]) -> None:
    def visit(items: list[PlanNode], vec_stack: tuple[str, ...]) -> None:
        for item in items:
            if not isinstance(item, PlanLoop):
                continue
            if item.vec:
                visit(item.body, vec_stack + (item.var,))
                continue
            visit(item.body, vec_stack)
            if len(item.body) != 1 or not isinstance(item.body[0], PlanAssign):
                continue
            stmt = item.body[0].stmt
            if stmt.reduction != "+":
                continue
            target = stmt.target
            assert isinstance(target, ArrayRef)
            allowed = set(vec_stack) | {item.var}
            target_vars = []
            for idx in target.indices:
                if not (isinstance(idx, VarRef) and idx.name in vec_stack):
                    target_vars = None
                    break
                target_vars.append(idx.name)
            if target_vars is None:
                continue
            factors = _product_factors(stmt.rhs)
            if factors is None:
                continue
            array_factors: list[tuple[str, tuple[str, ...]]] = []
            scalar_exprs: list[Expr] = []
            ok = item.var in stmt.rhs.free_vars()
            for factor in factors:
                if isinstance(factor, ArrayRef):
                    if factor.name == target.name:
                        ok = False
                        break
                    dims = []
                    for idx in factor.indices:
                        if not (isinstance(idx, VarRef) and idx.name in allowed):
                            ok = False
                            break
                        dims.append(idx.name)
                    if not ok:
                        break
                    array_factors.append((factor.name, tuple(dims)))
                elif isinstance(factor, (VarRef, ParamRef)):
                    if factor.name in loop_vars:
                        ok = False
                        break
                    scalar_exprs.append(factor)
                else:  # constants
                    scalar_exprs.append(factor)
            if ok and array_factors:
                # Every output (vectorized) variable and the reduction
                # variable must appear in some factor, otherwise the einsum
                # output subscript would reference a missing input (e.g.
                # C[i,j] += alpha * A[i,k] broadcasts over j — leave that
                # to the exact path).
                covered: set[str] = set()
                for _, dims in array_factors:
                    covered.update(dims)
                if not (set(vec_stack) | {item.var}) <= covered:
                    continue
                item.einsum = EinsumSpec(
                    red_var=item.var,
                    array_factors=tuple(array_factors),
                    scalar_exprs=tuple(scalar_exprs),
                    target=target.name,
                    target_vars=tuple(target_vars),
                )

    visit(nodes, ())


# ----------------------------------------------------------------------
# Fold (exact slice) lowering analysis
# ----------------------------------------------------------------------


def _analyze_fold_ref(
    name: str,
    indices: tuple[Expr, ...],
    vec_vars: tuple[str, ...],
    loop_vars: set[str],
) -> tuple[Optional[FoldRef], str]:
    """Slice-lower one array reference, or explain why it cannot be."""
    dims: list[FoldDim] = []
    used: dict[str, int] = {}
    for idx in indices:
        free = idx.free_vars()
        affine = affine_from_expr(idx, loop_vars, free - loop_vars)
        if affine is None:
            return None, f"non-affine subscript in {name}"
        carriers = [v for v in vec_vars if affine.coeff(v) != 0]
        if len(carriers) > 1:
            return None, f"subscript of {name} couples vectorized axes"
        if not carriers:
            dims.append(FoldDim(kind="scalar", expr=idx))
            continue
        var = carriers[0]
        used[var] = used.get(var, 0) + 1
        if used[var] > 1:
            return None, f"diagonal subscript in {name}"
        dims.append(
            FoldDim(kind="slice", expr=idx, vec_var=var, coeff=affine.coeff(var))
        )
    return FoldRef(name=name, dims=tuple(dims)), ""


def analyze_fold_assign(
    node: PlanAssign, loop_vars: set[str]
) -> tuple[Optional[FoldSpec], str]:
    """Exact slice lowering of one planned assignment, or the reason why
    it must stay on the generic gather path."""
    vec_vars = node.vec_vars
    if not vec_vars:
        return None, "statement has no vectorized axis"
    stmt = node.stmt
    target = stmt.target
    assert isinstance(target, ArrayRef)
    target_ref, reason = _analyze_fold_ref(
        target.name, target.indices, vec_vars, loop_vars
    )
    if target_ref is None:
        return None, reason
    covered = {d.vec_var for d in target_ref.dims if d.kind == "slice"}
    if covered != set(vec_vars):
        missing = sorted(set(vec_vars) - covered)
        return None, (
            f"target {target.name} does not carry vectorized axis "
            f"{', '.join(missing)}"
        )
    refs: dict[int, FoldRef] = {}
    for sub in stmt.rhs.walk():
        if not isinstance(sub, ArrayRef):
            continue
        ref, reason = _analyze_fold_ref(sub.name, sub.indices, vec_vars, loop_vars)
        if ref is None:
            return None, reason
        refs[id(sub)] = ref
    return FoldSpec(target=target_ref, refs=refs, vec_vars=vec_vars), ""


def _annotate_folds(nodes: list[PlanNode], loop_vars: set[str]) -> None:
    for node in nodes:
        if isinstance(node, PlanAssign):
            node.fold, node.fold_reason = analyze_fold_assign(node, loop_vars)
        else:
            _annotate_folds(node.body, loop_vars)


def plan_assigns(plan: NestPlan) -> list[PlanAssign]:
    """All planned assignments of a nest, in program order."""
    out: list[PlanAssign] = []

    def visit(nodes: list[PlanNode]) -> None:
        for node in nodes:
            if isinstance(node, PlanAssign):
                out.append(node)
            else:
                visit(node.body)

    visit(plan.nodes)
    return out


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def _screen_reason(root: Loop) -> str:
    """Why the structural screen rejected a nest (for the lowering report)."""
    for node in root.walk():
        if isinstance(node, Loop):
            if not (_bound_expr_ok(node.lower) and _bound_expr_ok(node.upper)):
                return f"loop {node.var} has a non-affine bound"
        elif isinstance(node, Assign):
            if not isinstance(node.target, ArrayRef):
                return f"scalar accumulator {node.target}"
            if not all(_index_expr_ok(i) for i in node.target.indices):
                return f"unsupported subscript on {node.target.name}"
            if not _value_expr_ok(node.rhs):
                return f"unsupported value expression in {node.name}"
        elif isinstance(node, Block):
            continue
        else:
            return f"unsupported statement ({type(node).__name__})"
    return "structural screen rejected the nest"


def build_plan_with_reason(root: Loop) -> tuple[Optional[NestPlan], str]:
    """Like :func:`build_plan`, but explains a ``None`` result."""
    if not _screen_nest(root):
        return None, _screen_reason(root)
    enumerate_vars = _compute_enumerate_vars(root)
    if enumerate_vars is None:
        return None, "ragged bound enumeration (analytical trace unavailable)"
    loop_vars = _loop_vars_in(root)
    nodes = _rewrite_loop(root, loop_vars)
    _classify(nodes, loop_vars)
    plan = NestPlan(root=root, nodes=nodes, enumerate_vars=enumerate_vars)
    if not plan.has_vectorized_loop:
        return None, "no vectorizable axis"
    _tag_einsum(nodes, loop_vars)
    _annotate_folds(nodes, loop_vars)
    return plan, ""


def build_plan(root: Loop) -> Optional[NestPlan]:
    """Build the vectorized execution plan for a top-level loop nest.

    Returns ``None`` when the nest cannot be vectorized (the engine then
    falls back to the interpreter for this nest).
    """
    plan, _ = build_plan_with_reason(root)
    return plan

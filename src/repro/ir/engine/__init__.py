"""Compiled (vectorized) execution engine for the loop-nest IR.

The engine compiles affine loop nests of a :class:`~repro.ir.program.Program`
into vectorized NumPy operations instead of interpreting them element by
element.  Results are bit-identical to the reference interpreter (no
floating-point reassociation on the default path) and the
:class:`~repro.ir.interp.ExecutionTrace` is derived analytically from the
polyhedral trip counts, so the host cost model reports the exact same
instruction/energy/time numbers.

Five engine modes are available (see :func:`make_engine`):

* ``"interpreter"`` — the reference tree-walking interpreter.
* ``"vectorized"`` — compiled NumPy execution through broadcast index-grid
  gathers; bit-identical to the interpreter.
* ``"fast"`` — the **default**: additionally slice-lowers every affine
  assignment (``coeff * var + offset`` subscripts become basic views), so
  sequential reduction loops run as ordered folds of vectorized slice
  updates.  Still bit-identical — per element the operations and their
  order are unchanged; only operand materialization differs.
* ``"native"`` — the fast engine plus an optional C backend: eligible
  nests are translated to C (literal loop-for-loop translation, so the
  accumulation order is identical by construction), compiled with the
  system C compiler and called through ``cffi``.  Falls back to ``"fast"``
  per nest — and entirely when the toolchain or ``cffi`` is absent.
* ``"vectorized-fast"`` — lowers recognized full reduction nests
  (GEMM/GEMV-class contractions) to ``np.einsum``; this reassociates
  floating-point sums, so results are only approximately equal.  Kept for
  comparison studies; superseded as a speed default by ``"fast"``.

Use :func:`repro.ir.engine.lowering.program_lowering_report` (surfaced as
``CompilationReport.nest_lowerings``) to see which tier every nest landed
on and why.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.interp import CallHandler, Interpreter
from repro.ir.program import Program

from repro.ir.engine.engine import VectorizedEngine
from repro.ir.engine.lowering import (
    NestLowering,
    StatementLowering,
    program_lowering_report,
)
from repro.ir.engine.native import NativeEngine, native_available

#: Valid values for the ``engine`` compile/execution option.
ENGINE_MODES = ("interpreter", "vectorized", "fast", "native", "vectorized-fast")

#: The default engine: the exact fold-lowered fast path.
DEFAULT_ENGINE = "fast"


def validate_engine(engine: str) -> str:
    """Check an engine name against :data:`ENGINE_MODES`; returns it."""
    if engine not in ENGINE_MODES:
        raise ValueError(
            f"unknown execution engine {engine!r}; expected one of {ENGINE_MODES}"
        )
    return engine


def make_engine(
    program: Program,
    call_handler: Optional[CallHandler] = None,
    engine: str = DEFAULT_ENGINE,
) -> Interpreter:
    """Instantiate the execution engine selected by *engine*."""
    validate_engine(engine)
    if engine == "interpreter":
        return Interpreter(program, call_handler=call_handler)
    if engine == "vectorized":
        return VectorizedEngine(program, call_handler=call_handler)
    if engine == "fast":
        return VectorizedEngine(program, call_handler=call_handler, fold=True)
    if engine == "native":
        return NativeEngine(program, call_handler=call_handler)
    return VectorizedEngine(program, call_handler=call_handler, reassociate=True)


__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_MODES",
    "NativeEngine",
    "NestLowering",
    "StatementLowering",
    "VectorizedEngine",
    "make_engine",
    "native_available",
    "program_lowering_report",
    "validate_engine",
]

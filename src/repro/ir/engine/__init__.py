"""Compiled (vectorized) execution engine for the loop-nest IR.

The engine compiles affine loop nests of a :class:`~repro.ir.program.Program`
into vectorized NumPy operations instead of interpreting them element by
element.  Results are bit-identical to the reference interpreter (no
floating-point reassociation on the default path) and the
:class:`~repro.ir.interp.ExecutionTrace` is derived analytically from the
polyhedral trip counts, so the host cost model reports the exact same
instruction/energy/time numbers.

Three engine modes are available (see :func:`make_engine`):

* ``"interpreter"`` — the reference tree-walking interpreter.
* ``"vectorized"`` — compiled NumPy execution, bit-identical to the
  interpreter (default).
* ``"vectorized-fast"`` — additionally lowers recognized full reduction
  nests (GEMM/GEMV-class contractions) to ``np.einsum``; this reassociates
  floating-point sums, so results are only approximately equal.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.interp import CallHandler, Interpreter
from repro.ir.program import Program

from repro.ir.engine.engine import VectorizedEngine

#: Valid values for the ``engine`` compile/execution option.
ENGINE_MODES = ("interpreter", "vectorized", "vectorized-fast")


def validate_engine(engine: str) -> str:
    """Check an engine name against :data:`ENGINE_MODES`; returns it."""
    if engine not in ENGINE_MODES:
        raise ValueError(
            f"unknown execution engine {engine!r}; expected one of {ENGINE_MODES}"
        )
    return engine


def make_engine(
    program: Program,
    call_handler: Optional[CallHandler] = None,
    engine: str = "vectorized",
) -> Interpreter:
    """Instantiate the execution engine selected by *engine*."""
    validate_engine(engine)
    if engine == "interpreter":
        return Interpreter(program, call_handler=call_handler)
    if engine == "vectorized":
        return VectorizedEngine(program, call_handler=call_handler)
    return VectorizedEngine(program, call_handler=call_handler, reassociate=True)


__all__ = ["ENGINE_MODES", "VectorizedEngine", "make_engine", "validate_engine"]

"""The vectorized execution engine.

:class:`VectorizedEngine` is a drop-in replacement for the reference
:class:`~repro.ir.interp.Interpreter`: same constructor, same ``run``
contract, same :class:`~repro.ir.interp.ExecutionTrace`, same call-handler
protocol.  Top-level loop nests that pass the vectorization analysis are
executed as NumPy array operations; everything else (runtime calls,
data-dependent control flow, scalar accumulators, non-affine subscripts)
falls back — per statement — to the inherited interpreter.

Bit-identity with the interpreter is preserved by construction:

* vectorized loops only ever map *parallel* axes to array dimensions;
  reduction loops stay sequential, so every array element sees the exact
  same sequence of arithmetic operations in the exact same order;
* expressions are evaluated with the same NumPy scalar-promotion rules the
  interpreter hits element by element (NEP 50 value-independent promotion);
* the execution trace is computed analytically from trip counts, applying
  the same per-execution increments the interpreter applies dynamically.

The default ``fold`` mode (engine ``"fast"``) additionally executes
slice-lowerable assignments through basic NumPy views instead of
broadcast index-grid gathers: sequential reduction loops become ordered
folds of vectorized slice updates.  Per element this performs the exact
same operations in the exact same order as the interpreter — the fold
path changes only how operands are *materialized* (views instead of
gathered copies), so results stay bit-identical while the per-iteration
constant cost drops sharply.  A runtime guard falls back to the gather
path whenever a computed slice would leave the array bounds (negative
indices wrap element-wise in NumPy, slices do not — the gather path
preserves the interpreter's wrapping semantics exactly).

The opt-in ``reassociate`` mode additionally lowers recognized reduction
loops (GEMM/GEMV-class contractions) to ``np.einsum``, which changes the
floating-point summation order — results are then only approximately equal.
"""

from __future__ import annotations

from collections import ChainMap
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    FloatConst,
    IntConst,
    Max,
    Min,
    ParamRef,
    UnaryOp,
    VarRef,
)
from repro.ir.interp import (
    CallHandler,
    Interpreter,
    InterpreterError,
    compile_expr,
)
from repro.ir.program import Program
from repro.ir.stmt import Assign, Block, Loop, Stmt
from repro.ir.engine.analysis import (
    FoldRef,
    FoldSpec,
    NestPlan,
    PlanAssign,
    PlanLoop,
    PlanNode,
    build_plan,
)

_UNSET = object()


# ----------------------------------------------------------------------
# Vectorized expression compilation
# ----------------------------------------------------------------------


def _as_index(value):
    """Normalise one subscript, matching the interpreter's ``int()`` cast.

    Scalars become ints; arrays that picked up a float dtype (a float
    parameter mixed into the index arithmetic) are truncated toward zero,
    exactly like ``int()`` element by element.
    """
    if isinstance(value, np.ndarray):
        if not np.issubdtype(value.dtype, np.integer):
            value = np.trunc(value).astype(np.int64)
        return value
    return int(value)


def compile_vec_expr(
    expr: Expr, vec_vars: frozenset[str]
) -> Callable[[dict, dict, dict], object]:
    """Compile an expression into ``fn(scalars, arrays, venv)``.

    ``venv`` maps vectorized loop variables to broadcast-shaped index
    arrays; all other variables resolve through ``scalars`` exactly like
    the interpreter.
    """
    if isinstance(expr, (IntConst, FloatConst)):
        value = expr.value
        return lambda s, a, v: value
    if isinstance(expr, (VarRef, ParamRef)):
        name = expr.name
        if name in vec_vars:
            return lambda s, a, v, _n=name: v[_n]

        def eval_var(s, a, v, _n=name):
            try:
                return s[_n]
            except KeyError as exc:
                raise InterpreterError(f"unbound variable {_n!r}") from exc

        return eval_var
    if isinstance(expr, ArrayRef):
        name = expr.name
        index_fns = tuple(compile_vec_expr(i, vec_vars) for i in expr.indices)

        def eval_ref(s, a, v, _n=name, _fns=index_fns):
            array = a.get(_n)
            if array is None:
                raise InterpreterError(f"unbound array {_n!r}")
            return array[tuple(_as_index(fn(s, a, v)) for fn in _fns)]

        return eval_ref
    if isinstance(expr, BinOp):
        lhs = compile_vec_expr(expr.lhs, vec_vars)
        rhs = compile_vec_expr(expr.rhs, vec_vars)
        op = expr.op
        if op == "+":
            return lambda s, a, v: lhs(s, a, v) + rhs(s, a, v)
        if op == "-":
            return lambda s, a, v: lhs(s, a, v) - rhs(s, a, v)
        if op == "*":
            return lambda s, a, v: lhs(s, a, v) * rhs(s, a, v)
        if op == "/":
            return lambda s, a, v: lhs(s, a, v) / rhs(s, a, v)
        if op == "%":
            return lambda s, a, v: lhs(s, a, v) % rhs(s, a, v)
        raise InterpreterError(f"unknown operator {op!r}")
    if isinstance(expr, UnaryOp):
        operand = compile_vec_expr(expr.operand, vec_vars)
        return lambda s, a, v: -operand(s, a, v)
    if isinstance(expr, (Min, Max)):
        # Only reachable from (integer) index expressions, where NumPy's
        # minimum/maximum agree exactly with Python's min/max.
        lhs = compile_vec_expr(expr.lhs, vec_vars)
        rhs = compile_vec_expr(expr.rhs, vec_vars)
        pick = np.minimum if isinstance(expr, Min) else np.maximum
        py_pick = min if isinstance(expr, Min) else max

        def eval_minmax(s, a, v, _pick=pick, _py=py_pick):
            left = lhs(s, a, v)
            right = rhs(s, a, v)
            if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
                return _pick(left, right)
            return _py(left, right)

        return eval_minmax
    raise InterpreterError(f"cannot evaluate expression {expr!r}")


@dataclass
class _VecAssign:
    """Compiled vectorized form of one planned assignment."""

    rhs_fn: Callable
    index_fns: tuple
    target_name: str
    reduction: Optional[str]


@dataclass
class _VecFrame:
    """One open vectorized loop during plan execution."""

    var: str
    values: np.ndarray
    lower: int
    upper: int
    step: int


# ----------------------------------------------------------------------
# Fold (exact slice) compilation
# ----------------------------------------------------------------------


class _FoldBail(Exception):
    """Raised when a slice-lowered access cannot run exactly at runtime
    (out-of-bounds slice, non-integer offset); the engine retries the
    assignment through the gather path, which matches the interpreter's
    element-wise semantics including negative-index wrapping."""


def _compile_fold_ref(
    ref: FoldRef, vec_vars: tuple[str, ...]
) -> Callable[[dict, dict, list, ChainMap], object]:
    """Compile one slice-lowered array reference into a view getter.

    The returned callable produces a view of the array whose axes follow
    the engine's broadcast convention (one axis per vectorized frame, in
    stack order, size one for frames this reference does not use).
    """
    total = len(vec_vars)
    entries = []  # per dim: (is_slice, offset_fn, coeff, frame_pos)
    used_positions = []
    for dim in ref.dims:
        fn = compile_expr(dim.expr)
        if dim.kind == "scalar":
            entries.append((False, fn, 0, 0))
        else:
            pos = vec_vars.index(dim.vec_var)
            used_positions.append(pos)
            entries.append((True, fn, dim.coeff, pos))
    rank = len(entries)
    # Static axis bookkeeping: after basic indexing the view's axes are the
    # slice dimensions in array order; transpose them into frame order and
    # insert size-one axes for unused frames.
    perm = tuple(
        sorted(range(len(used_positions)), key=lambda ax: used_positions[ax])
    )
    transpose = perm if perm != tuple(range(len(perm))) else None
    used = set(used_positions)
    expander = (
        tuple(slice(None) if pos in used else None for pos in range(total))
        if len(used) < total
        else None
    )
    name = ref.name

    def get(scalars, arrays, frames, overlay):
        array = arrays.get(name)
        if array is None:
            raise InterpreterError(f"unbound array {name!r}")
        shape = array.shape
        if len(shape) != rank:
            raise _FoldBail
        key = []
        for axis, (is_slice, fn, coeff, pos) in enumerate(entries):
            value = fn(overlay, arrays)
            if not is_slice:
                key.append(int(value))
                continue
            if not isinstance(value, (int, np.integer)):
                raise _FoldBail  # non-integer offset: int() per element differs
            offset = int(value)
            frame = frames[pos]
            count = frame.values.shape[0]
            start = coeff * frame.lower + offset
            stride = coeff * frame.step
            last = start + (count - 1) * stride
            low, high = (start, last) if stride > 0 else (last, start)
            if low < 0 or high >= shape[axis]:
                raise _FoldBail  # gather path preserves wrap/raise semantics
            if stride > 0:
                stop = last + 1
            else:
                stop = last - 1 if last > 0 else None
            key.append(slice(start, stop, stride))
        view = array[tuple(key)]
        if transpose is not None:
            view = view.transpose(transpose)
        if expander is not None:
            view = view[expander]
        return view

    return get


def _compile_fold_expr(
    expr: Expr, spec: FoldSpec
) -> Callable[[dict, dict, list, ChainMap], object]:
    """Compile a right-hand side for fold execution.

    Mirrors :func:`compile_vec_expr` node for node — same operators, same
    NumPy promotion — but array references become slice views and
    vectorized variables become reshaped frame-value arrays, so the
    element-wise arithmetic (and therefore every result bit) is unchanged.
    """
    vec_vars = spec.vec_vars
    if isinstance(expr, (IntConst, FloatConst)):
        value = expr.value
        return lambda s, a, f, o: value
    if isinstance(expr, (VarRef, ParamRef)):
        name = expr.name
        if name in vec_vars:
            pos = vec_vars.index(name)
            shape_suffix = (1,) * (len(vec_vars) - pos - 1)

            def eval_vec_var(s, a, f, o, _pos=pos, _suffix=shape_suffix):
                values = f[_pos].values
                return values.reshape((1,) * _pos + (-1,) + _suffix)

            return eval_vec_var

        def eval_var(s, a, f, o, _n=name):
            try:
                return s[_n]
            except KeyError as exc:
                raise InterpreterError(f"unbound variable {_n!r}") from exc

        return eval_var
    if isinstance(expr, ArrayRef):
        ref = spec.refs[id(expr)]
        return _compile_fold_ref(ref, vec_vars)
    if isinstance(expr, BinOp):
        lhs = _compile_fold_expr(expr.lhs, spec)
        rhs = _compile_fold_expr(expr.rhs, spec)
        op = expr.op
        if op == "+":
            return lambda s, a, f, o: lhs(s, a, f, o) + rhs(s, a, f, o)
        if op == "-":
            return lambda s, a, f, o: lhs(s, a, f, o) - rhs(s, a, f, o)
        if op == "*":
            return lambda s, a, f, o: lhs(s, a, f, o) * rhs(s, a, f, o)
        if op == "/":
            return lambda s, a, f, o: lhs(s, a, f, o) / rhs(s, a, f, o)
        if op == "%":
            return lambda s, a, f, o: lhs(s, a, f, o) % rhs(s, a, f, o)
        raise InterpreterError(f"unknown operator {op!r}")
    if isinstance(expr, UnaryOp):
        operand = _compile_fold_expr(expr.operand, spec)
        return lambda s, a, f, o: -operand(s, a, f, o)
    raise InterpreterError(f"cannot evaluate expression {expr!r}")


@dataclass
class _FoldAssign:
    """Compiled fold (slice) form of one planned assignment."""

    rhs_fn: Callable
    target_fn: Callable
    reduction: Optional[str]
    #: Zero bindings for every vectorized variable: evaluating an affine
    #: index with the vectorized variables at zero yields its offset.
    zeros: dict


# ----------------------------------------------------------------------
# Analytical bound evaluation (integers and integer arrays)
# ----------------------------------------------------------------------


def _eval_bound(expr: Expr, env: dict, scalars: dict):
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, FloatConst):
        return expr.value
    if isinstance(expr, (VarRef, ParamRef)):
        name = expr.name
        if name in env:
            return env[name]
        try:
            return scalars[name]
        except KeyError as exc:
            raise InterpreterError(f"unbound variable {name!r}") from exc
    if isinstance(expr, BinOp):
        lhs = _eval_bound(expr.lhs, env, scalars)
        rhs = _eval_bound(expr.rhs, env, scalars)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "%":
            return lhs % rhs
        raise InterpreterError(f"unsupported bound operator {expr.op!r}")
    if isinstance(expr, UnaryOp):
        return -_eval_bound(expr.operand, env, scalars)
    if isinstance(expr, (Min, Max)):
        lhs = _eval_bound(expr.lhs, env, scalars)
        rhs = _eval_bound(expr.rhs, env, scalars)
        if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
            return np.minimum(lhs, rhs) if isinstance(expr, Min) else np.maximum(lhs, rhs)
        return min(lhs, rhs) if isinstance(expr, Min) else max(lhs, rhs)
    raise InterpreterError(f"cannot evaluate bound {expr!r}")


def _as_int_bound(value):
    """Truncate toward zero, matching the interpreter's ``int()`` cast."""
    if isinstance(value, np.ndarray):
        if not np.issubdtype(value.dtype, np.integer):
            value = np.trunc(value).astype(np.int64)
        return value
    return int(value)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class VectorizedEngine(Interpreter):
    """Interpreter subclass that compiles loop nests to NumPy kernels."""

    def __init__(
        self,
        program: Program,
        call_handler: Optional[CallHandler] = None,
        reassociate: bool = False,
        fold: bool = False,
    ):
        super().__init__(program, call_handler)
        self.reassociate = reassociate
        self.fold = fold
        self._nest_plans: dict[int, Optional[NestPlan]] = {}
        self._vec_assigns: dict[int, _VecAssign] = {}
        self._fold_assigns: dict[int, Optional[_FoldAssign]] = {}
        self._vec_stack: list[_VecFrame] = []

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def nest_plan(self, loop: Loop) -> Optional[NestPlan]:
        """The (cached) vectorization plan for a loop nest, or ``None``."""
        plan = self._nest_plans.get(id(loop), _UNSET)
        if plan is _UNSET:
            try:
                plan = build_plan(loop)
            except Exception:
                plan = None  # analysis failure → safe interpreter fallback
            self._nest_plans[id(loop)] = plan
        return plan

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def _exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Loop):
            plan = self.nest_plan(stmt)
            if plan is not None:
                self._account_nest(plan)
                self._exec_planned_nest(plan)
                return
        super()._exec_stmt(stmt)

    def _exec_planned_nest(self, plan: NestPlan) -> None:
        """Execute one planned (already accounted) nest.

        Subclasses may override to dispatch the nest elsewhere; calling
        ``super()`` runs the Python plan without touching accounting, so
        an override can fall back here safely.
        """
        saved_stack = self._vec_stack
        self._vec_stack = []
        try:
            for node in plan.nodes:
                self._exec_plan_node(node)
        finally:
            self._vec_stack = saved_stack

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def _exec_plan_node(self, node: PlanNode) -> None:
        if isinstance(node, PlanAssign):
            self._exec_plan_assign(node)
            return
        if node.lower_fn is None:
            node.lower_fn = compile_expr(node.lower)
            node.upper_fn = compile_expr(node.upper)
        lower = int(node.lower_fn(self.scalars, self.arrays))
        upper = int(node.upper_fn(self.scalars, self.arrays))
        if upper <= lower:
            return
        if node.vec:
            values = np.arange(lower, upper, node.step)
            self._vec_stack.append(_VecFrame(node.var, values, lower, upper, node.step))
            try:
                for child in node.body:
                    self._exec_plan_node(child)
            finally:
                self._vec_stack.pop()
            return
        if self.reassociate and node.einsum is not None:
            self._exec_einsum(node, lower, upper)
            return
        saved = self.scalars.get(node.var)
        scalars = self.scalars
        for value in range(lower, upper, node.step):
            scalars[node.var] = value
            for child in node.body:
                self._exec_plan_node(child)
        if saved is None:
            scalars.pop(node.var, None)
        else:
            scalars[node.var] = saved

    def _vec_env(self) -> dict[str, np.ndarray]:
        total = len(self._vec_stack)
        env: dict[str, np.ndarray] = {}
        for pos, frame in enumerate(self._vec_stack):
            env[frame.var] = frame.values.reshape(
                (1,) * pos + (-1,) + (1,) * (total - pos - 1)
            )
        return env

    def _compile_vec_assign(self, node: PlanAssign) -> _VecAssign:
        compiled = self._vec_assigns.get(id(node))
        if compiled is None:
            stmt = node.stmt
            target = stmt.target
            assert isinstance(target, ArrayRef)
            vec_vars = frozenset(node.vec_vars)
            compiled = _VecAssign(
                rhs_fn=compile_vec_expr(stmt.rhs, vec_vars),
                index_fns=tuple(
                    compile_vec_expr(i, vec_vars) for i in target.indices
                ),
                target_name=target.name,
                reduction=stmt.reduction,
            )
            self._vec_assigns[id(node)] = compiled
        return compiled

    def _exec_plan_assign(self, node: PlanAssign) -> None:
        if self.fold and node.fold is not None:
            compiled = self._fold_assigns.get(id(node), _UNSET)
            if compiled is _UNSET:
                compiled = self._compile_fold_assign(node)
                self._fold_assigns[id(node)] = compiled
            if compiled is not None:
                try:
                    self._exec_fold_assign(compiled)
                    return
                except _FoldBail:
                    pass  # gather path below: interpreter-exact semantics
        compiled = self._compile_vec_assign(node)
        scalars = self.scalars
        arrays = self.arrays
        venv = self._vec_env()
        value = compiled.rhs_fn(scalars, arrays, venv)
        idx = tuple(_as_index(fn(scalars, arrays, venv)) for fn in compiled.index_fns)
        array = arrays[compiled.target_name]
        if compiled.reduction == "+":
            array[idx] += value
        elif compiled.reduction == "*":
            array[idx] *= value
        else:
            array[idx] = value

    # ------------------------------------------------------------------
    # Fold (exact slice) execution
    # ------------------------------------------------------------------
    def _compile_fold_assign(self, node: PlanAssign) -> Optional[_FoldAssign]:
        spec = node.fold
        assert spec is not None
        try:
            return _FoldAssign(
                rhs_fn=_compile_fold_expr(node.stmt.rhs, spec),
                target_fn=_compile_fold_ref(spec.target, spec.vec_vars),
                reduction=node.stmt.reduction,
                zeros={var: 0 for var in spec.vec_vars},
            )
        except InterpreterError:
            return None  # unsupported node slipped through: gather path

    def _exec_fold_assign(self, compiled: _FoldAssign) -> None:
        scalars = self.scalars
        arrays = self.arrays
        frames = self._vec_stack
        overlay = ChainMap(compiled.zeros, scalars)
        view = compiled.target_fn(scalars, arrays, frames, overlay)
        value = compiled.rhs_fn(scalars, arrays, frames, overlay)
        if compiled.reduction == "+":
            view += value
        elif compiled.reduction == "*":
            view *= value
        else:
            view[...] = value

    # ------------------------------------------------------------------
    # Einsum lowering (fast mode)
    # ------------------------------------------------------------------
    def _exec_einsum(self, node: PlanLoop, lower: int, upper: int) -> None:
        spec = node.einsum
        assert spec is not None
        ranges: dict[str, tuple[int, int, int]] = {
            frame.var: (frame.lower, frame.upper, frame.step)
            for frame in self._vec_stack
        }
        ranges[spec.red_var] = (lower, upper, node.step)
        letters: dict[str, str] = {}

        def letter(var: str) -> str:
            if var not in letters:
                letters[var] = "abcdefghijklmnop"[len(letters)]
            return letters[var]

        operands = []
        subscripts = []
        for name, dims in spec.array_factors:
            array = self.arrays[name]
            operands.append(
                array[tuple(slice(*ranges[d]) for d in dims)]
            )
            subscripts.append("".join(letter(d) for d in dims))
        out_sub = "".join(letter(frame.var) for frame in self._vec_stack)
        result = np.einsum(
            ",".join(subscripts) + "->" + out_sub, *operands, optimize=True
        )
        scale = None
        for expr in spec.scalar_exprs:
            value = compile_expr(expr)(self.scalars, self.arrays)
            scale = value if scale is None else scale * value
        if scale is not None:
            result = result * scale
        # The accumulate reuses the generic (bit-exact) subscript machinery.
        assign = node.body[0]
        assert isinstance(assign, PlanAssign)
        compiled = self._compile_vec_assign(assign)
        venv = self._vec_env()
        idx = tuple(
            _as_index(fn(self.scalars, self.arrays, venv))
            for fn in compiled.index_fns
        )
        self.arrays[compiled.target_name][idx] += result

    # ------------------------------------------------------------------
    # Analytical trace accounting
    # ------------------------------------------------------------------
    def _account_nest(self, plan: NestPlan) -> None:
        """Apply the exact trace increments of interpreting *plan.root*.

        Works on the *original* (undistributed) nest so loop-iteration and
        statement counts match the interpreter to the last integer, using
        trip counts instead of per-element updates.  Loops whose variables
        appear in deeper bounds are enumerated as integer grids, so
        triangular/tiled (min/max) bounds are also counted exactly.
        """
        self._trace_stmt(plan.root, {}, 1, plan.enumerate_vars)

    def _trace_stmt(self, stmt: Stmt, env: dict, mult, enum_vars: dict) -> None:
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self._trace_stmt(child, env, mult, enum_vars)
        elif isinstance(stmt, Loop):
            self._trace_loop(stmt, env, mult, enum_vars)
        elif isinstance(stmt, Assign):
            plan = self._assign_plan(stmt)
            total = int(np.sum(mult)) if isinstance(mult, np.ndarray) else int(mult)
            if total <= 0:
                return
            trace = self.trace
            trace.statements_executed += total
            trace.flops += plan.d_flops * total
            trace.int_ops += plan.d_int_ops * total
            trace.loads += plan.d_loads * total
            trace.stores += plan.d_stores * total
        else:  # pragma: no cover - screened out at plan time
            raise InterpreterError(f"cannot account statement {stmt!r}")

    def _trace_loop(self, loop: Loop, env: dict, mult, enum_vars: dict) -> None:
        lower = _as_int_bound(_eval_bound(loop.lower, env, self.scalars))
        upper = _as_int_bound(_eval_bound(loop.upper, env, self.scalars))
        step = loop.step
        if isinstance(lower, np.ndarray) or isinstance(upper, np.ndarray):
            trips = np.maximum((upper - lower + (step - 1)) // step, 0)
        else:
            trips = max(0, (upper - lower + step - 1) // step)
        iter_total = mult * trips
        total = int(np.sum(iter_total)) if isinstance(iter_total, np.ndarray) else int(
            iter_total
        )
        trace = self.trace
        trace.loop_iterations += total
        trace.branches += total
        trace.int_ops += total  # induction-variable increments
        if total == 0:
            return
        if loop.var in enum_vars[id(loop)]:
            # Bounds are parameter-only here (checked at plan time), so the
            # enumeration axis is rectangular.  Children execute once per
            # enumerated value, so the multiplier grows an explicit axis of
            # ones — a direct Assign child then sums to mult * trips, and a
            # nested loop multiplies its own (possibly value-dependent)
            # trip counts on top.
            values = np.arange(lower, upper, step)
            child_env = {
                name: arr.reshape(arr.shape + (1,)) for name, arr in env.items()
            }
            child_env[loop.var] = values
            per_value = np.ones(values.shape, dtype=np.int64)
            if isinstance(mult, np.ndarray):
                child_mult = mult.reshape(mult.shape + (1,)) * per_value
            else:
                child_mult = mult * per_value
            for child in loop.body.stmts:
                self._trace_stmt(child, child_env, child_mult, enum_vars)
        else:
            for child in loop.body.stmts:
                self._trace_stmt(child, env, iter_total, enum_vars)

"""Whole-program container for the loop-nest IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.ir.expr import Expr, IntConst, ParamRef
from repro.ir.stmt import Assign, Block, Loop, Stmt
from repro.ir.types import ElementType


@dataclass
class ParamDecl:
    """A program parameter: a symbolic problem size or a scalar constant.

    Sizes (``M``, ``N``, ``K``) are integers; scalars (``alpha``, ``beta``)
    are floats.  Parameters are read-only for the whole program.
    """

    name: str
    elem_type: ElementType = ElementType.I32

    @property
    def is_size(self) -> bool:
        return not self.elem_type.is_float


@dataclass
class ArrayDecl:
    """A (multi-dimensional) array declaration.

    ``shape`` entries are IR expressions over parameters and constants; the
    concrete extents are resolved when the program is executed with a
    parameter binding.
    """

    name: str
    shape: tuple[Expr, ...]
    elem_type: ElementType = ElementType.F32

    def __init__(
        self,
        name: str,
        shape: Iterable[Expr | int | str],
        elem_type: ElementType = ElementType.F32,
    ):
        self.name = name
        dims: list[Expr] = []
        for dim in shape:
            if isinstance(dim, Expr):
                dims.append(dim)
            elif isinstance(dim, int):
                dims.append(IntConst(dim))
            elif isinstance(dim, str):
                dims.append(ParamRef(dim))
            else:
                raise TypeError(f"invalid array dimension: {dim!r}")
        self.shape = tuple(dims)
        self.elem_type = elem_type

    @property
    def rank(self) -> int:
        return len(self.shape)

    def extent(self, params: dict[str, int | float]) -> tuple[int, ...]:
        """Concrete shape under a parameter binding."""
        from repro.ir.interp import evaluate_expr

        return tuple(int(evaluate_expr(dim, dict(params), {})) for dim in self.shape)

    def size_bytes(self, params: dict[str, int | float]) -> int:
        """Total footprint in bytes under a parameter binding."""
        total = 1
        for dim in self.extent(params):
            total *= dim
        return total * self.elem_type.size_bytes

    def __str__(self) -> str:
        dims = "".join(f"[{d}]" for d in self.shape)
        return f"{self.elem_type.value} {self.name}{dims};"


@dataclass
class Program:
    """A complete kernel program.

    Mirrors a C translation unit containing a single kernel function: the
    parameters are the function's scalar arguments, the arrays its array
    arguments, and ``body`` the function body.
    """

    name: str
    params: list[ParamDecl] = field(default_factory=list)
    arrays: list[ArrayDecl] = field(default_factory=list)
    body: Block = field(default_factory=Block)

    def param(self, name: str) -> ParamDecl:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"no parameter named {name!r} in program {self.name!r}")

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"no array named {name!r} in program {self.name!r}")

    def has_array(self, name: str) -> bool:
        return any(a.name == name for a in self.arrays)

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.params]

    @property
    def array_names(self) -> list[str]:
        return [a.name for a in self.arrays]

    def top_level_loops(self) -> list[Loop]:
        """Loops appearing directly in the program body."""
        return [s for s in self.body.stmts if isinstance(s, Loop)]

    def statements(self) -> list[Assign]:
        """All assignment statements in the program, pre-order."""
        return [s for s in self.body.walk() if isinstance(s, Assign)]

    def clone(self) -> "Program":
        """Deep copy of the program (statements are mutable)."""
        import copy

        return copy.deepcopy(self)

    def __str__(self) -> str:
        from repro.ir.printer import to_source

        return to_source(self)

"""Convenience builder for constructing IR programs programmatically.

The front-end produces IR from mini-C source; tests, workload definitions
and generated code often prefer to construct loop nests directly.  The
builder keeps a stack of open blocks so loops can be nested with ``with``
statements:

    b = IRBuilder("gemm")
    M, N, K = b.size_params("M", "N", "K")
    alpha, beta = b.float_params("alpha", "beta")
    A = b.array("A", (M, K))
    B = b.array("B", (K, N))
    C = b.array("C", (M, N))
    with b.loop("i", 0, M) as i:
        with b.loop("j", 0, N) as j:
            b.assign(C[i, j], beta * C[i, j])
            with b.loop("k", 0, K) as k:
                b.add_assign(C[i, j], alpha * A[i, k] * B[k, j])
    program = b.finish()
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Sequence

from repro.ir.expr import ArrayRef, Expr, IntConst, ParamRef, VarRef, _wrap
from repro.ir.program import ArrayDecl, ParamDecl, Program
from repro.ir.stmt import Assign, Block, CallStmt, Loop, Stmt
from repro.ir.types import ElementType


class ArrayHandle:
    """Indexable handle returned by :meth:`IRBuilder.array`.

    ``handle[i, j]`` builds an :class:`~repro.ir.expr.ArrayRef`.
    """

    def __init__(self, decl: ArrayDecl):
        self.decl = decl

    @property
    def name(self) -> str:
        return self.decl.name

    def __getitem__(self, indices) -> ArrayRef:
        if not isinstance(indices, tuple):
            indices = (indices,)
        if len(indices) != self.decl.rank:
            raise IndexError(
                f"array {self.decl.name!r} has rank {self.decl.rank}, "
                f"got {len(indices)} indices"
            )
        return ArrayRef(self.decl.name, [_wrap(i) for i in indices])


class IRBuilder:
    """Incrementally build a :class:`~repro.ir.program.Program`."""

    def __init__(self, name: str):
        self._program = Program(name=name)
        self._block_stack: list[Block] = [self._program.body]
        self._finished = False

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def size_param(self, name: str) -> ParamRef:
        """Declare an integer size parameter and return a reference to it."""
        self._program.params.append(ParamDecl(name, ElementType.I32))
        return ParamRef(name)

    def size_params(self, *names: str) -> tuple[ParamRef, ...]:
        return tuple(self.size_param(n) for n in names)

    def float_param(self, name: str) -> ParamRef:
        """Declare a floating-point scalar parameter (e.g. ``alpha``)."""
        self._program.params.append(ParamDecl(name, ElementType.F32))
        return ParamRef(name)

    def float_params(self, *names: str) -> tuple[ParamRef, ...]:
        return tuple(self.float_param(n) for n in names)

    def array(
        self,
        name: str,
        shape: Sequence[Expr | int | str],
        elem_type: ElementType = ElementType.F32,
    ) -> ArrayHandle:
        """Declare an array and return an indexable handle."""
        decl = ArrayDecl(name, shape, elem_type)
        self._program.arrays.append(decl)
        return ArrayHandle(decl)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(
        self,
        var: str,
        lower: Expr | int,
        upper: Expr | int,
        step: int = 1,
    ) -> Iterator[VarRef]:
        """Open a counted loop; yields the induction-variable reference."""
        body = Block()
        loop = Loop(var=var, lower=_wrap(lower), upper=_wrap(upper), body=body, step=step)
        self._current_block().append(loop)
        self._block_stack.append(body)
        try:
            yield VarRef(var)
        finally:
            self._block_stack.pop()

    def assign(self, target: ArrayRef | VarRef, rhs: Expr | int | float) -> Assign:
        """Emit ``target = rhs;``."""
        stmt = Assign(target=target, rhs=_wrap(rhs))
        self._current_block().append(stmt)
        return stmt

    def add_assign(self, target: ArrayRef | VarRef, rhs: Expr | int | float) -> Assign:
        """Emit ``target += rhs;`` (a ``+`` reduction)."""
        stmt = Assign(target=target, rhs=_wrap(rhs), reduction="+")
        self._current_block().append(stmt)
        return stmt

    def call(self, callee: str, *args: object) -> CallStmt:
        """Emit a call statement (used for runtime library calls)."""
        stmt = CallStmt(callee=callee, args=list(args))
        self._current_block().append(stmt)
        return stmt

    def append(self, stmt: Stmt) -> None:
        """Append a pre-built statement to the current block."""
        self._current_block().append(stmt)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def finish(self) -> Program:
        """Return the built program.  The builder must not be reused after."""
        if self._finished:
            raise RuntimeError("IRBuilder.finish() called twice")
        if len(self._block_stack) != 1:
            raise RuntimeError("finish() called with unclosed loops")
        self._finished = True
        return self._program

    def _current_block(self) -> Block:
        if self._finished:
            raise RuntimeError("builder already finished")
        return self._block_stack[-1]

"""Reference interpreter for the loop-nest IR.

The interpreter executes a :class:`~repro.ir.program.Program` element by
element over NumPy arrays.  It serves two purposes:

* **Functional reference** — integration tests run the original program and
  the CIM-offloaded program and compare results.
* **Dynamic operation counting** — every executed statement updates an
  :class:`ExecutionTrace`, which the host cost model can convert to
  instruction counts and energy.  (For large problem sizes the host model in
  :mod:`repro.host` uses analytical trip counts instead of running the
  interpreter; both paths agree on small sizes, which is tested.)

Runtime library calls (``CallStmt``) are dispatched to a user-provided
handler; :mod:`repro.codegen.executor` wires that handler to the CIM runtime.

The interpreter caches a compiled form of every statement it executes: loop
bounds, array index expressions and right-hand sides are compiled once into
Python closures, and the per-execution :class:`ExecutionTrace` increments of
each assignment are precomputed as constants.  This keeps the per-element
work of the fallback path to a handful of dictionary lookups instead of a
recursive tree walk per expression node.  The vectorized execution engine
(:mod:`repro.ir.engine`) builds on the same caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

import numpy as np

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    FloatConst,
    IntConst,
    Max,
    Min,
    ParamRef,
    UnaryOp,
    VarRef,
)
from repro.ir.program import Program
from repro.ir.stmt import Assign, Block, CallStmt, IfStmt, Loop, Stmt


class InterpreterError(RuntimeError):
    """Raised when the interpreter encounters an invalid program."""


def evaluate_expr(
    expr: Expr,
    scalars: Mapping[str, int | float],
    arrays: Mapping[str, np.ndarray],
) -> int | float:
    """Evaluate an IR expression under scalar and array bindings."""
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, FloatConst):
        return expr.value
    if isinstance(expr, (VarRef, ParamRef)):
        try:
            return scalars[expr.name]
        except KeyError as exc:
            raise InterpreterError(f"unbound variable {expr.name!r}") from exc
    if isinstance(expr, ArrayRef):
        array = arrays.get(expr.name)
        if array is None:
            raise InterpreterError(f"unbound array {expr.name!r}")
        idx = tuple(int(evaluate_expr(i, scalars, arrays)) for i in expr.indices)
        return array[idx]
    if isinstance(expr, BinOp):
        lhs = evaluate_expr(expr.lhs, scalars, arrays)
        rhs = evaluate_expr(expr.rhs, scalars, arrays)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/":
            return lhs / rhs
        if expr.op == "%":
            return lhs % rhs
        raise InterpreterError(f"unknown operator {expr.op!r}")
    if isinstance(expr, UnaryOp):
        return -evaluate_expr(expr.operand, scalars, arrays)
    if isinstance(expr, Min):
        return min(
            evaluate_expr(expr.lhs, scalars, arrays),
            evaluate_expr(expr.rhs, scalars, arrays),
        )
    if isinstance(expr, Max):
        return max(
            evaluate_expr(expr.lhs, scalars, arrays),
            evaluate_expr(expr.rhs, scalars, arrays),
        )
    raise InterpreterError(f"cannot evaluate expression {expr!r}")


@dataclass
class ExecutionTrace:
    """Dynamic operation counts collected while interpreting a program."""

    loop_iterations: int = 0
    statements_executed: int = 0
    flops: int = 0
    int_ops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    runtime_calls: list[tuple[str, tuple]] = field(default_factory=list)

    @property
    def memory_accesses(self) -> int:
        return self.loads + self.stores

    def merge(self, other: "ExecutionTrace") -> None:
        self.loop_iterations += other.loop_iterations
        self.statements_executed += other.statements_executed
        self.flops += other.flops
        self.int_ops += other.int_ops
        self.loads += other.loads
        self.stores += other.stores
        self.branches += other.branches
        self.runtime_calls.extend(other.runtime_calls)


def _count_expr_ops(expr: Expr, trace: ExecutionTrace, is_float: bool) -> None:
    """Attribute arithmetic and memory operations of one expression."""
    for node in expr.walk():
        if isinstance(node, (BinOp, UnaryOp, Min, Max)):
            if is_float:
                trace.flops += 1
            else:
                trace.int_ops += 1
        elif isinstance(node, ArrayRef):
            trace.loads += 1
            # Index arithmetic (row-major address computation) is integer work.
            trace.int_ops += max(0, len(node.indices) - 1) * 2


def compile_expr(expr: Expr) -> Callable[[Mapping, Mapping], int | float]:
    """Compile an IR expression into a closure over (scalars, arrays).

    The closure evaluates exactly like :func:`evaluate_expr` (same numeric
    semantics, same errors) but without re-walking the expression tree on
    every evaluation.
    """
    if isinstance(expr, (IntConst, FloatConst)):
        value = expr.value
        return lambda scalars, arrays: value
    if isinstance(expr, (VarRef, ParamRef)):
        name = expr.name

        def eval_var(scalars, arrays, _name=name):
            try:
                return scalars[_name]
            except KeyError as exc:
                raise InterpreterError(f"unbound variable {_name!r}") from exc

        return eval_var
    if isinstance(expr, ArrayRef):
        name = expr.name
        index_fns = tuple(compile_expr(i) for i in expr.indices)

        if len(index_fns) == 1:
            idx0 = index_fns[0]

            def eval_ref1(scalars, arrays, _name=name, _idx=idx0):
                array = arrays.get(_name)
                if array is None:
                    raise InterpreterError(f"unbound array {_name!r}")
                return array[int(_idx(scalars, arrays))]

            return eval_ref1

        def eval_ref(scalars, arrays, _name=name, _fns=index_fns):
            array = arrays.get(_name)
            if array is None:
                raise InterpreterError(f"unbound array {_name!r}")
            return array[tuple(int(fn(scalars, arrays)) for fn in _fns)]

        return eval_ref
    if isinstance(expr, BinOp):
        lhs = compile_expr(expr.lhs)
        rhs = compile_expr(expr.rhs)
        op = expr.op
        if op == "+":
            return lambda s, a: lhs(s, a) + rhs(s, a)
        if op == "-":
            return lambda s, a: lhs(s, a) - rhs(s, a)
        if op == "*":
            return lambda s, a: lhs(s, a) * rhs(s, a)
        if op == "/":
            return lambda s, a: lhs(s, a) / rhs(s, a)
        if op == "%":
            return lambda s, a: lhs(s, a) % rhs(s, a)
        raise InterpreterError(f"unknown operator {op!r}")
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand)
        return lambda s, a: -operand(s, a)
    if isinstance(expr, Min):
        lhs = compile_expr(expr.lhs)
        rhs = compile_expr(expr.rhs)
        return lambda s, a: min(lhs(s, a), rhs(s, a))
    if isinstance(expr, Max):
        lhs = compile_expr(expr.lhs)
        rhs = compile_expr(expr.rhs)
        return lambda s, a: max(lhs(s, a), rhs(s, a))
    raise InterpreterError(f"cannot evaluate expression {expr!r}")


def assign_trace_cost(stmt: Assign, is_float: bool) -> tuple[int, int, int, int]:
    """Per-execution trace increments of one assignment.

    Returns ``(flops, int_ops, loads, stores)`` — exactly the deltas the
    interpreter applies for one execution of *stmt* (the right-hand side
    walk plus the store-side accounting).  Shared by the interpreter's
    compiled fallback path and the vectorized engine's analytical trace.
    """
    probe = ExecutionTrace()
    _count_expr_ops(stmt.rhs, probe, is_float)
    flops, int_ops = probe.flops, probe.int_ops
    loads, stores = probe.loads, 0
    if isinstance(stmt.target, ArrayRef):
        stores += 1
        int_ops += max(0, len(stmt.target.indices) - 1) * 2
        if stmt.reduction == "+":
            loads += 1
            flops += 1 if is_float else 0
            int_ops += 0 if is_float else 1
        elif stmt.reduction == "*":
            loads += 1
            flops += 1 if is_float else 0
    else:
        if stmt.reduction in ("+", "*"):
            flops += 1
    return flops, int_ops, loads, stores


@dataclass
class _CompiledAssign:
    """Cached execution plan of one assignment statement."""

    rhs_fn: Callable
    target_name: Optional[str]  # None for scalar targets
    index_fns: tuple
    reduction: Optional[str]
    is_float: bool
    d_flops: int
    d_int_ops: int
    d_loads: int
    d_stores: int


CallHandler = Callable[[str, list[object], "Interpreter"], None]


class Interpreter:
    """Execute an IR program over NumPy arrays.

    Parameters
    ----------
    program:
        The program to execute.
    call_handler:
        Optional callback invoked for every :class:`CallStmt`.  It receives
        the callee name, the raw argument list, and the interpreter (so it
        can read or write arrays and scalars).  Without a handler, call
        statements raise — plain host programs contain no calls.
    """

    def __init__(self, program: Program, call_handler: Optional[CallHandler] = None):
        self.program = program
        self.call_handler = call_handler
        self.scalars: dict[str, int | float] = {}
        self.arrays: dict[str, np.ndarray] = {}
        self.trace = ExecutionTrace()
        # Per-statement compilation caches (statement identity is stable for
        # the lifetime of the program object).
        self._assign_plans: dict[int, _CompiledAssign] = {}
        self._loop_bounds: dict[int, tuple[Callable, Callable]] = {}
        self._cond_fns: dict[int, Callable] = {}

    # ------------------------------------------------------------------
    # Setup and entry point
    # ------------------------------------------------------------------
    def allocate_arrays(
        self, params: Mapping[str, int | float]
    ) -> dict[str, np.ndarray]:
        """Allocate zero-filled arrays for every declaration."""
        allocated: dict[str, np.ndarray] = {}
        for decl in self.program.arrays:
            shape = decl.extent(dict(params))
            allocated[decl.name] = np.zeros(shape, dtype=decl.elem_type.numpy_dtype)
        return allocated

    def run(
        self,
        params: Mapping[str, int | float],
        arrays: Optional[Mapping[str, np.ndarray]] = None,
    ) -> dict[str, np.ndarray]:
        """Execute the program and return the (possibly updated) arrays.

        Input arrays are copied so callers can reuse them across runs.
        """
        self.scalars = dict(params)
        missing = [p.name for p in self.program.params if p.name not in self.scalars]
        if missing:
            raise InterpreterError(f"missing parameter bindings: {missing}")
        if arrays is None:
            self.arrays = self.allocate_arrays(params)
        else:
            self.arrays = {}
            for decl in self.program.arrays:
                if decl.name not in arrays:
                    raise InterpreterError(f"missing array binding {decl.name!r}")
                provided = np.asarray(arrays[decl.name], dtype=decl.elem_type.numpy_dtype)
                expected = decl.extent(dict(params))
                if tuple(provided.shape) != tuple(expected):
                    raise InterpreterError(
                        f"array {decl.name!r} has shape {provided.shape}, "
                        f"expected {expected}"
                    )
                self.arrays[decl.name] = provided.copy()
        self.trace = ExecutionTrace()
        self._exec_block(self.program.body)
        return self.arrays

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def _exec_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self._exec_block(stmt)
        elif isinstance(stmt, Loop):
            self._exec_loop(stmt)
        elif isinstance(stmt, Assign):
            self._exec_assign(stmt)
        elif isinstance(stmt, CallStmt):
            self._exec_call(stmt)
        elif isinstance(stmt, IfStmt):
            self.trace.branches += 1
            cond_fn = self._cond_fns.get(id(stmt))
            if cond_fn is None:
                cond_fn = compile_expr(stmt.cond)
                self._cond_fns[id(stmt)] = cond_fn
            if cond_fn(self.scalars, self.arrays):
                self._exec_block(stmt.then_body)
            elif stmt.else_body is not None:
                self._exec_block(stmt.else_body)
        else:
            raise InterpreterError(f"cannot execute statement {stmt!r}")

    def _loop_bound_fns(self, loop: Loop) -> tuple[Callable, Callable]:
        fns = self._loop_bounds.get(id(loop))
        if fns is None:
            fns = (compile_expr(loop.lower), compile_expr(loop.upper))
            self._loop_bounds[id(loop)] = fns
        return fns

    def _exec_loop(self, loop: Loop) -> None:
        lower_fn, upper_fn = self._loop_bound_fns(loop)
        lower = int(lower_fn(self.scalars, self.arrays))
        upper = int(upper_fn(self.scalars, self.arrays))
        saved = self.scalars.get(loop.var)
        scalars = self.scalars
        trace = self.trace
        var = loop.var
        body = loop.body.stmts
        for value in range(lower, upper, loop.step):
            scalars[var] = value
            trace.loop_iterations += 1
            trace.branches += 1
            trace.int_ops += 1  # induction-variable increment
            for stmt in body:
                self._exec_stmt(stmt)
        if saved is None:
            scalars.pop(var, None)
        else:
            scalars[var] = saved

    def _assign_plan(self, stmt: Assign) -> _CompiledAssign:
        plan = self._assign_plans.get(id(stmt))
        if plan is not None:
            return plan
        target = stmt.target
        is_float = True
        target_name: Optional[str] = None
        index_fns: tuple = ()
        if isinstance(target, ArrayRef):
            decl = self.program.array(target.name)
            is_float = decl.elem_type.is_float
            target_name = target.name
            index_fns = tuple(compile_expr(i) for i in target.indices)
        d_flops, d_int_ops, d_loads, d_stores = assign_trace_cost(stmt, is_float)
        plan = _CompiledAssign(
            rhs_fn=compile_expr(stmt.rhs),
            target_name=target_name,
            index_fns=index_fns,
            reduction=stmt.reduction,
            is_float=is_float,
            d_flops=d_flops,
            d_int_ops=d_int_ops,
            d_loads=d_loads,
            d_stores=d_stores,
        )
        self._assign_plans[id(stmt)] = plan
        return plan

    def _exec_assign(self, stmt: Assign) -> None:
        plan = self._assign_plan(stmt)
        trace = self.trace
        scalars = self.scalars
        arrays = self.arrays
        trace.statements_executed += 1
        trace.flops += plan.d_flops
        trace.int_ops += plan.d_int_ops
        trace.loads += plan.d_loads
        trace.stores += plan.d_stores
        value = plan.rhs_fn(scalars, arrays)
        if plan.target_name is not None:
            idx = tuple(int(fn(scalars, arrays)) for fn in plan.index_fns)
            if plan.reduction == "+":
                arrays[plan.target_name][idx] += value
            elif plan.reduction == "*":
                arrays[plan.target_name][idx] *= value
            else:
                arrays[plan.target_name][idx] = value
        else:  # scalar variable
            name = stmt.target.name
            if plan.reduction == "+":
                scalars[name] = scalars.get(name, 0) + value
            elif plan.reduction == "*":
                scalars[name] = scalars.get(name, 1) * value
            else:
                scalars[name] = value

    def _exec_call(self, stmt: CallStmt) -> None:
        self.trace.statements_executed += 1
        self.trace.runtime_calls.append((stmt.callee, tuple(stmt.args)))
        if self.call_handler is None:
            raise InterpreterError(
                f"no call handler installed for runtime call {stmt.callee!r}"
            )
        self.call_handler(stmt.callee, list(stmt.args), self)

    # ------------------------------------------------------------------
    # Helpers for call handlers
    # ------------------------------------------------------------------
    def resolve(self, arg: object) -> object:
        """Resolve a call argument: expressions are evaluated, array names
        are looked up, other values pass through unchanged."""
        if isinstance(arg, Expr) and not isinstance(arg, ArrayRef):
            return evaluate_expr(arg, self.scalars, self.arrays)
        if isinstance(arg, ArrayRef) and not arg.indices:
            return self.arrays[arg.name]
        if isinstance(arg, str) and arg in self.arrays:
            return self.arrays[arg]
        if isinstance(arg, Expr):
            return evaluate_expr(arg, self.scalars, self.arrays)
        return arg

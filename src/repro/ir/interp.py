"""Reference interpreter for the loop-nest IR.

The interpreter executes a :class:`~repro.ir.program.Program` element by
element over NumPy arrays.  It serves two purposes:

* **Functional reference** — integration tests run the original program and
  the CIM-offloaded program and compare results.
* **Dynamic operation counting** — every executed statement updates an
  :class:`ExecutionTrace`, which the host cost model can convert to
  instruction counts and energy.  (For large problem sizes the host model in
  :mod:`repro.host` uses analytical trip counts instead of running the
  interpreter; both paths agree on small sizes, which is tested.)

Runtime library calls (``CallStmt``) are dispatched to a user-provided
handler; :mod:`repro.codegen.executor` wires that handler to the CIM runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

import numpy as np

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    FloatConst,
    IntConst,
    Max,
    Min,
    ParamRef,
    UnaryOp,
    VarRef,
)
from repro.ir.program import Program
from repro.ir.stmt import Assign, Block, CallStmt, IfStmt, Loop, Stmt


class InterpreterError(RuntimeError):
    """Raised when the interpreter encounters an invalid program."""


def evaluate_expr(
    expr: Expr,
    scalars: Mapping[str, int | float],
    arrays: Mapping[str, np.ndarray],
) -> int | float:
    """Evaluate an IR expression under scalar and array bindings."""
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, FloatConst):
        return expr.value
    if isinstance(expr, (VarRef, ParamRef)):
        try:
            return scalars[expr.name]
        except KeyError as exc:
            raise InterpreterError(f"unbound variable {expr.name!r}") from exc
    if isinstance(expr, ArrayRef):
        array = arrays.get(expr.name)
        if array is None:
            raise InterpreterError(f"unbound array {expr.name!r}")
        idx = tuple(int(evaluate_expr(i, scalars, arrays)) for i in expr.indices)
        return array[idx]
    if isinstance(expr, BinOp):
        lhs = evaluate_expr(expr.lhs, scalars, arrays)
        rhs = evaluate_expr(expr.rhs, scalars, arrays)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/":
            return lhs / rhs
        if expr.op == "%":
            return lhs % rhs
        raise InterpreterError(f"unknown operator {expr.op!r}")
    if isinstance(expr, UnaryOp):
        return -evaluate_expr(expr.operand, scalars, arrays)
    if isinstance(expr, Min):
        return min(
            evaluate_expr(expr.lhs, scalars, arrays),
            evaluate_expr(expr.rhs, scalars, arrays),
        )
    if isinstance(expr, Max):
        return max(
            evaluate_expr(expr.lhs, scalars, arrays),
            evaluate_expr(expr.rhs, scalars, arrays),
        )
    raise InterpreterError(f"cannot evaluate expression {expr!r}")


@dataclass
class ExecutionTrace:
    """Dynamic operation counts collected while interpreting a program."""

    loop_iterations: int = 0
    statements_executed: int = 0
    flops: int = 0
    int_ops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    runtime_calls: list[tuple[str, tuple]] = field(default_factory=list)

    @property
    def memory_accesses(self) -> int:
        return self.loads + self.stores

    def merge(self, other: "ExecutionTrace") -> None:
        self.loop_iterations += other.loop_iterations
        self.statements_executed += other.statements_executed
        self.flops += other.flops
        self.int_ops += other.int_ops
        self.loads += other.loads
        self.stores += other.stores
        self.branches += other.branches
        self.runtime_calls.extend(other.runtime_calls)


def _count_expr_ops(expr: Expr, trace: ExecutionTrace, is_float: bool) -> None:
    """Attribute arithmetic and memory operations of one expression."""
    for node in expr.walk():
        if isinstance(node, (BinOp, UnaryOp, Min, Max)):
            if is_float:
                trace.flops += 1
            else:
                trace.int_ops += 1
        elif isinstance(node, ArrayRef):
            trace.loads += 1
            # Index arithmetic (row-major address computation) is integer work.
            trace.int_ops += max(0, len(node.indices) - 1) * 2


CallHandler = Callable[[str, list[object], "Interpreter"], None]


class Interpreter:
    """Execute an IR program over NumPy arrays.

    Parameters
    ----------
    program:
        The program to execute.
    call_handler:
        Optional callback invoked for every :class:`CallStmt`.  It receives
        the callee name, the raw argument list, and the interpreter (so it
        can read or write arrays and scalars).  Without a handler, call
        statements raise — plain host programs contain no calls.
    """

    def __init__(self, program: Program, call_handler: Optional[CallHandler] = None):
        self.program = program
        self.call_handler = call_handler
        self.scalars: dict[str, int | float] = {}
        self.arrays: dict[str, np.ndarray] = {}
        self.trace = ExecutionTrace()

    # ------------------------------------------------------------------
    # Setup and entry point
    # ------------------------------------------------------------------
    def allocate_arrays(
        self, params: Mapping[str, int | float]
    ) -> dict[str, np.ndarray]:
        """Allocate zero-filled arrays for every declaration."""
        allocated: dict[str, np.ndarray] = {}
        for decl in self.program.arrays:
            shape = decl.extent(dict(params))
            allocated[decl.name] = np.zeros(shape, dtype=decl.elem_type.numpy_dtype)
        return allocated

    def run(
        self,
        params: Mapping[str, int | float],
        arrays: Optional[Mapping[str, np.ndarray]] = None,
    ) -> dict[str, np.ndarray]:
        """Execute the program and return the (possibly updated) arrays.

        Input arrays are copied so callers can reuse them across runs.
        """
        self.scalars = dict(params)
        missing = [p.name for p in self.program.params if p.name not in self.scalars]
        if missing:
            raise InterpreterError(f"missing parameter bindings: {missing}")
        if arrays is None:
            self.arrays = self.allocate_arrays(params)
        else:
            self.arrays = {}
            for decl in self.program.arrays:
                if decl.name not in arrays:
                    raise InterpreterError(f"missing array binding {decl.name!r}")
                provided = np.asarray(arrays[decl.name], dtype=decl.elem_type.numpy_dtype)
                expected = decl.extent(dict(params))
                if tuple(provided.shape) != tuple(expected):
                    raise InterpreterError(
                        f"array {decl.name!r} has shape {provided.shape}, "
                        f"expected {expected}"
                    )
                self.arrays[decl.name] = provided.copy()
        self.trace = ExecutionTrace()
        self._exec_block(self.program.body)
        return self.arrays

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def _exec_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self._exec_block(stmt)
        elif isinstance(stmt, Loop):
            self._exec_loop(stmt)
        elif isinstance(stmt, Assign):
            self._exec_assign(stmt)
        elif isinstance(stmt, CallStmt):
            self._exec_call(stmt)
        elif isinstance(stmt, IfStmt):
            self.trace.branches += 1
            cond = evaluate_expr(stmt.cond, self.scalars, self.arrays)
            if cond:
                self._exec_block(stmt.then_body)
            elif stmt.else_body is not None:
                self._exec_block(stmt.else_body)
        else:
            raise InterpreterError(f"cannot execute statement {stmt!r}")

    def _exec_loop(self, loop: Loop) -> None:
        lower = int(evaluate_expr(loop.lower, self.scalars, self.arrays))
        upper = int(evaluate_expr(loop.upper, self.scalars, self.arrays))
        saved = self.scalars.get(loop.var)
        for value in range(lower, upper, loop.step):
            self.scalars[loop.var] = value
            self.trace.loop_iterations += 1
            self.trace.branches += 1
            self.trace.int_ops += 1  # induction-variable increment
            self._exec_block(loop.body)
        if saved is None:
            self.scalars.pop(loop.var, None)
        else:
            self.scalars[loop.var] = saved

    def _exec_assign(self, stmt: Assign) -> None:
        self.trace.statements_executed += 1
        target = stmt.target
        is_float = True
        if isinstance(target, ArrayRef):
            decl = self.program.array(target.name)
            is_float = decl.elem_type.is_float
        value = evaluate_expr(stmt.rhs, self.scalars, self.arrays)
        _count_expr_ops(stmt.rhs, self.trace, is_float)
        if isinstance(target, ArrayRef):
            idx = tuple(
                int(evaluate_expr(i, self.scalars, self.arrays)) for i in target.indices
            )
            self.trace.stores += 1
            self.trace.int_ops += max(0, len(idx) - 1) * 2
            if stmt.reduction == "+":
                self.trace.loads += 1
                self.trace.flops += 1 if is_float else 0
                self.trace.int_ops += 0 if is_float else 1
                self.arrays[target.name][idx] += value
            elif stmt.reduction == "*":
                self.trace.loads += 1
                self.trace.flops += 1 if is_float else 0
                self.arrays[target.name][idx] *= value
            else:
                self.arrays[target.name][idx] = value
        else:  # scalar variable
            if stmt.reduction == "+":
                self.scalars[target.name] = self.scalars.get(target.name, 0) + value
                self.trace.flops += 1
            elif stmt.reduction == "*":
                self.scalars[target.name] = self.scalars.get(target.name, 1) * value
                self.trace.flops += 1
            else:
                self.scalars[target.name] = value

    def _exec_call(self, stmt: CallStmt) -> None:
        self.trace.statements_executed += 1
        self.trace.runtime_calls.append((stmt.callee, tuple(stmt.args)))
        if self.call_handler is None:
            raise InterpreterError(
                f"no call handler installed for runtime call {stmt.callee!r}"
            )
        self.call_handler(stmt.callee, list(stmt.args), self)

    # ------------------------------------------------------------------
    # Helpers for call handlers
    # ------------------------------------------------------------------
    def resolve(self, arg: object) -> object:
        """Resolve a call argument: expressions are evaluated, array names
        are looked up, other values pass through unchanged."""
        if isinstance(arg, Expr) and not isinstance(arg, ArrayRef):
            return evaluate_expr(arg, self.scalars, self.arrays)
        if isinstance(arg, ArrayRef) and not arg.indices:
            return self.arrays[arg.name]
        if isinstance(arg, str) and arg in self.arrays:
            return self.arrays[arg]
        if isinstance(arg, Expr):
            return evaluate_expr(arg, self.scalars, self.arrays)
        return arg

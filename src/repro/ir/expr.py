"""Expression nodes of the loop-nest IR.

Expressions are immutable trees.  The subset is intentionally small: integer
and floating constants, references to loop induction variables, references to
program parameters (symbolic sizes and scalars such as ``alpha``/``beta``),
array accesses with arbitrary index expressions, binary and unary arithmetic,
and ``min``/``max`` (needed for tiled loop bounds).

Two derived facilities matter for the rest of the system:

* :meth:`Expr.free_vars` — the set of variable names an expression reads,
  used by SCoP detection and dependence analysis.
* :func:`affine_coefficients` (in :mod:`repro.poly.affine`) — index
  expressions are analysed for affinity by the polyhedral layer; the IR only
  provides structural access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

Number = Union[int, float]


class Expr:
    """Base class for all IR expressions."""

    def children(self) -> Sequence["Expr"]:
        """Direct sub-expressions, in evaluation order."""
        return ()

    def free_vars(self) -> set[str]:
        """Names of variables and parameters read by this expression."""
        result: set[str] = set()
        for child in self.children():
            result |= child.free_vars()
        return result

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every sub-expression, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    # Operator sugar so builders and tests can write natural arithmetic.
    def __add__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("*", _wrap(other), self)

    def __truediv__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("/", self, _wrap(other))

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("-", self)


def _wrap(value: "Expr | Number") -> Expr:
    """Promote plain Python numbers to IR constants."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("boolean constants are not IR expressions")
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, float):
        return FloatConst(value)
    raise TypeError(f"cannot use {value!r} as an IR expression")


@dataclass(frozen=True)
class IntConst(Expr):
    """Integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class FloatConst(Expr):
    """Floating-point literal."""

    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """Reference to a loop induction variable (or local scalar)."""

    name: str

    def free_vars(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ParamRef(Expr):
    """Reference to a program parameter (symbolic size or scalar constant).

    Parameters are fixed for the whole program execution; loop bounds that
    reference only parameters and constants are *static control* and thus
    SCoP-eligible.
    """

    name: str

    def free_vars(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Array element access ``name[idx0][idx1]...``."""

    name: str
    indices: tuple[Expr, ...]

    def __init__(self, name: str, indices: Sequence[Expr | int]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "indices", tuple(_wrap(i) for i in indices))

    def children(self) -> Sequence[Expr]:
        return self.indices

    @property
    def rank(self) -> int:
        return len(self.indices)

    def __str__(self) -> str:
        return self.name + "".join(f"[{idx}]" for idx in self.indices)


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic expression."""

    op: str
    lhs: Expr
    rhs: Expr

    _VALID_OPS = ("+", "-", "*", "/", "%")

    def __post_init__(self) -> None:
        if self.op not in self._VALID_OPS:
            raise ValueError(f"unsupported binary operator {self.op!r}")

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary arithmetic expression (currently only negation)."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op != "-":
            raise ValueError(f"unsupported unary operator {self.op!r}")

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Min(Expr):
    """Minimum of two expressions; appears in tiled loop upper bounds."""

    lhs: Expr
    rhs: Expr

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"min({self.lhs}, {self.rhs})"


@dataclass(frozen=True)
class Max(Expr):
    """Maximum of two expressions."""

    lhs: Expr
    rhs: Expr

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"max({self.lhs}, {self.rhs})"


def array_refs(expr: Expr) -> list[ArrayRef]:
    """All array accesses appearing in *expr*, in pre-order."""
    return [node for node in expr.walk() if isinstance(node, ArrayRef)]


def const_value(expr: Expr) -> Number | None:
    """Return the numeric value if *expr* is a literal, else ``None``."""
    if isinstance(expr, (IntConst, FloatConst)):
        return expr.value
    return None

"""Element types used by IR arrays and scalars."""

from __future__ import annotations

import enum

import numpy as np


class ElementType(enum.Enum):
    """Scalar element types supported by the IR.

    The CIM accelerator in the paper operates on fixed-point data written to
    the crossbar; the host-side kernels use single precision.  We keep the
    usual C types around so PolyBench kernels translate directly.
    """

    F32 = "float"
    F64 = "double"
    I32 = "int"
    I64 = "long"

    @property
    def size_bytes(self) -> int:
        """Size of one element in bytes (as on a 32/64-bit C target)."""
        return {
            ElementType.F32: 4,
            ElementType.F64: 8,
            ElementType.I32: 4,
            ElementType.I64: 8,
        }[self]

    @property
    def numpy_dtype(self) -> np.dtype:
        """NumPy dtype used by the interpreter for this element type."""
        return {
            ElementType.F32: np.dtype(np.float32),
            ElementType.F64: np.dtype(np.float64),
            ElementType.I32: np.dtype(np.int32),
            ElementType.I64: np.dtype(np.int64),
        }[self]

    @property
    def is_float(self) -> bool:
        return self in (ElementType.F32, ElementType.F64)

    @classmethod
    def from_c_name(cls, name: str) -> "ElementType":
        """Map a C type name (``float``, ``double``, ``int``, ``long``)."""
        for member in cls:
            if member.value == name:
                return member
        raise ValueError(f"unknown C element type: {name!r}")

"""Statement nodes of the loop-nest IR."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.ir.expr import ArrayRef, Expr, VarRef

_stmt_counter = itertools.count()


def _next_stmt_name() -> str:
    return f"S{next(_stmt_counter)}"


class Stmt:
    """Base class for all IR statements."""

    def children_stmts(self) -> Sequence["Stmt"]:
        return ()

    def walk(self) -> Iterator["Stmt"]:
        """Yield this statement and all nested statements, pre-order."""
        yield self
        for child in self.children_stmts():
            yield from child.walk()


@dataclass
class Assign(Stmt):
    """Assignment to an array element or scalar variable.

    ``reduction`` marks compound assignments (``+=``); this is semantic
    information the pattern matchers use (a GEMM update statement is a
    reduction over ``k``).  The right-hand side of a ``+=`` is stored
    *without* the implicit read of the target — i.e. ``C[i][j] += x`` has
    ``rhs = x`` and ``reduction = '+'``.
    """

    target: ArrayRef | VarRef
    rhs: Expr
    reduction: Optional[str] = None  # None, "+", "*"
    name: str = field(default_factory=_next_stmt_name)

    def reads(self) -> list[ArrayRef]:
        """Array accesses read by this statement.

        For reductions the target is also read (load-modify-store).
        """
        result = [node for node in self.rhs.walk() if isinstance(node, ArrayRef)]
        if self.reduction is not None and isinstance(self.target, ArrayRef):
            result.append(self.target)
        if not self.reduction and isinstance(self.target, ArrayRef):
            # Index expressions of the write are still reads of scalars only;
            # nested ArrayRefs inside indices (rare) count as reads.
            for idx in self.target.indices:
                result.extend(
                    node for node in idx.walk() if isinstance(node, ArrayRef)
                )
        return result

    def writes(self) -> list[ArrayRef]:
        """Array accesses written by this statement."""
        if isinstance(self.target, ArrayRef):
            return [self.target]
        return []

    def __str__(self) -> str:
        op = f"{self.reduction}=" if self.reduction else "="
        return f"{self.target} {op} {self.rhs};"


@dataclass
class Block(Stmt):
    """Ordered sequence of statements."""

    stmts: list[Stmt] = field(default_factory=list)

    def children_stmts(self) -> Sequence[Stmt]:
        return tuple(self.stmts)

    def append(self, stmt: Stmt) -> None:
        self.stmts.append(stmt)

    def __str__(self) -> str:
        return "{ " + " ".join(str(s) for s in self.stmts) + " }"


@dataclass
class Loop(Stmt):
    """Counted ``for`` loop: ``for (var = lower; var < upper; var += step)``.

    The upper bound is exclusive, matching C ``<`` comparisons and the
    PolyBench kernels.  ``step`` must be a positive integer constant for the
    loop to be polyhedral-analysable, but the IR itself allows any positive
    step expression.
    """

    var: str
    lower: Expr
    upper: Expr
    body: Block
    step: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.body, Block):
            raise TypeError("Loop body must be a Block")
        if isinstance(self.step, Expr):
            raise TypeError("Loop step must be a plain positive integer")
        if self.step <= 0:
            raise ValueError("Loop step must be positive")

    def children_stmts(self) -> Sequence[Stmt]:
        return (self.body,)

    def __str__(self) -> str:
        step = f"{self.var} += {self.step}" if self.step != 1 else f"{self.var}++"
        return (
            f"for ({self.var} = {self.lower}; {self.var} < {self.upper}; {step}) "
            f"{self.body}"
        )


@dataclass
class CallStmt(Stmt):
    """Call to a (runtime library) function.

    After device mapping the offloaded kernels become ``CallStmt`` nodes
    targeting the CIM runtime (``polly_cimBlasSGemm`` and friends); the
    interpreter dispatches them to :mod:`repro.runtime`.
    Arguments are IR expressions or plain Python strings (symbol names such
    as the destination buffer handle).
    """

    callee: str
    args: list[object] = field(default_factory=list)

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.callee}({rendered});"


@dataclass
class IfStmt(Stmt):
    """Conditional guard: ``if (cond != 0) then_body else else_body``.

    Only used for generated boundary code; conditions are arbitrary IR
    expressions interpreted as C truth values.
    """

    cond: Expr
    then_body: Block
    else_body: Optional[Block] = None

    def children_stmts(self) -> Sequence[Stmt]:
        if self.else_body is not None:
            return (self.then_body, self.else_body)
        return (self.then_body,)

    def __str__(self) -> str:
        text = f"if ({self.cond}) {self.then_body}"
        if self.else_body is not None:
            text += f" else {self.else_body}"
        return text


def loops_in(stmt: Stmt) -> list[Loop]:
    """All loops nested in *stmt* (including itself), pre-order."""
    return [node for node in stmt.walk() if isinstance(node, Loop)]


def assignments_in(stmt: Stmt) -> list[Assign]:
    """All assignment statements nested in *stmt*, pre-order."""
    return [node for node in stmt.walk() if isinstance(node, Assign)]


def perfectly_nested_loops(loop: Loop) -> list[Loop]:
    """The maximal perfect loop nest rooted at *loop*.

    A nest is perfect while each loop body contains exactly one statement and
    that statement is itself a loop.  Returns the chain of loops from the
    outermost (*loop*) to the innermost loop of the perfect nest.
    """
    chain = [loop]
    current = loop
    while len(current.body.stmts) == 1 and isinstance(current.body.stmts[0], Loop):
        current = current.body.stmts[0]
        chain.append(current)
    return chain

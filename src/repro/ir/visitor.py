"""Visitors and transformers over the loop-nest IR."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    FloatConst,
    IntConst,
    Max,
    Min,
    ParamRef,
    UnaryOp,
    VarRef,
)
from repro.ir.stmt import Assign, Block, CallStmt, IfStmt, Loop, Stmt


def walk(stmt: Stmt) -> Iterator[Stmt]:
    """Pre-order walk over statements (alias for ``Stmt.walk``)."""
    yield from stmt.walk()


class IRVisitor:
    """Read-only visitor dispatching on statement/expression class name.

    Subclasses override ``visit_<ClassName>``; unhandled nodes fall through
    to ``generic_visit`` which simply recurses into children.
    """

    def visit(self, node: Stmt | Expr) -> None:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            method(node)
        else:
            self.generic_visit(node)

    def generic_visit(self, node: Stmt | Expr) -> None:
        if isinstance(node, Stmt):
            for child in node.children_stmts():
                self.visit(child)
            if isinstance(node, Assign):
                self.visit(node.target)
                self.visit(node.rhs)
            elif isinstance(node, IfStmt):
                self.visit(node.cond)
            elif isinstance(node, Loop):
                self.visit(node.lower)
                self.visit(node.upper)
        elif isinstance(node, Expr):
            for child in node.children():
                self.visit(child)


class IRTransformer:
    """Rewriting visitor: returns replacement nodes.

    Statement visit methods must return a :class:`Stmt` (or a list of
    statements to splice into the surrounding block); expression visit
    methods must return an :class:`Expr`.  The default behaviour rebuilds
    nodes with transformed children, so a subclass only overrides what it
    wants to change.
    """

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def transform_stmt(self, stmt: Stmt) -> Stmt | list[Stmt]:
        method = getattr(self, f"visit_{type(stmt).__name__}", None)
        if method is not None:
            return method(stmt)
        return self.generic_transform_stmt(stmt)

    def generic_transform_stmt(self, stmt: Stmt) -> Stmt | list[Stmt]:
        if isinstance(stmt, Block):
            new_stmts: list[Stmt] = []
            for child in stmt.stmts:
                result = self.transform_stmt(child)
                if isinstance(result, list):
                    new_stmts.extend(result)
                else:
                    new_stmts.append(result)
            return Block(new_stmts)
        if isinstance(stmt, Loop):
            body = self.transform_stmt(stmt.body)
            if isinstance(body, list):
                body = Block(body)
            assert isinstance(body, Block)
            return Loop(
                var=stmt.var,
                lower=self.transform_expr(stmt.lower),
                upper=self.transform_expr(stmt.upper),
                body=body,
                step=stmt.step,
            )
        if isinstance(stmt, Assign):
            target = self.transform_expr(stmt.target)
            if not isinstance(target, (ArrayRef, VarRef)):
                raise TypeError("assignment target must remain an lvalue")
            return Assign(
                target=target,
                rhs=self.transform_expr(stmt.rhs),
                reduction=stmt.reduction,
                name=stmt.name,
            )
        if isinstance(stmt, IfStmt):
            then_body = self.transform_stmt(stmt.then_body)
            if isinstance(then_body, list):
                then_body = Block(then_body)
            else_body = None
            if stmt.else_body is not None:
                else_body = self.transform_stmt(stmt.else_body)
                if isinstance(else_body, list):
                    else_body = Block(else_body)
            return IfStmt(self.transform_expr(stmt.cond), then_body, else_body)
        if isinstance(stmt, CallStmt):
            new_args = [
                self.transform_expr(a) if isinstance(a, Expr) else a for a in stmt.args
            ]
            return CallStmt(stmt.callee, new_args)
        return stmt

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def transform_expr(self, expr: Expr) -> Expr:
        method = getattr(self, f"visit_{type(expr).__name__}", None)
        if method is not None:
            return method(expr)
        return self.generic_transform_expr(expr)

    def generic_transform_expr(self, expr: Expr) -> Expr:
        if isinstance(expr, BinOp):
            return BinOp(expr.op, self.transform_expr(expr.lhs), self.transform_expr(expr.rhs))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.transform_expr(expr.operand))
        if isinstance(expr, Min):
            return Min(self.transform_expr(expr.lhs), self.transform_expr(expr.rhs))
        if isinstance(expr, Max):
            return Max(self.transform_expr(expr.lhs), self.transform_expr(expr.rhs))
        if isinstance(expr, ArrayRef):
            return ArrayRef(expr.name, [self.transform_expr(i) for i in expr.indices])
        return expr


class SubstituteVars(IRTransformer):
    """Replace variable references by expressions (used for loop rewriting)."""

    def __init__(self, mapping: dict[str, Expr]):
        self.mapping = mapping

    def visit_VarRef(self, expr: VarRef) -> Expr:
        return self.mapping.get(expr.name, expr)


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Return *expr* with variable names replaced according to *mapping*."""
    return SubstituteVars(mapping).transform_expr(expr)


def rename_arrays(stmt: Stmt, mapping: dict[str, str]) -> Stmt:
    """Return *stmt* with array names renamed according to *mapping*."""

    class _Rename(IRTransformer):
        def visit_ArrayRef(self, expr: ArrayRef) -> Expr:
            new_name = mapping.get(expr.name, expr.name)
            return ArrayRef(new_name, [self.transform_expr(i) for i in expr.indices])

    result = _Rename().transform_stmt(stmt)
    if isinstance(result, list):
        return Block(result)
    return result

"""TDO-CIM: Transparent Detection and Offloading for Computation In-memory.

A Python reproduction of the DATE 2020 paper by Vadivel et al.: an
end-to-end compilation flow that transparently detects linear-algebra
kernels, optimises them for a PCM-crossbar compute-in-memory accelerator,
and offloads them through a lightweight runtime library — together with the
full emulated hardware/software stack (accelerator, driver, runtime, host
model) and the evaluation harness that regenerates the paper's table and
figures.

Typical usage::

    from repro import compile_source, OffloadExecutor

    result = compile_source(c_source)          # detect + optimise + offload
    print(result.report.summary())             # what the compiler did
    executor = OffloadExecutor()               # emulated Arm-A7 + CIM system
    outputs, report = executor.run(result.program, params, arrays)
    print(report.total_energy_j, report.edp)
"""

from repro.compiler import (
    CompileOptions,
    CompilationReport,
    CompilationResult,
    PipelineError,
    TdoCimCompiler,
    compile_source,
)
from repro.codegen import OffloadExecutor, ExecutionReport
from repro.fleet import FaultPlan, FleetConfig, FleetServer
from repro.gateway import (
    AsyncGateway,
    GatewayConfig,
    LoadReport,
    run_differential,
    run_open_loop,
)
from repro.ir import ENGINE_MODES, VectorizedEngine, make_engine
from repro.serve import CimServer, ServerConfig, TenantQuota
from repro.system import CimSystem, SystemConfig
from repro.trace import (
    Trace,
    TraceFormatError,
    TraceRecorder,
    TraceReplayer,
    diff_traces,
    load_trace,
)

__version__ = "1.8.0"

__all__ = [
    "AsyncGateway",
    "GatewayConfig",
    "LoadReport",
    "run_differential",
    "run_open_loop",
    "CompileOptions",
    "CompilationReport",
    "CompilationResult",
    "PipelineError",
    "TdoCimCompiler",
    "compile_source",
    "OffloadExecutor",
    "ExecutionReport",
    "CimServer",
    "ServerConfig",
    "TenantQuota",
    "FaultPlan",
    "FleetConfig",
    "FleetServer",
    "CimSystem",
    "SystemConfig",
    "Trace",
    "TraceFormatError",
    "TraceRecorder",
    "TraceReplayer",
    "diff_traces",
    "load_trace",
    "ENGINE_MODES",
    "VectorizedEngine",
    "make_engine",
    "__version__",
]

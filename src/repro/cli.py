"""``repro`` — the one command-line entrypoint of the reproduction.

Subcommands::

    repro run gemm --dataset MEDIUM     # host-vs-CIM evaluation of a kernel
    repro serve --scenario fleet_faultstorm --record trace.jsonl
    repro gateway --requests 1000       # wall-clock pool under open-loop load
    repro gateway --diff trace.jsonl    # wall-clock vs VirtualClock, bit-exact
    repro gateway chaos --requests 1000 # seeded fault storm + invariant suite
    repro bench serving --smoke         # run a benchmark (was PYTHONPATH=src
                                        # python benchmarks/bench_...)
    repro replay trace.jsonl --diff     # re-drive a recorded trace, diff it
    repro diff a.jsonl b.jsonl          # compare two traces bit-for-bit

Installed as a console script through ``setup.py`` (``pip install -e .``)
and equally runnable without installation as
``PYTHONPATH=src python -m repro.cli``, which is how CI invokes it.

Exit codes: 0 on success, 1 on a failed gate (replay/diff mismatch,
benchmark failure), 2 on bad usage or a malformed trace.  Benchmark
scripts may exit 3 ("skipped: optional toolchain missing"), which
``repro bench`` reports visibly and treats as success.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Optional

from repro.trace.replayer import TraceReplayer, diff_traces
from repro.trace.scenarios import SCENARIOS
from repro.trace.schema import Trace, TraceFormatError, load_trace

#: Benchmark name -> script under benchmarks/ (the ``repro bench`` registry;
#: keep in sync with the BENCH_*.json headliners in tools/collect_bench.py).
BENCHMARKS = {
    "engine": "bench_engine_speed.py",
    "multitile": "bench_multitile_scaling.py",
    "pipelines": "bench_ablation_pipeline.py",
    "serving": "bench_serving_throughput.py",
    "fleet": "bench_fleet_failover.py",
    "gateway": "bench_gateway_wallclock.py",
    "chaos": "bench_gateway_chaos.py",
}

#: Exit code a benchmark returns to signal "skipped: optional toolchain
#: missing" (e.g. the native engine without a C compiler).  ``repro
#: bench`` reports the skip visibly and exits 0 — a missing *optional*
#: backend must not fail CI.
BENCH_SKIPPED = 3


def repo_root() -> Path:
    """The checkout root (this file lives at src/repro/cli.py)."""
    return Path(__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# repro run
# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    from repro.eval.experiments import evaluate_kernel
    from repro.workloads.polybench import kernel_names

    if args.list:
        for name in kernel_names():
            print(name)
        return 0
    if not args.kernel:
        print("repro run: a kernel name is required (or --list)", file=sys.stderr)
        return 2
    evaluation = evaluate_kernel(
        args.kernel,
        dataset=args.dataset,
        seed=args.seed,
        verify=args.verify,
        pipeline=args.pipeline,
    )
    print(f"kernel             {evaluation.kernel} ({evaluation.category})")
    print(f"dataset            {evaluation.dataset}")
    print(f"host energy        {evaluation.host_energy_j:.6e} J")
    print(f"host+CIM energy    {evaluation.cim_energy_j:.6e} J")
    print(f"energy improvement {evaluation.energy_improvement:.3f}x")
    print(f"runtime improvement {evaluation.runtime_improvement:.3f}x")
    print(f"EDP improvement    {evaluation.edp_improvement:.3f}x")
    if args.verify:
        print("verification       results match the NumPy reference")
    return 0


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    recorder = SCENARIOS[args.scenario]
    trace = recorder(seed=args.seed) if args.seed is not None else recorder()
    _print_trace_summary(trace)
    if args.record:
        path = trace.save(args.record)
        print(f"\nrecorded trace -> {path}")
    return 0


def _print_trace_summary(trace: Trace) -> None:
    responses = trace.responses()
    statuses: dict[str, int] = {}
    for response in responses.values():
        statuses[response["status"]] = statuses.get(response["status"], 0) + 1
    print(f"kind               {trace.kind}")
    print(f"schema version     {trace.schema_version}")
    print(f"events             {len(trace.events)}")
    print(f"submissions        {len(trace.submissions())}")
    print(
        "responses          "
        + ", ".join(f"{count} {status}" for status, count in sorted(statuses.items()))
    )
    faults = trace.of_kind("fault")
    if faults:
        print(f"faults             {len(faults)}")
    print("\ntenant bills:")
    for tenant, bill in sorted(trace.tenant_bills().items()):
        print(
            f"  {tenant:<12} completed={bill['completed']:<3} "
            f"rejected={bill['rejected']:<3} wear={bill['wear_bytes']} B "
            f"energy={bill['energy_j']:.6e} J"
        )
    print("\ndevice bills:")
    for device_id, bill in sorted(trace.device_bills().items()):
        print(
            f"  device {device_id} [{bill['state']:<11}] "
            f"writes={bill['physical_cell_writes']} "
            f"energy={bill['physical_energy_j']:.6e} J "
            f"compensations={bill['compensations']} "
            f"partition={'ok' if bill['partition_ok'] else 'BROKEN'}"
        )


# ----------------------------------------------------------------------
# repro gateway
# ----------------------------------------------------------------------
def cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from repro.gateway.differential import run_differential

    if args.mode == "chaos":
        return _gateway_chaos(args)
    if args.diff:
        trace = load_trace(args.diff)
        result = run_differential(
            trace, num_workers=args.workers, cache_dir=args.cache_dir
        )
        print(
            f"differential: {result.num_requests} recorded requests through "
            f"VirtualClock mode and a {args.workers}-worker wall-clock pool"
        )
        print(result.diff.summary())
        return 0 if result.identical else 1
    if args.arrivals == "trace" and not args.trace:
        print(
            "repro gateway: --arrivals trace needs --trace PATH",
            file=sys.stderr,
        )
        return 2
    return asyncio.run(_gateway_loadgen(args))


def _gateway_chaos(args: argparse.Namespace) -> int:
    """``repro gateway chaos``: one seeded fault storm plus the full
    invariant suite (zero lost requests, exact partition, exactly-once
    billing, bit-identical results).  Exit 0 iff every invariant held."""
    from repro.gateway.chaos import ChaosSpec, run_chaos

    spec = ChaosSpec(
        num_requests=args.requests,
        seed=args.seed,
        num_workers=args.workers,
        hot_spares=args.hot_spares,
        max_respawns=args.respawns,
        hang_timeout_s=args.hang_timeout,
        rate_rps=args.rate,
        num_tenants=args.tenants,
    )
    print(
        f"[repro gateway] chaos storm: {spec.num_requests} requests "
        f"(seed {spec.seed}) -> {spec.num_workers} worker(s) + "
        f"{spec.hot_spares} spare(s), {spec.max_respawns} respawns/slot, "
        f"watchdog {spec.hang_timeout_s:g}s",
        flush=True,
    )
    report = run_chaos(spec)
    load = report.load
    planned = ", ".join(
        f"{name} x{count}"
        for name, count in sorted(report.planned_faults.items())
    ) or "none"
    print(f"planned faults     {planned}")
    print(f"planned deadlines  {report.planned_deadlines}")
    print(
        f"responses          {load.completed} completed, "
        f"{load.failed} failed, {load.rejected} rejected, "
        f"{load.deadline_exceeded} deadline-exceeded "
        f"({load.offered} offered in {load.duration_s:.3f} s)"
    )
    resilience = load.snapshot.get("resilience", {})
    if resilience:
        print(
            "resilience         "
            + ", ".join(f"{name}={value}" for name, value in resilience.items())
        )
    for name, passed in report.invariants.items():
        print(f"invariant          {name:<24} {'ok' if passed else 'VIOLATED'}")
    for violation in report.violations[:20]:
        print(f"  violation: {violation}")
    if args.output:
        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"\nchaos report -> {args.output}")
    return 0 if report.ok else 1


async def _gateway_loadgen(args: argparse.Namespace) -> int:
    """Open-loop load generation against a live wall-clock pool.

    SIGINT drains gracefully: the first ^C closes admission, every
    request already offered still completes, the pool drains (flushing
    the authoritative bills) and the partial report is printed; exit
    code 130 marks the interrupted run.
    """
    import asyncio
    import signal

    from repro.gateway.differential import gateway_config_from_trace
    from repro.gateway.loadgen import (
        run_open_loop,
        synthetic_gemv_workload,
        trace_workload,
    )
    from repro.gateway.server import AsyncGateway, GatewayConfig
    from repro.trace.arrivals import poisson_plan, trace_plan

    trace = load_trace(args.trace) if args.trace else None
    if args.arrivals == "trace":
        plan = trace_plan(
            trace,
            num_requests=args.requests,
            amplify=args.amplify,
            jitter_s=args.jitter,
            seed=args.seed,
        )
    else:
        plan = poisson_plan(args.requests, rate_rps=args.rate, seed=args.seed)
    if trace is not None:
        workload = trace_workload(trace)
        config = gateway_config_from_trace(
            trace, num_workers=args.workers, cache_dir=args.cache_dir
        )
    else:
        workload = synthetic_gemv_workload(num_tenants=args.tenants, seed=args.seed)
        config = GatewayConfig(num_workers=args.workers, cache_dir=args.cache_dir)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGINT, stop.set)
    try:
        gateway = AsyncGateway(config)
        async with gateway:
            print(
                f"[repro gateway] {len(plan)} {plan.kind} arrivals "
                f"(~{plan.mean_rate_rps:.1f} rps) -> {args.workers} worker(s)",
                flush=True,
            )
            report = await run_open_loop(
                gateway,
                plan,
                workload,
                progress=lambda done, total: print(
                    f"[repro gateway] {done}/{total} offered", flush=True
                ),
                stop=stop,
            )
            await gateway.drain()
            checks = gateway.verify_partition()
    finally:
        loop.remove_signal_handler(signal.SIGINT)

    if stop.is_set():
        print(
            "\n[repro gateway] interrupted: admission closed, in-flight "
            "requests served, bills flushed",
            flush=True,
        )
    print(f"offered            {report.offered} ({report.plan_kind} arrivals)")
    print(
        f"responses          {report.completed} completed, "
        f"{report.failed} failed, {report.rejected} rejected"
    )
    print(f"duration           {report.duration_s:.3f} s wall-clock")
    print(f"throughput         {report.throughput_rps:.1f} completed/s")
    print(
        f"latency            p50={report.latency_p50_s * 1e3:.2f} ms  "
        f"p99={report.latency_p99_s * 1e3:.2f} ms  "
        f"max={report.latency_max_s * 1e3:.2f} ms"
    )
    workers = report.snapshot["gateway"]["workers"]
    utilization = ", ".join(
        f"w{worker_id}={stats['utilization']:.2f}"
        for worker_id, stats in sorted(workers.items())
    )
    print(f"utilization        {utilization}")
    print(
        "accounting         "
        + ("partition ok" if all(checks.values()) else "PARTITION BROKEN")
    )
    if args.output:
        payload = report.to_dict()
        payload["partition_ok"] = all(checks.values())
        payload["interrupted"] = stop.is_set()
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nload report -> {args.output}")
    if not all(checks.values()):
        return 1
    return 130 if stop.is_set() else 0


# ----------------------------------------------------------------------
# repro bench
# ----------------------------------------------------------------------
def cmd_bench(args: argparse.Namespace) -> int:
    if args.list:
        for name, script in BENCHMARKS.items():
            print(f"{name:<10} benchmarks/{script}")
        return 0
    if not args.name:
        print("repro bench: a benchmark name is required (or --list)", file=sys.stderr)
        return 2
    if args.name != "all" and args.name not in BENCHMARKS:
        print(
            f"repro bench: unknown benchmark {args.name!r} "
            f"(choose from {', '.join(BENCHMARKS)}, or 'all')",
            file=sys.stderr,
        )
        return 2
    names = list(BENCHMARKS) if args.name == "all" else [args.name]
    root = repo_root()
    for name in names:
        command = [sys.executable, str(root / "benchmarks" / BENCHMARKS[name])]
        if args.smoke:
            command.append("--smoke")
        if args.output:
            command += ["--output", args.output]
        command += args.extra
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
        )
        print(f"[repro bench] {name}: {' '.join(command[1:])}", flush=True)
        result = subprocess.run(command, env=env, cwd=root)
        if result.returncode == BENCH_SKIPPED:
            # An optional dependency (e.g. the native-engine C toolchain)
            # is missing: the benchmark opted out visibly rather than
            # failing — not an error, the remaining benchmarks still run.
            print(
                f"[repro bench] {name}: SKIPPED — optional toolchain "
                "missing (see the benchmark's notice above)",
                flush=True,
            )
            continue
        if result.returncode != 0:
            print(f"repro bench: {name} failed ({result.returncode})", file=sys.stderr)
            return 1
    return 0


# ----------------------------------------------------------------------
# repro replay / repro diff
# ----------------------------------------------------------------------
def cmd_replay(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    result = TraceReplayer(trace).replay()
    if args.save:
        result.replayed.save(args.save)
        print(f"replayed trace -> {args.save}")
    if args.diff or not result.identical:
        print(result.diff.summary())
    else:
        print("replay matches the recording (bit-for-bit)")
    return 0 if result.identical else 1


def cmd_diff(args: argparse.Namespace) -> int:
    left = load_trace(args.left)
    right = load_trace(args.right)
    diff = diff_traces(left, right)
    print(diff.summary())
    return 0 if diff.identical else 1


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TDO-CIM reproduction: evaluate kernels, serve traffic, "
        "run benchmarks, and record/replay/diff serving traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="host-vs-CIM evaluation of one kernel")
    run.add_argument("kernel", nargs="?", help="PolyBench kernel name")
    run.add_argument("--dataset", default="MEDIUM", help="dataset preset")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--pipeline", default=None, help="named pass pipeline")
    run.add_argument(
        "--verify", action="store_true", help="check results against NumPy"
    )
    run.add_argument("--list", action="store_true", help="list kernels and exit")
    run.set_defaults(func=cmd_run)

    serve = sub.add_parser(
        "serve", help="run a canonical serving scenario (optionally record it)"
    )
    serve.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="serve_multitenant",
    )
    serve.add_argument(
        "--seed", type=int, default=None, help="override the pinned seed"
    )
    serve.add_argument(
        "--record", metavar="PATH", help="save the recorded trace as JSONL"
    )
    serve.set_defaults(func=cmd_serve)

    gateway = sub.add_parser(
        "gateway",
        help="wall-clock process-pool gateway: open-loop load, differential, "
        "or seeded chaos storm",
    )
    gateway.add_argument(
        "mode",
        nargs="?",
        choices=("load", "chaos"),
        default="load",
        help="'load' (default): open-loop load generation; 'chaos': seeded "
        "fault storm with the resilience invariant suite",
    )
    gateway.add_argument(
        "--diff",
        metavar="TRACE",
        help="differential gate: drive TRACE through VirtualClock mode and "
        "the wall-clock pool, require bit-identical responses and bills",
    )
    gateway.add_argument(
        "--workers", type=int, default=2, help="worker processes in the pool"
    )
    gateway.add_argument(
        "--requests", type=int, default=1000, help="requests to offer"
    )
    gateway.add_argument(
        "--arrivals",
        choices=("poisson", "trace"),
        default="poisson",
        help="arrival process (trace arrivals need --trace)",
    )
    gateway.add_argument(
        "--rate", type=float, default=200.0, help="Poisson offered rate (req/s)"
    )
    gateway.add_argument(
        "--trace",
        metavar="PATH",
        help="recorded trace: supplies the workload bodies (and the "
        "arrival pattern with --arrivals trace)",
    )
    gateway.add_argument(
        "--amplify",
        type=float,
        default=1.0,
        help="time-compress trace arrivals by this factor",
    )
    gateway.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="uniform +/- jitter (s) on resampled trace arrivals",
    )
    gateway.add_argument(
        "--tenants", type=int, default=4, help="synthetic workload tenants"
    )
    gateway.add_argument("--seed", type=int, default=0)
    gateway.add_argument(
        "--cache-dir", help="shared on-disk compile-cache directory"
    )
    gateway.add_argument(
        "--hot-spares",
        type=int,
        default=1,
        help="chaos: pre-spawned spare workers promoted on worker death",
    )
    gateway.add_argument(
        "--respawns",
        type=int,
        default=16,
        help="chaos: respawn budget per worker slot",
    )
    gateway.add_argument(
        "--hang-timeout",
        type=float,
        default=0.5,
        help="chaos: watchdog timeout (s) before a worker is declared wedged",
    )
    gateway.add_argument(
        "--output", metavar="PATH", help="write the load report JSON here"
    )
    gateway.set_defaults(func=cmd_gateway)

    bench = sub.add_parser("bench", help="run a benchmark from benchmarks/")
    bench.add_argument(
        "name", nargs="?", help=f"one of {', '.join(BENCHMARKS)}, or 'all'"
    )
    bench.add_argument("--smoke", action="store_true", help="reduced sizes for CI")
    bench.add_argument("--output", metavar="PATH", help="write results JSON here")
    bench.add_argument(
        "--list", action="store_true", help="list benchmarks and exit"
    )
    bench.add_argument(
        "extra",
        nargs="*",
        default=[],
        help="extra args passed to the script (flags the script understands "
        "can follow a '--' separator, e.g. `bench engine -- --require-native`)",
    )
    bench.set_defaults(func=cmd_bench)

    replay = sub.add_parser(
        "replay", help="re-drive a recorded trace through a fresh server"
    )
    replay.add_argument("trace", help="path to a .jsonl trace")
    replay.add_argument(
        "--diff",
        action="store_true",
        help="print the full section-by-section diff report",
    )
    replay.add_argument(
        "--save", metavar="PATH", help="save the replayed trace as JSONL"
    )
    replay.set_defaults(func=cmd_replay)

    diff = sub.add_parser("diff", help="compare two traces bit-for-bit")
    diff.add_argument("left")
    diff.add_argument("right")
    diff.set_defaults(func=cmd_diff)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    # `bench` forwards unrecognised flags to the benchmark script (after
    # an optional `--` separator); every other subcommand keeps argparse's
    # strict rejection of unknown arguments.
    args, unknown = parser.parse_known_args(argv)
    unknown = [token for token in unknown if token != "--"]
    if unknown:
        if getattr(args, "func", None) is cmd_bench:
            args.extra = list(args.extra) + unknown
        else:
            parser.error(f"unrecognized arguments: {' '.join(unknown)}")
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # A graceful SIGINT exit for the simulated subcommands (the
        # gateway handles SIGINT itself, draining the pool first): no
        # traceback, the conventional 128+SIGINT exit code.
        print("\nrepro: interrupted", file=sys.stderr)
        return 130
    except TraceFormatError as exc:
        print(f"repro: bad trace: {exc}", file=sys.stderr)
        return 2
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Micro-engine: turns context-register parameters into tile operations.

The micro-engine (Section II-C) translates the high-level parameters the
host wrote into the context registers into circuit-level operations: DMA
loads from shared memory into the row/column buffers, crossbar writes,
GEMV triggers, digital post-processing, and DMA stores of the results.  It
decomposes GEMM into a series of GEMVs, tiles operands that exceed the
crossbar geometry, reuses an already-programmed operand across batched
kernels that share it (the endurance-friendly "smart mapping"), and supports
double buffering to hide DMA latency behind crossbar compute.

With ``num_tiles > 1`` the operand blocks become shards handed to the
:class:`~repro.hw.scheduler.TileScheduler`, which places them on parallel
tile lanes with an async double-buffered DMA/compute pipeline; the
functional execution and all energy/wear accounting are unchanged — only
the reported latency (timeline makespan) shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hw.dma import DMAEngine
from repro.hw.energy import CimEnergyModel
from repro.hw.scheduler import ShardWork, TileScheduler, plan_gemm_shards
from repro.hw.stats import EnergyLedger, StatCounter
from repro.hw.tile import CIMTile
from repro.hw.timeline import Timeline


@dataclass
class GemmRequest:
    """One GEMM (or GEMV as the N=1 / single-output case) work item.

    Addresses are physical byte addresses in shared memory; matrices are
    stored row-major with the given leading dimensions (elements, not
    bytes).  ``elem_size`` is the operand element size in bytes (4 for
    single precision).
    """

    m: int
    n: int
    k: int
    addr_a: int
    addr_b: int
    addr_c: int
    lda: int
    ldb: int
    ldc: int
    alpha: float = 1.0
    beta: float = 0.0
    trans_a: bool = False
    trans_b: bool = False
    elem_size: int = 4

    def validate(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError("GEMM dimensions must be positive")
        if self.elem_size != 4:
            raise ValueError("only 4-byte (float32) operands are supported")


@dataclass
class Conv2DRequest:
    """Direct 2D convolution work item (filter stationary in the crossbar)."""

    out_h: int
    out_w: int
    filter_h: int
    filter_w: int
    img_h: int
    img_w: int
    addr_img: int
    addr_filter: int
    addr_out: int
    alpha: float = 1.0
    beta: float = 0.0
    elem_size: int = 4

    def validate(self) -> None:
        if min(self.out_h, self.out_w, self.filter_h, self.filter_w) <= 0:
            raise ValueError("convolution dimensions must be positive")
        if self.img_h < self.out_h + self.filter_h - 1:
            raise ValueError("input image height too small for requested output")
        if self.img_w < self.out_w + self.filter_w - 1:
            raise ValueError("input image width too small for requested output")


@dataclass
class MicroEngineResult:
    """Aggregate outcome of one micro-engine invocation."""

    latency_s: float = 0.0
    gemv_count: int = 0
    crossbar_writes: int = 0       # logical cells written
    crossbar_write_ops: int = 0    # write_matrix invocations
    dma_bytes: int = 0
    macs: int = 0


class MicroEngine:
    """Drives the CIM tile to execute GEMM / batched GEMM / convolution."""

    def __init__(
        self,
        tile: CIMTile,
        dma: DMAEngine,
        energy: EnergyLedger,
        counters: StatCounter,
        timeline: Optional[Timeline] = None,
        double_buffering: bool = True,
        batch_gemv: bool = True,
        reuse_resident_gemv: bool = True,
        num_tiles: int = 1,
    ):
        self.tile = tile
        self.dma = dma
        self.energy = energy
        self.counters = counters
        # Note: `timeline or Timeline()` would be wrong — an empty Timeline
        # is falsy (it has __len__), which would silently detach this engine
        # from the accelerator's timeline.
        self.timeline = timeline if timeline is not None else Timeline()
        self.double_buffering = double_buffering
        #: Number of physical tiles the timing model schedules over.  One
        #: tile reproduces the seed's serial clock exactly; more tiles shard
        #: operand blocks across lanes (see :mod:`repro.hw.scheduler`).
        #: Functional state and energy/wear accounting are tile-count-
        #: invariant; only the timeline/latency changes.
        self.num_tiles = num_tiles
        self.scheduler = TileScheduler(num_tiles, double_buffering)
        #: Dispatch all GEMVs that stream against one programmed tile as a
        #: single batched tile operation (one matmul in ideal mode, one
        #: vectorized MSB/LSB pass in quantized mode).  Pure dispatch
        #: optimisation: energy/latency/wear accounting is unchanged.
        self.batch_gemv = batch_gemv
        #: Keep the programmed operand resident across separate GEMV
        #: invocations (the paper's model does not re-program a matrix that
        #: is already in the crossbar when streaming more vectors at it).
        self.reuse_resident_gemv = reuse_resident_gemv
        self.energy_model: CimEnergyModel = tile.energy_model
        self._clock_s = 0.0
        # Operand-reuse state: identity and a full-precision copy of the
        # operand tile currently programmed into the crossbar (for batched
        # smart mapping and cross-call GEMV residency).  The copy guards
        # against stale reuse after the host rewrites the operand buffer.
        self._programmed_operand: Optional[tuple] = None
        self._programmed_values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def invalidate_residency(self) -> None:
        """Forget the programmed operand (e.g. on a statistics reset, so
        repeated measurements start from the same cold-crossbar state)."""
        self._programmed_operand = None
        self._programmed_values = None

    def run_gemm(self, request: GemmRequest) -> MicroEngineResult:
        """Execute one GEMM: ``C = alpha * op(A) * op(B) + beta * C``."""
        request.validate()
        result = MicroEngineResult()
        self._execute_gemm(request, result, reuse_programmed=False)
        self._finish(result)
        return result

    def run_gemm_batched(self, requests: list[GemmRequest]) -> MicroEngineResult:
        """Execute a batch of GEMMs, reusing the programmed operand when
        consecutive batch entries read the same ``A`` matrix (same address
        and shape) — the paper's endurance-oriented fusion payoff."""
        result = MicroEngineResult()
        for request in requests:
            request.validate()
            self._execute_gemm(request, result, reuse_programmed=True)
        self._finish(result)
        return result

    def run_conv2d(self, request: Conv2DRequest) -> MicroEngineResult:
        """Execute a 2D convolution with the filter stationary in the
        crossbar and image patches streamed through the row buffers."""
        request.validate()
        result = MicroEngineResult()
        self._execute_conv2d(request, result)
        self._finish(result)
        return result

    # ------------------------------------------------------------------
    # GEMM decomposition
    # ------------------------------------------------------------------
    def _execute_gemm(
        self, req: GemmRequest, result: MicroEngineResult, reuse_programmed: bool
    ) -> None:
        rows = self.tile.rows  # crossbar rows index the contraction (k)
        cols = self.tile.cols  # crossbar columns index the output rows (i)
        elem = req.elem_size
        dtype = np.float32

        a = self._load_matrix(req.addr_a, req.m, req.k, req.lda, req.trans_a, dtype,
                              charge_dma=False)
        b = self._load_matrix(req.addr_b, req.k, req.n, req.ldb, req.trans_b, dtype,
                              charge_dma=False)
        c_out = np.zeros((req.m, req.n), dtype=np.float64)

        # A GEMV request (N = 1) may reuse the operand left resident in the
        # crossbar by a previous invocation: the paper's model keeps the
        # matrix programmed while vectors stream against it, instead of
        # re-accounting a full write per call.
        allow_reuse = reuse_programmed or (
            self.reuse_resident_gemv and req.n == 1
        )
        # Multi-tile mode: collect the timing phases of each operand block
        # and let the scheduler place them on tile lanes afterwards.  The
        # functional execution and every energy/counter charge below stay
        # exactly as in the serial (single-tile) path.
        sharded = self.num_tiles > 1
        shard_work: list[ShardWork] = []
        for block in plan_gemm_shards(req.m, req.k, cols, rows):
            i0, i_size, k0, k_size = block.i0, block.i_size, block.k0, block.k_size
            shard = (
                ShardWork(label=f"A[{i0}:{i0 + i_size},{k0}:{k0 + k_size}]")
                if sharded else None
            )
            a_tile = a[i0 : i0 + i_size, k0 : k0 + k_size]
            # --- program the A tile (transposed: rows = k, cols = i) ---
            # The key carries the operand layout (transpose flag and
            # leading dimension): A and A^T at the same address are
            # different tiles.  The stored value copy guards against the
            # host having rewritten the buffer since it was programmed.
            tile_key = (req.addr_a, req.trans_a, req.lda, i0, k0, i_size, k_size)
            already_programmed = (
                allow_reuse
                and self._programmed_operand == tile_key
                and self._programmed_values is not None
                and self._programmed_values.shape == a_tile.shape
                and np.array_equal(self._programmed_values, a_tile)
            )
            if not already_programmed:
                tile_bytes = i_size * k_size * elem
                if sharded:
                    shard.dma_in_s = self._dma_in(
                        req.addr_a, tile_bytes, result, overlappable=True
                    )
                else:
                    self._dma_in(req.addr_a, tile_bytes, result)
                cost = self.tile.write_matrix(np.ascontiguousarray(a_tile.T))
                if sharded:
                    shard.program_s = cost.latency_s
                else:
                    self._advance("crossbar", "write_crossbar", cost.latency_s)
                result.crossbar_writes += i_size * k_size
                result.crossbar_write_ops += 1
                self._programmed_operand = tile_key
                self._programmed_values = a_tile.copy()
            else:
                self.counters.add("cim.crossbar_write_reuse", 1)
            # --- stream the columns of B through the tile -------------
            in_bytes = k_size * elem
            if self.batch_gemv and req.n > 1:
                # Batched dispatch: all N column vectors against the
                # programmed tile in one tile operation.  Per-GEMV
                # energy/latency/DMA accounting is applied n-fold, so
                # the reports are identical to the sequential loop.
                x_block = np.ascontiguousarray(b[k0 : k0 + k_size, :].T)
                dma_time = self._dma_in(req.addr_b, in_bytes, result,
                                        overlappable=True, repeat=req.n)
                partial, cost = self.tile.gemv_batch(
                    x_block, rows_active=k_size, cols_active=i_size
                )
                gemv_time = cost.latency_s / req.n
                if self.double_buffering:
                    step = req.n * max(gemv_time, dma_time)
                else:
                    step = req.n * (gemv_time + dma_time)
                self._step_compute(shard, sharded, step)
                self.energy.add(
                    "cim.dma_microengine",
                    req.n * self.energy_model.dma_microengine_energy_per_gemv_j,
                )
                result.gemv_count += req.n
                result.macs += req.n * i_size * k_size
                c_out[i0 : i0 + i_size, :] += partial.T
                if sharded:
                    shard_work.append(shard)
                continue
            for j in range(req.n):
                x = b[k0 : k0 + k_size, j]
                dma_time = self._dma_in(req.addr_b, in_bytes, result,
                                        overlappable=True)
                partial, cost = self.tile.gemv(
                    x, rows_active=k_size, cols_active=i_size
                )
                gemv_time = cost.latency_s
                if self.double_buffering:
                    step = max(gemv_time, dma_time)
                else:
                    step = gemv_time + dma_time
                self._step_compute(shard, sharded, step)
                self.energy.add(
                    "cim.dma_microengine",
                    self.energy_model.dma_microengine_energy_per_gemv_j,
                )
                result.gemv_count += 1
                result.macs += i_size * k_size
                c_out[i0 : i0 + i_size, j] += partial
            if sharded:
                shard_work.append(shard)
        if sharded:
            self._clock_s = self.scheduler.schedule(
                shard_work, start_s=self._clock_s, timeline=self.timeline
            )
        # --- post-processing and write-back ------------------------------
        digital_ops = req.m * req.n  # alpha scaling
        if req.beta != 0.0:
            c_orig = self._load_matrix(req.addr_c, req.m, req.n, req.ldc, False, dtype,
                                       charge_dma=False)
            self._dma_in(req.addr_c, req.m * req.n * elem, result)
            c_out = req.alpha * c_out + req.beta * c_orig
            digital_ops += 2 * req.m * req.n
        else:
            c_out = req.alpha * c_out
        self.tile.digital_ops(digital_ops)
        self._store_matrix(req.addr_c, c_out.astype(dtype), req.ldc, result)

    # ------------------------------------------------------------------
    # Convolution
    # ------------------------------------------------------------------
    def _execute_conv2d(self, req: Conv2DRequest, result: MicroEngineResult) -> None:
        """Weight-stationary unrolled convolution.

        The filter is replicated into ``T`` crossbar columns, column ``t``
        shifted by ``t`` input pixels, so one GEMV over an input slab of
        ``filter_h x (filter_w + T - 1)`` pixels produces ``T`` adjacent
        output pixels of one output row.  Only the rows covered by each
        column's filter footprint are programmed (the row-enable mask of the
        row buffers, Section II-B), so the one-time crossbar write costs
        ``filter_h * filter_w * T`` cells.
        """
        dtype = np.float32
        elem = req.elem_size
        kh, kw = req.filter_h, req.filter_w
        taps = kh * kw
        if taps > self.tile.rows:
            raise ValueError(
                f"filter of {taps} taps exceeds crossbar rows {self.tile.rows}"
            )
        # Pick the number of replicated columns: bounded by the crossbar
        # columns, by the rows needed for the widened slab, and by the output
        # row width (no point replicating beyond one output row).
        max_by_rows = self.tile.rows // kh - kw + 1
        t_cols = max(1, min(self.tile.cols, max_by_rows, req.out_w))
        slab_w = kw + t_cols - 1
        slab_len = kh * slab_w

        weights = self.dma.read_array(req.addr_filter, taps, dtype).astype(np.float64)
        result.dma_bytes += taps * elem
        weights_2d = weights.reshape(kh, kw)
        toeplitz = np.zeros((slab_len, t_cols), dtype=np.float64)
        for t in range(t_cols):
            for p in range(kh):
                toeplitz[p * slab_w + t : p * slab_w + t + kw, t] = weights_2d[p]
        cost = self.tile.write_matrix(toeplitz)
        self._advance("crossbar", "write_crossbar", cost.latency_s)
        # Only the filter-footprint cells are programmed (row-enable mask);
        # the tile's internal ledger counts the full block, so the endurance-
        # relevant count reported upward is the masked one.
        result.crossbar_writes += taps * t_cols
        result.crossbar_write_ops += 1
        self._programmed_operand = None
        self._programmed_values = None

        img = self.dma.read_array(
            req.addr_img, req.img_h * req.img_w, dtype
        ).reshape(req.img_h, req.img_w).astype(np.float64)
        # The image is streamed slab by slab in hardware; charge the DMA
        # traffic per streamed slab below, the bulk read above is free.
        self.dma.total_bytes -= req.img_h * req.img_w * elem
        self.dma.total_energy_j -= (
            req.img_h * req.img_w * elem * self.energy_model.dma_energy_per_byte_j
        )
        self.dma.total_time_s -= (
            req.img_h * req.img_w * elem / self.energy_model.dma_bandwidth_bytes_per_s
        )

        out = np.zeros((req.out_h, req.out_w), dtype=np.float64)
        col_starts = list(range(0, req.out_w, t_cols))
        # Multi-tile mode: the filter was broadcast-programmed into every
        # tile above (charged once — tile-count-invariant accounting, see
        # docs/scheduler.md); each output row becomes one shard streamed on
        # whichever tile lane frees up first.
        sharded = self.num_tiles > 1
        shard_work: list[ShardWork] = []
        for oi in range(req.out_h):
            shard = ShardWork(label=f"out_row[{oi}]") if sharded else None
            slabs = np.zeros((len(col_starts), kh, slab_w), dtype=np.float64)
            active_cols = []
            for slab_idx, oj in enumerate(col_starts):
                active_cols.append(min(t_cols, req.out_w - oj))
                avail = min(slab_w, req.img_w - oj)
                slabs[slab_idx, :, :avail] = img[oi : oi + kh, oj : oj + avail]
            if self.batch_gemv and len(col_starts) > 1:
                # Batched dispatch of the whole output row: one tile
                # operation for all slabs, with n-fold per-GEMV accounting.
                n = len(col_starts)
                dma_time = self._dma_in(req.addr_img, slab_len * elem, result,
                                        overlappable=True, repeat=n)
                values, cost = self.tile.gemv_batch(
                    slabs.reshape(n, slab_len),
                    rows_active=slab_len,
                    cols_active=t_cols,
                )
                gemv_time = cost.latency_s / n
                step = n * (max(gemv_time, dma_time) if self.double_buffering
                            else gemv_time + dma_time)
                self._step_compute(shard, sharded, step)
                self.energy.add(
                    "cim.dma_microengine",
                    n * self.energy_model.dma_microengine_energy_per_gemv_j,
                )
                result.gemv_count += n
                for slab_idx, oj in enumerate(col_starts):
                    active = active_cols[slab_idx]
                    result.macs += taps * active
                    out[oi, oj : oj + active] = values[slab_idx, :active]
                if sharded:
                    shard_work.append(shard)
                continue
            for slab_idx, oj in enumerate(col_starts):
                active = active_cols[slab_idx]
                x = slabs[slab_idx].reshape(-1)
                dma_time = self._dma_in(req.addr_img, slab_len * elem, result,
                                        overlappable=True)
                values, cost = self.tile.gemv(
                    x, rows_active=slab_len, cols_active=t_cols
                )
                step = max(cost.latency_s, dma_time) if self.double_buffering else (
                    cost.latency_s + dma_time
                )
                self._step_compute(shard, sharded, step)
                self.energy.add(
                    "cim.dma_microengine",
                    self.energy_model.dma_microengine_energy_per_gemv_j,
                )
                result.gemv_count += 1
                result.macs += taps * active
                out[oi, oj : oj + active] = values[:active]
            if sharded:
                shard_work.append(shard)
        if sharded:
            self._clock_s = self.scheduler.schedule(
                shard_work, start_s=self._clock_s, timeline=self.timeline
            )

        digital_ops = req.out_h * req.out_w
        if req.beta != 0.0:
            orig = self.dma.read_array(
                req.addr_out, req.out_h * req.out_w, dtype
            ).reshape(req.out_h, req.out_w).astype(np.float64)
            result.dma_bytes += req.out_h * req.out_w * elem
            out = req.alpha * out + req.beta * orig
            digital_ops += 2 * req.out_h * req.out_w
        else:
            out = req.alpha * out
        self.tile.digital_ops(digital_ops)
        self._store_matrix(req.addr_out, out.astype(dtype), req.out_w, result)

    # ------------------------------------------------------------------
    # Shared-memory helpers
    # ------------------------------------------------------------------
    def _load_matrix(
        self,
        address: int,
        n_rows: int,
        n_cols: int,
        leading_dim: int,
        transposed: bool,
        dtype,
        charge_dma: bool = True,
    ) -> np.ndarray:
        """Read a row-major (possibly transposed) matrix from shared memory."""
        if transposed:
            stored_rows, stored_cols = n_cols, n_rows
        else:
            stored_rows, stored_cols = n_rows, n_cols
        ld = max(leading_dim, stored_cols)
        flat = self.dma.read_array(address, stored_rows * ld, dtype)
        if not charge_dma:
            elem = np.dtype(dtype).itemsize
            size = stored_rows * ld * elem
            self.dma.total_bytes -= size
            self.dma.total_energy_j -= size * self.energy_model.dma_energy_per_byte_j
            self.dma.total_time_s -= size / self.energy_model.dma_bandwidth_bytes_per_s
        matrix = flat.reshape(stored_rows, ld)[:, :stored_cols].astype(np.float64)
        return matrix.T if transposed else matrix

    def _store_matrix(
        self, address: int, matrix: np.ndarray, leading_dim: int, result: MicroEngineResult
    ) -> None:
        n_rows, n_cols = matrix.shape
        ld = max(leading_dim, n_cols)
        if ld == n_cols:
            payload = np.ascontiguousarray(matrix)
            self.dma.write_array(address, payload.view(np.uint8).ravel())
        else:
            elem = matrix.dtype.itemsize
            for row_index in range(n_rows):
                row = np.ascontiguousarray(matrix[row_index])
                self.dma.write_array(
                    address + row_index * ld * elem, row.view(np.uint8).ravel()
                )
        size = n_rows * n_cols * matrix.dtype.itemsize
        result.dma_bytes += size
        self._advance(
            "dma", "store_result", size / self.energy_model.dma_bandwidth_bytes_per_s
        )

    def _dma_in(
        self,
        address: int,
        size_bytes: int,
        result: MicroEngineResult,
        overlappable: bool = False,
        repeat: int = 1,
    ) -> float:
        """Charge *repeat* input DMA transfers; returns the duration of one.

        The actual data was already fetched functionally; this only accounts
        energy/time for the streamed traffic.  ``repeat`` lets batched
        dispatch charge a whole stream of equal transfers in one call with
        totals identical to *repeat* single calls.
        """
        energy = repeat * size_bytes * self.energy_model.dma_energy_per_byte_j
        duration = size_bytes / self.energy_model.dma_bandwidth_bytes_per_s
        self.energy.add("cim.dma_traffic", energy)
        self.counters.add("cim.dma_bytes", repeat * size_bytes)
        result.dma_bytes += repeat * size_bytes
        if not overlappable:
            self._advance("dma", "fill_buffer", repeat * duration)
        return duration

    # ------------------------------------------------------------------
    def _step_compute(
        self, shard: Optional[ShardWork], sharded: bool, step_s: float
    ) -> None:
        """Account one streaming step: onto the shard (multi-tile mode, the
        scheduler places it later) or straight onto the serial clock."""
        if sharded:
            shard.compute_s += step_s
        else:
            self._advance("crossbar", "compute", step_s)

    def _advance(self, component: str, action: str, duration_s: float) -> None:
        self.timeline.record(component, action, self._clock_s, duration_s)
        self._clock_s += duration_s

    def _finish(self, result: MicroEngineResult) -> None:
        result.latency_s = self._clock_s
        self._clock_s = 0.0

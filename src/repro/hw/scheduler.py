"""Multi-tile offload scheduler: shards kernel work across CIM tiles.

The seed model offloads each kernel to a single CIM tile and serializes
every phase — DMA-in, crossbar programming, GEMV streaming — on one clock.
This module generalises that into an event-driven timing model for an
accelerator with ``num_tiles`` identical tiles:

* :func:`plan_gemm_shards` decomposes ``op(A)`` of a GEMM/GEMV into
  crossbar-granularity blocks (2-D ``(i, k)`` blocks for GEMM; for GEMV,
  where the contraction usually fits the crossbar rows, this degenerates to
  row-block sharding over the output dimension).
* :class:`TileScheduler` assigns those shards to tile lanes (greedy
  least-finish-time, in shard order) and pipelines each lane: with double
  buffering, the DMA-in of a lane's next shard overlaps the compute of its
  current shard (classic ping-pong buffering), so transfer latency hides
  behind crossbar compute.

The scheduler only decides *when* each phase happens and on which tile.
Functional execution and energy/endurance accounting happen in the
micro-engine exactly as in the single-tile model, so aggregate energy,
crossbar wear, GEMV counts and DMA traffic are tile-count-invariant by
construction — only the reported latency (timeline makespan) changes.
Shard granularity is the crossbar block: sharding below it would change
the number of programming operations and break that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hw.timeline import Timeline


@dataclass(frozen=True)
class ShardBlock:
    """One crossbar-granularity operand block of a sharded kernel.

    ``i0``/``i_size`` index the output-row dimension of ``op(A)`` (mapped to
    crossbar columns), ``k0``/``k_size`` the contraction dimension (mapped
    to crossbar rows).
    """

    i0: int
    i_size: int
    k0: int
    k_size: int


def plan_gemm_shards(m: int, k: int, cols: int, rows: int) -> list[ShardBlock]:
    """2-D block decomposition of an ``m x k`` operand at crossbar granularity.

    ``cols``/``rows`` are the crossbar geometry: output rows (``i``) map to
    crossbar columns, the contraction (``k``) to crossbar rows.  The blocks
    partition the operand exactly: disjoint, covering, and each within the
    crossbar geometry.
    """
    if min(m, k, cols, rows) <= 0:
        raise ValueError("shard planning needs positive dimensions")
    shards: list[ShardBlock] = []
    for i0 in range(0, m, cols):
        for k0 in range(0, k, rows):
            shards.append(
                ShardBlock(i0, min(cols, m - i0), k0, min(rows, k - k0))
            )
    return shards


@dataclass
class ShardWork:
    """Timing phases of one shard of offloaded work.

    ``dma_in_s`` is the operand transfer for programming the shard's block,
    ``program_s`` the crossbar write, and ``compute_s`` the GEMV streaming
    (which already folds in the per-vector input DMA, overlapped or serial
    according to the micro-engine's double-buffering flag).
    """

    dma_in_s: float = 0.0
    program_s: float = 0.0
    compute_s: float = 0.0
    label: str = ""


@dataclass(frozen=True)
class ShardPlacement:
    """Where and when one shard ran."""

    work: ShardWork
    tile: int
    dma_start_s: float
    dma_end_s: float
    compute_start_s: float
    compute_end_s: float


class TileScheduler:
    """Assigns shard work to tile lanes and pipelines DMA against compute.

    Each tile lane has two resources: its DMA channel and its
    crossbar/micro-engine compute path.  A shard's compute (programming +
    streaming) starts once its DMA-in finished *and* the lane's previous
    compute finished.  With ``double_buffering`` the lane's next DMA-in may
    start as soon as the current shard's compute begins consuming its buffer
    (ping-pong); without it, the next DMA-in waits for the compute to end.
    """

    def __init__(self, num_tiles: int = 1, double_buffering: bool = True):
        if num_tiles < 1:
            raise ValueError(f"num_tiles must be >= 1, got {num_tiles}")
        self.num_tiles = num_tiles
        self.double_buffering = double_buffering
        self.placements: list[ShardPlacement] = []

    # ------------------------------------------------------------------
    def schedule(
        self,
        shards: Sequence[ShardWork],
        start_s: float = 0.0,
        timeline: Optional[Timeline] = None,
    ) -> float:
        """Place *shards* on the tile lanes; returns the finish time.

        Records one ``tile{t}.dma`` event per DMA-in phase and
        ``tile{t}.crossbar`` events for programming and compute into
        *timeline* (when given).  Shards are placed in order on the lane
        that lets them finish earliest.
        """
        dma_free = [start_s] * self.num_tiles
        compute_free = [start_s] * self.num_tiles
        finish = start_s
        self.placements = []
        for shard in shards:
            best_tile = 0
            best: Optional[tuple[float, float, float, float]] = None
            for tile in range(self.num_tiles):
                dma_start = dma_free[tile]
                dma_end = dma_start + shard.dma_in_s
                compute_start = max(dma_end, compute_free[tile])
                compute_end = compute_start + shard.program_s + shard.compute_s
                if best is None or compute_end < best[3]:
                    best_tile, best = tile, (
                        dma_start, dma_end, compute_start, compute_end
                    )
            assert best is not None
            dma_start, dma_end, compute_start, compute_end = best
            tile = best_tile
            if self.double_buffering:
                dma_free[tile] = max(dma_end, compute_start)
            else:
                dma_free[tile] = compute_end
            compute_free[tile] = compute_end
            finish = max(finish, compute_end)
            placement = ShardPlacement(
                shard, tile, dma_start, dma_end, compute_start, compute_end
            )
            self.placements.append(placement)
            if timeline is not None:
                self._record(timeline, placement)
        return finish

    # ------------------------------------------------------------------
    @staticmethod
    def _record(timeline: Timeline, placement: ShardPlacement) -> None:
        shard = placement.work
        tile = placement.tile
        if shard.dma_in_s > 0:
            timeline.record(
                f"tile{tile}.dma", "fill_buffer",
                placement.dma_start_s, shard.dma_in_s,
            )
        if shard.program_s > 0:
            timeline.record(
                f"tile{tile}.crossbar", "write_crossbar",
                placement.compute_start_s, shard.program_s,
            )
        if shard.compute_s > 0:
            timeline.record(
                f"tile{tile}.crossbar", "compute",
                placement.compute_start_s + shard.program_s, shard.compute_s,
            )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"TileScheduler(num_tiles={self.num_tiles}, "
            f"double_buffering={self.double_buffering})"
        )

"""Row/column/output SRAM buffers of the CIM tile.

The digital interface of the tile (Section II-B of the paper) consists of
row buffers, column buffers, and output buffers.  During a write the column
buffers hold the data to be programmed and the row buffers the row-enable
mask; during a compute the row buffers latch the input vector and the column
buffers supply the column-enable mask.  Every byte moved in or out of a
buffer is charged at Table I's 5.4 pJ/byte figure by the tile.
"""

from __future__ import annotations

import numpy as np


class BufferOverflowError(RuntimeError):
    """Raised when more data is staged than the buffer can hold."""


class SRAMBuffer:
    """A small SRAM buffer with byte-access counting."""

    def __init__(self, name: str, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.data = np.zeros(capacity_bytes, dtype=np.uint8)
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    def write(self, payload: np.ndarray | bytes, offset: int = 0) -> int:
        """Store *payload* starting at *offset*; returns bytes written."""
        payload = np.frombuffer(bytes(payload), dtype=np.uint8) if isinstance(
            payload, (bytes, bytearray)
        ) else np.asarray(payload, dtype=np.uint8).ravel()
        end = offset + payload.size
        if offset < 0 or end > self.capacity_bytes:
            raise BufferOverflowError(
                f"{self.name}: write of {payload.size} B at offset {offset} exceeds "
                f"capacity {self.capacity_bytes} B"
            )
        self.data[offset:end] = payload
        self.bytes_written += payload.size
        return int(payload.size)

    def read(self, size: int, offset: int = 0) -> np.ndarray:
        """Read *size* bytes starting at *offset*."""
        end = offset + size
        if offset < 0 or end > self.capacity_bytes:
            raise BufferOverflowError(
                f"{self.name}: read of {size} B at offset {offset} exceeds "
                f"capacity {self.capacity_bytes} B"
            )
        self.bytes_read += size
        return self.data[offset:end].copy()

    @property
    def total_accessed_bytes(self) -> int:
        return self.bytes_written + self.bytes_read

    def reset_stats(self) -> None:
        self.bytes_written = 0
        self.bytes_read = 0

    def __repr__(self) -> str:
        return (
            f"SRAMBuffer({self.name}, {self.capacity_bytes} B, "
            f"w={self.bytes_written}, r={self.bytes_read})"
        )

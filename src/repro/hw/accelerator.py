"""The standalone CIM accelerator (Figure 2 (a)/(b)).

The accelerator bundles the CIM tiles (``AcceleratorConfig.num_tiles``, one
by default), the micro-engine, a DMA unit and the memory-mapped context
register file.  The host (through the driver) writes
kernel parameters into the context registers and writes ``START`` to the
command register; the accelerator then decodes the request, lets the
micro-engine execute it, and flips the status register to ``DONE``.

Batched GEMM requests pass a descriptor table in shared memory: ``ADDR_D``
points at ``BATCH_COUNT`` descriptors, each a sequence of eight 64-bit
little-endian words ``(addr_a, addr_b, addr_c, m, n, k, alpha_fx, beta_fx)``
with the scalars in the same fixed-point encoding as the registers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hw.context_regs import (
    Command,
    ContextRegisterFile,
    Flags,
    Opcode,
    Register,
    Status,
    decode_scalar,
)
from repro.hw.crossbar import CrossbarConfig
from repro.hw.dma import DMAEngine
from repro.hw.energy import CimEnergyModel
from repro.hw.microengine import Conv2DRequest, GemmRequest, MicroEngine, MicroEngineResult
from repro.hw.stats import EnergyLedger, StatCounter
from repro.hw.tile import CIMTile
from repro.hw.timeline import Timeline

#: Number of 64-bit words in one batched-GEMM descriptor.
BATCH_DESCRIPTOR_WORDS = 8
BATCH_DESCRIPTOR_BYTES = BATCH_DESCRIPTOR_WORDS * 8


def pack_batch_descriptor(
    addr_a: int, addr_b: int, addr_c: int, m: int, n: int, k: int,
    alpha_fx: int, beta_fx: int,
) -> bytes:
    """Pack one batched-GEMM descriptor into its shared-memory layout."""
    return struct.pack(
        "<8q", addr_a, addr_b, addr_c, m, n, k, alpha_fx, beta_fx
    )


def unpack_batch_descriptor(raw: bytes) -> tuple[int, int, int, int, int, int, int, int]:
    return struct.unpack("<8q", raw)


@dataclass
class AcceleratorConfig:
    """Structural configuration of the accelerator.

    ``num_tiles`` selects how many CIM tiles the timing model schedules
    kernels over (1 reproduces the seed's serial single-tile behaviour);
    the remaining flags control the micro-engine's dispatch strategy.
    Functional results and energy/endurance accounting do not depend on
    ``num_tiles`` (see :mod:`repro.hw.scheduler`).
    """

    num_tiles: int = 1
    double_buffering: bool = True
    batch_gemv: bool = True
    reuse_resident_gemv: bool = True

    def __post_init__(self) -> None:
        if self.num_tiles < 1:
            raise ValueError(f"num_tiles must be >= 1, got {self.num_tiles}")


@dataclass
class AcceleratorRunStats:
    """Per-invocation accounting reported back to the runtime library."""

    latency_s: float = 0.0
    energy_j: float = 0.0
    energy_breakdown: dict[str, float] = field(default_factory=dict)
    gemv_count: int = 0
    crossbar_cell_writes: int = 0
    crossbar_write_ops: int = 0
    macs: int = 0
    dma_bytes: int = 0


class CIMAccelerator:
    """Functional + energy/latency model of the CIM accelerator."""

    def __init__(
        self,
        memory,
        energy_model: Optional[CimEnergyModel] = None,
        crossbar_config: Optional[CrossbarConfig] = None,
        double_buffering: Optional[bool] = None,
        batch_gemv: Optional[bool] = None,
        reuse_resident_gemv: Optional[bool] = None,
        config: Optional[AcceleratorConfig] = None,
    ):
        # The individual flags are the seed API; AcceleratorConfig is the
        # structured one.  Mixing them would silently drop the flags, so
        # that is rejected instead.
        flags = (double_buffering, batch_gemv, reuse_resident_gemv)
        if config is not None:
            if any(flag is not None for flag in flags):
                raise ValueError(
                    "pass either an AcceleratorConfig or the individual "
                    "dispatch flags, not both"
                )
            self.config = config
        else:
            self.config = AcceleratorConfig(
                num_tiles=1,
                double_buffering=double_buffering if double_buffering is not None else True,
                batch_gemv=batch_gemv if batch_gemv is not None else True,
                reuse_resident_gemv=(
                    reuse_resident_gemv if reuse_resident_gemv is not None else True
                ),
            )
        self.energy_model = energy_model or CimEnergyModel()
        self.energy = EnergyLedger()
        self.counters = StatCounter()
        self.timeline = Timeline()
        self.tile = CIMTile(crossbar_config, self.energy_model)
        self.dma = DMAEngine(memory, self.energy_model)
        self.micro_engine = MicroEngine(
            tile=self.tile,
            dma=self.dma,
            energy=self.energy,
            counters=self.counters,
            timeline=self.timeline,
            double_buffering=self.config.double_buffering,
            batch_gemv=self.config.batch_gemv,
            reuse_resident_gemv=self.config.reuse_resident_gemv,
            num_tiles=self.config.num_tiles,
        )
        self.registers = ContextRegisterFile(on_start=self._on_start)
        self.completed_runs: list[AcceleratorRunStats] = []
        self.last_run: Optional[AcceleratorRunStats] = None

    # ------------------------------------------------------------------
    # PMIO interface used by the driver
    # ------------------------------------------------------------------
    def mmio_write(self, register: Register | int, value: int) -> None:
        self.registers.write(register, value)

    def mmio_read(self, register: Register | int) -> int:
        return self.registers.read(register)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _on_start(self) -> None:
        """Triggered by a START write to the command register."""
        tile_energy_before = self.tile.energy.total()
        own_energy_before = self.energy.total()
        dma_energy_before = self.dma.total_energy_j
        dma_bytes_before = self.dma.total_bytes
        breakdown_before = {**self.tile.energy.as_dict(), **self.energy.as_dict()}

        try:
            opcode = self.registers.opcode()
            if opcode in (Opcode.GEMM, Opcode.GEMV):
                result = self.micro_engine.run_gemm(self._decode_gemm())
            elif opcode is Opcode.GEMM_BATCHED:
                result = self.micro_engine.run_gemm_batched(self._decode_batch())
            elif opcode is Opcode.CONV2D:
                result = self.micro_engine.run_conv2d(self._decode_conv2d())
            else:
                raise ValueError(f"unsupported opcode {opcode}")
        except Exception:
            self.registers.set_status(Status.ERROR)
            raise

        dma_energy = self.dma.total_energy_j - dma_energy_before
        total_energy = (
            (self.tile.energy.total() - tile_energy_before)
            + (self.energy.total() - own_energy_before)
            + dma_energy
        )
        self.energy.add("cim.dma_traffic", dma_energy)
        breakdown_after = {**self.tile.energy.as_dict(), **self.energy.as_dict()}
        breakdown = {
            key: breakdown_after.get(key, 0.0) - breakdown_before.get(key, 0.0)
            for key in breakdown_after
            if breakdown_after.get(key, 0.0) - breakdown_before.get(key, 0.0) > 0
        }

        stats = AcceleratorRunStats(
            latency_s=result.latency_s,
            energy_j=total_energy,
            energy_breakdown=breakdown,
            gemv_count=result.gemv_count,
            crossbar_cell_writes=result.crossbar_writes,
            crossbar_write_ops=result.crossbar_write_ops,
            macs=result.macs,
            dma_bytes=result.dma_bytes + (self.dma.total_bytes - dma_bytes_before),
        )
        self.completed_runs.append(stats)
        self.last_run = stats
        self.registers.set_status(Status.DONE)

    # ------------------------------------------------------------------
    # Register decoding
    # ------------------------------------------------------------------
    def _decode_gemm(self) -> GemmRequest:
        regs = self.registers
        flags = regs.flags()
        m = regs.read(Register.DIM_M)
        n = regs.read(Register.DIM_N)
        k = regs.read(Register.DIM_K)
        if regs.opcode() is Opcode.GEMV:
            n = 1
        elem = regs.read(Register.ELEM_SIZE) or 4
        return GemmRequest(
            m=m,
            n=n,
            k=k,
            addr_a=regs.read(Register.ADDR_A),
            addr_b=regs.read(Register.ADDR_B),
            addr_c=regs.read(Register.ADDR_C),
            lda=k if not (flags & Flags.TRANS_A) else m,
            ldb=n if not (flags & Flags.TRANS_B) else k,
            ldc=n,
            alpha=decode_scalar(regs.read(Register.ALPHA)),
            beta=decode_scalar(regs.read(Register.BETA)),
            trans_a=bool(flags & Flags.TRANS_A),
            trans_b=bool(flags & Flags.TRANS_B),
            elem_size=elem,
        )

    def _decode_batch(self) -> list[GemmRequest]:
        regs = self.registers
        count = regs.read(Register.BATCH_COUNT)
        table_addr = regs.read(Register.ADDR_D)
        flags = regs.flags()
        elem = regs.read(Register.ELEM_SIZE) or 4
        requests: list[GemmRequest] = []
        for index in range(count):
            raw = self.dma.read(
                table_addr + index * BATCH_DESCRIPTOR_BYTES, BATCH_DESCRIPTOR_BYTES
            )
            addr_a, addr_b, addr_c, m, n, k, alpha_fx, beta_fx = unpack_batch_descriptor(
                bytes(raw)
            )
            requests.append(
                GemmRequest(
                    m=m,
                    n=n,
                    k=k,
                    addr_a=addr_a,
                    addr_b=addr_b,
                    addr_c=addr_c,
                    lda=k if not (flags & Flags.TRANS_A) else m,
                    ldb=n if not (flags & Flags.TRANS_B) else k,
                    ldc=n,
                    alpha=decode_scalar(alpha_fx),
                    beta=decode_scalar(beta_fx),
                    trans_a=bool(flags & Flags.TRANS_A),
                    trans_b=bool(flags & Flags.TRANS_B),
                    elem_size=elem,
                )
            )
        return requests

    def _decode_conv2d(self) -> Conv2DRequest:
        regs = self.registers
        out_h = regs.read(Register.DIM_M)
        out_w = regs.read(Register.DIM_N)
        # DIM_K packs the filter size as (filter_h << 16) | filter_w.
        packed = regs.read(Register.DIM_K)
        filter_h = (packed >> 16) & 0xFFFF
        filter_w = packed & 0xFFFF
        return Conv2DRequest(
            out_h=out_h,
            out_w=out_w,
            filter_h=filter_h,
            filter_w=filter_w,
            img_h=out_h + filter_h - 1,
            img_w=out_w + filter_w - 1,
            addr_img=regs.read(Register.ADDR_A),
            addr_filter=regs.read(Register.ADDR_B),
            addr_out=regs.read(Register.ADDR_C),
            alpha=decode_scalar(regs.read(Register.ALPHA)),
            beta=decode_scalar(regs.read(Register.BETA)),
            elem_size=regs.read(Register.ELEM_SIZE) or 4,
        )

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        return self.config.num_tiles

    def total_energy_j(self) -> float:
        return sum(run.energy_j for run in self.completed_runs)

    def total_latency_s(self) -> float:
        return sum(run.latency_s for run in self.completed_runs)

    def total_cell_writes(self) -> int:
        return sum(run.crossbar_cell_writes for run in self.completed_runs)

    def total_macs(self) -> int:
        return sum(run.macs for run in self.completed_runs)

    def reset_stats(self) -> None:
        self.completed_runs.clear()
        self.last_run = None
        self.energy.reset()
        self.counters.reset()
        self.timeline.clear()
        # The DMA and tile accumulators feed per-run deltas in _on_start;
        # left unreset they grow without bound and the float deltas round
        # differently depending on how much history the base carries.
        self.dma.reset_stats()
        self.tile.energy.reset()
        self.tile.counters.reset()
        # A fresh measurement starts from a cold crossbar: forgetting the
        # resident operand keeps repeated identical runs reproducible.
        self.micro_engine.invalidate_residency()

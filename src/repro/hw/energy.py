"""Energy and latency model constants — Table I of the paper.

All energies are in joules, latencies in seconds, frequencies in hertz.
Quantities the paper specifies per 8-bit cell are stored per 8-bit cell (the
crossbar model splits them across the two paired 4-bit devices internally).

Quantities the paper's table does not break out (shared-memory copy cost,
cache-flush cost, driver call overhead, DMA transfer energy) are modelled
with explicitly named constants in :class:`HostEnergyModel` and
:class:`CimEnergyModel` so the benchmarks can ablate them; the defaults are
derived from the Arm-A7 128 pJ/instruction figure (a copy is a load plus a
store, a flush is roughly one cache-maintenance instruction per line).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Unit helpers -----------------------------------------------------------
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


@dataclass(frozen=True)
class CimEnergyModel:
    """CIM accelerator energy/latency parameters (Table I, CIM section)."""

    # Crossbar geometry: IBM PCM, 256x256 at 8-bit realised as two adjacent
    # 4-bit columns per logical 8-bit cell.
    crossbar_rows: int = 256
    crossbar_cols: int = 256
    cell_bits: int = 8
    device_bits: int = 4  # physical PCM device resolution
    devices_per_cell: int = 2

    # Latency (per 8-bit quantity).  Writes are row-parallel: programming one
    # crossbar row (all of its cells) takes one write-latency period; an
    # analog GEMV over the whole array takes one compute-latency period.
    compute_latency_per_gemv_s: float = 1.0 * MICRO
    write_latency_per_row_s: float = 2.5 * MICRO

    # Energy.
    compute_energy_per_mac_j: float = 200.0 * FEMTO   # 2 x 100 fJ / 4-bit
    write_energy_per_cell_j: float = 200.0 * PICO     # 2 x 100 pJ / 4-bit
    mixed_signal_energy_per_gemv_j: float = 3.9 * NANO  # S&H + ADC @ 1.2 GHz
    buffer_energy_per_byte_j: float = 5.4 * PICO      # 1.5 KB IO buffers
    digital_weighted_sum_per_gemv_j: float = 40.0 * PICO
    digital_alu_op_j: float = 2.11 * PICO
    dma_microengine_energy_per_gemv_j: float = 0.78 * NANO  # "< 0.78 nJ"

    # DMA transfer cost per byte moved over the system bus (uncacheable
    # accesses from the accelerator side).  Not in Table I; modelled as a
    # LPDDR3-class access at roughly 10 pJ/byte.
    dma_energy_per_byte_j: float = 10.0 * PICO
    dma_bandwidth_bytes_per_s: float = 3.2e9  # LPDDR3-933 x 32-bit channel

    # Input/output buffer capacity (Table I: 1.5 KB).
    io_buffer_bytes: int = 1536

    @property
    def cells_per_crossbar(self) -> int:
        return self.crossbar_rows * self.crossbar_cols

    @property
    def crossbar_capacity_bytes(self) -> int:
        """Bytes of operand data one full crossbar write can hold."""
        return self.crossbar_rows * self.crossbar_cols * self.cell_bits // 8


@dataclass(frozen=True)
class HostEnergyModel:
    """Host (dual-core Arm-A7) parameters (Table I, host section)."""

    cores: int = 2
    frequency_hz: float = 1.2 * GIGA
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 2 * 1024 * 1024
    cache_line_bytes: int = 64
    dram_bytes: int = 2 * 1024 * 1024 * 1024  # 2 GB LPDDR3-933
    energy_per_instruction_j: float = 128.0 * PICO  # includes cache energy
    instructions_per_cycle: float = 1.0

    # Host-side offload overheads (derived, see module docstring).
    # A shared-memory copy is a load + a store per 4-byte word.
    copy_instructions_per_byte: float = 0.5
    # Cache flush by virtual address: one maintenance instruction per line
    # plus loop overhead.
    flush_instructions_per_line: float = 3.0
    # Fixed instruction cost of one ioctl round trip into the CIM driver
    # (user/kernel crossing, argument marshalling, register writes).
    ioctl_instructions: int = 1500
    # Fixed instruction cost of a CMA allocation / free in the driver.
    cma_alloc_instructions: int = 4000
    # Polling loop: instructions executed per status-register check.
    spin_poll_instructions: int = 20

    @property
    def seconds_per_instruction(self) -> float:
        return 1.0 / (self.frequency_hz * self.instructions_per_cycle)

    def instruction_energy(self, instructions: float) -> float:
        return instructions * self.energy_per_instruction_j

    def instruction_time(self, instructions: float) -> float:
        return instructions * self.seconds_per_instruction


@dataclass(frozen=True)
class SystemEnergyModel:
    """Complete Table I configuration: CIM accelerator plus host."""

    cim: CimEnergyModel = field(default_factory=CimEnergyModel)
    host: HostEnergyModel = field(default_factory=HostEnergyModel)


#: The configuration used throughout the paper's evaluation (Table I).
TABLE_I = SystemEnergyModel()


def table_i_rows() -> list[tuple[str, str]]:
    """Table I rendered as (parameter, value) rows for reports/benchmarks."""
    cim = TABLE_I.cim
    host = TABLE_I.host
    return [
        ("PCM crossbar technology",
         f"IBM PCM 2x({cim.crossbar_rows}x{cim.crossbar_cols} @{cim.device_bits}-bit)"
         f" = {cim.crossbar_rows}x{cim.crossbar_cols} @{cim.cell_bits}-bit"),
        ("Compute latency / GEMV", f"{cim.compute_latency_per_gemv_s * 1e6:.1f} us"),
        ("Write latency / row", f"{cim.write_latency_per_row_s * 1e6:.1f} us"),
        ("Compute energy / 8-bit MAC", f"{cim.compute_energy_per_mac_j * 1e15:.0f} fJ"),
        ("Write energy / 8-bit cell", f"{cim.write_energy_per_cell_j * 1e12:.0f} pJ"),
        ("Mixed-signal energy / GEMV", f"{cim.mixed_signal_energy_per_gemv_j * 1e9:.1f} nJ"),
        ("IO buffer energy", f"{cim.buffer_energy_per_byte_j * 1e12:.1f} pJ/byte"
         f" ({cim.io_buffer_bytes} B buffers)"),
        ("Digital logic", f"{cim.digital_weighted_sum_per_gemv_j * 1e12:.0f} pJ/GEMV + "
         f"{cim.digital_alu_op_j * 1e12:.2f} pJ/ALU op"),
        ("DMA + micro-engine", f"<{cim.dma_microengine_energy_per_gemv_j * 1e9:.2f} nJ/GEMV"),
        ("Host CPU", f"{host.cores}x Arm-A7 @ {host.frequency_hz / 1e9:.1f} GHz"),
        ("Host caches", f"L1-I/D {host.l1_bytes // 1024} KB, L2 {host.l2_bytes // (1024 * 1024)} MB"),
        ("Host memory", f"{host.dram_bytes // (1024 ** 3)} GB LPDDR3 @933 MHz"),
        ("Host energy / instruction", f"{host.energy_per_instruction_j * 1e12:.0f} pJ (incl. cache)"),
    ]

"""Energy and event accounting shared by all hardware components.

Every hardware model charges into a shared :class:`EnergyLedger` (joules
per named category, e.g. ``cim.crossbar_write``) and a shared
:class:`StatCounter` (integer event counts, e.g. ``cim.gemv_ops``); the
evaluation layer slices these into the paper's host/accelerator totals.

Accounting invariant: energy and counters are charged where the *work*
happens (one charge per physical operation), never where the *time* is
scheduled.  That is what keeps the aggregate reports bit-identical across
dispatch strategies — batched vs. sequential GEMV dispatch, and one CIM
tile vs. many (:mod:`repro.hw.scheduler` redistributes phases in time but
triggers the exact same sequence of charges).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping


class EnergyLedger:
    """Accumulates energy per named category (in joules).

    Components charge energy with :meth:`add`; reports group categories into
    host-side and accelerator-side totals.  The ledger is deliberately simple
    — a dictionary with helpers — so every component can share one instance
    and the evaluation layer can slice the result any way it needs.
    """

    def __init__(self) -> None:
        self._joules: dict[str, float] = defaultdict(float)

    def add(self, category: str, joules: float) -> None:
        if joules < 0:
            raise ValueError(f"negative energy charge for {category!r}: {joules}")
        self._joules[category] += joules

    def get(self, category: str) -> float:
        return self._joules.get(category, 0.0)

    def total(self, categories: Iterable[str] | None = None) -> float:
        if categories is None:
            return sum(self._joules.values())
        return sum(self._joules.get(c, 0.0) for c in categories)

    def categories(self) -> list[str]:
        return sorted(self._joules)

    def as_dict(self) -> dict[str, float]:
        return dict(self._joules)

    def merge(self, other: "EnergyLedger") -> None:
        for category, joules in other._joules.items():
            self._joules[category] += joules

    def reset(self) -> None:
        self._joules.clear()

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.3e}J" for k, v in sorted(self._joules.items()))
        return f"EnergyLedger({parts})"


class StatCounter:
    """Named integer event counters (writes, GEMVs, DMA bytes, ...)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def add(self, name: str, count: int = 1) -> None:
        self._counts[name] += int(count)

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def merge(self, other: "StatCounter") -> None:
        for name, count in other._counts.items():
            self._counts[name] += count

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"StatCounter({parts})"


@dataclass
class ExecutionStats:
    """Combined energy, counters, and elapsed time for one simulated run."""

    energy: EnergyLedger = field(default_factory=EnergyLedger)
    counters: StatCounter = field(default_factory=StatCounter)
    elapsed_seconds: float = 0.0

    def merge(self, other: "ExecutionStats") -> None:
        self.energy.merge(other.energy)
        self.counters.merge(other.counters)
        self.elapsed_seconds += other.elapsed_seconds

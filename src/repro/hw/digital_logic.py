"""Digital post-processing block of the CIM tile.

The crossbar realises an 8-bit logical cell with two adjacent 4-bit PCM
devices: one column holds the 4 most-significant bits, its neighbour the 4
least-significant bits.  The digital logic block recombines the two partial
dot products with a weighted sum (``msb * 16 + lsb``), applies scalar
post-processing (alpha/beta scaling, accumulation into the output buffer)
and performs reduction functions.  Table I charges 40 pJ per GEMV for the
weighted sum plus 2.11 pJ per additional ALU operation; this module counts
those operations so the tile can convert them to energy.
"""

from __future__ import annotations

import numpy as np


class DigitalLogic:
    """Counts and performs the scalar digital work of the tile."""

    def __init__(self) -> None:
        self.weighted_sums = 0
        self.alu_ops = 0

    # ------------------------------------------------------------------
    def weighted_column_sum(
        self, msb_partial: np.ndarray, lsb_partial: np.ndarray, device_bits: int
    ) -> np.ndarray:
        """Combine MSB/LSB column results into full-resolution values."""
        msb = np.asarray(msb_partial, dtype=np.float64)
        lsb = np.asarray(lsb_partial, dtype=np.float64)
        if msb.shape != lsb.shape:
            raise ValueError("MSB/LSB partial results must have the same shape")
        self.weighted_sums += 1
        # One multiply-add per element beyond the per-GEMV weighted-sum budget.
        self.alu_ops += msb.size
        return msb * float(1 << device_bits) + lsb

    def scale_and_accumulate(
        self,
        accumulator: np.ndarray,
        contribution: np.ndarray,
        scale: float = 1.0,
    ) -> np.ndarray:
        """``accumulator += scale * contribution`` with ALU-op accounting."""
        contribution = np.asarray(contribution, dtype=np.float64)
        ops = contribution.size
        if scale != 1.0:
            ops += contribution.size
        self.alu_ops += ops
        return accumulator + scale * contribution

    def reduce_sum(self, values: np.ndarray) -> float:
        """Scalar reduction (sum) in the digital block."""
        values = np.asarray(values, dtype=np.float64)
        self.alu_ops += max(0, values.size - 1)
        return float(values.sum())

    def reset_stats(self) -> None:
        self.weighted_sums = 0
        self.alu_ops = 0

"""Memory-mapped context registers of the CIM accelerator.

The accelerator exposes a register file through a port-mapped IO interface
(Section II-D).  The host-side driver writes kernel parameters (operand
physical addresses, matrix dimensions, scaling factors, operation code) into
the context registers, then writes the COMMAND register to trigger
execution; the accelerator reports completion through the STATUS register,
which the host polls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional


class Register(enum.IntEnum):
    """Register offsets (word-indexed) of the context register file."""

    COMMAND = 0x00
    STATUS = 0x01
    OPCODE = 0x02
    ADDR_A = 0x03
    ADDR_B = 0x04
    ADDR_C = 0x05
    ADDR_D = 0x06          # second output / batched operand table
    DIM_M = 0x07
    DIM_N = 0x08
    DIM_K = 0x09
    ALPHA = 0x0A           # fixed-point encoded scalar
    BETA = 0x0B
    FLAGS = 0x0C           # bit0: transA, bit1: transB, bit2: double-buffering
    BATCH_COUNT = 0x0D
    ELEM_SIZE = 0x0E
    IRQ_ENABLE = 0x0F


class Opcode(enum.IntEnum):
    """Operations the micro-engine understands."""

    NOP = 0
    GEMV = 1
    GEMM = 2
    GEMM_BATCHED = 3
    CONV2D = 4


class Command(enum.IntEnum):
    IDLE = 0
    START = 1
    RESET = 2


class Status(enum.IntEnum):
    IDLE = 0
    BUSY = 1
    DONE = 2
    ERROR = 3


class Flags(enum.IntFlag):
    NONE = 0
    TRANS_A = 1
    TRANS_B = 2
    DOUBLE_BUFFER = 4


#: Fixed-point scale used to pass alpha/beta through integer registers.
SCALAR_FIXED_POINT_SCALE = 1 << 16


def encode_scalar(value: float) -> int:
    """Encode a float scalar into the fixed-point register format."""
    return int(round(value * SCALAR_FIXED_POINT_SCALE))


def decode_scalar(raw: int) -> float:
    return raw / SCALAR_FIXED_POINT_SCALE


class ContextRegisterFile:
    """The accelerator's register file with a trigger callback.

    Writing ``Command.START`` to the COMMAND register invokes the callback
    installed by the accelerator (which runs the micro-engine); this mirrors
    the PMIO behaviour of the modelled hardware.
    """

    def __init__(self, on_start: Optional[Callable[[], None]] = None):
        self._regs: dict[int, int] = {int(reg): 0 for reg in Register}
        self._on_start = on_start
        self.reads = 0
        self.writes = 0

    def install_start_handler(self, handler: Callable[[], None]) -> None:
        self._on_start = handler

    # ------------------------------------------------------------------
    def read(self, register: Register | int) -> int:
        self.reads += 1
        return self._regs.get(int(register), 0)

    def write(self, register: Register | int, value: int) -> None:
        self.writes += 1
        register = int(register)
        if register not in self._regs:
            raise KeyError(f"write to unknown context register 0x{register:02x}")
        self._regs[register] = int(value)
        if register == int(Register.COMMAND) and int(value) == int(Command.START):
            if self._on_start is None:
                raise RuntimeError("COMMAND.START written but no handler installed")
            self._regs[int(Register.STATUS)] = int(Status.BUSY)
            self._on_start()

    # Convenience wrappers used by the micro-engine -----------------------
    def status(self) -> Status:
        return Status(self._regs[int(Register.STATUS)])

    def set_status(self, status: Status) -> None:
        self._regs[int(Register.STATUS)] = int(status)

    def opcode(self) -> Opcode:
        return Opcode(self._regs[int(Register.OPCODE)])

    def flags(self) -> Flags:
        return Flags(self._regs[int(Register.FLAGS)])

    def snapshot(self) -> dict[str, int]:
        """Readable dump of the register file (for debugging and tests)."""
        return {reg.name: self._regs[int(reg)] for reg in Register}

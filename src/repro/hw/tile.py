"""The CIM tile: crossbar plus digital periphery (Figure 2 (b)).

The tile bundles the crossbar, the row/column/output buffers, the shared
ADC stage and the digital logic block, and converts the raw operation counts
of those components into energy using the Table I model.  The micro-engine
talks only to the tile; the tile hides the MSB/LSB column pairing and the
buffer staging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hw.buffers import SRAMBuffer
from repro.hw.crossbar import Crossbar, CrossbarConfig, GemvReport, WriteReport
from repro.hw.energy import CimEnergyModel
from repro.hw.stats import EnergyLedger, StatCounter


@dataclass
class TileOperationCost:
    """Energy and latency of one tile-level operation."""

    energy_j: float
    latency_s: float


class CIMTile:
    """One CIM tile with energy/latency accounting."""

    def __init__(
        self,
        crossbar_config: Optional[CrossbarConfig] = None,
        energy_model: Optional[CimEnergyModel] = None,
    ):
        self.energy_model = energy_model or CimEnergyModel()
        config = crossbar_config or CrossbarConfig(
            rows=self.energy_model.crossbar_rows,
            cols=self.energy_model.crossbar_cols,
            cell_bits=self.energy_model.cell_bits,
            device_bits=self.energy_model.device_bits,
        )
        self.crossbar = Crossbar(config)
        buffer_bytes = self.energy_model.io_buffer_bytes
        self.row_buffer = SRAMBuffer("row", buffer_bytes)
        self.column_buffer = SRAMBuffer("column", buffer_bytes)
        self.output_buffer = SRAMBuffer("output", buffer_bytes)
        self.energy = EnergyLedger()
        self.counters = StatCounter()

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.crossbar.config.rows

    @property
    def cols(self) -> int:
        return self.crossbar.config.cols

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def write_matrix(
        self, matrix: np.ndarray, row_offset: int = 0, col_offset: int = 0
    ) -> TileOperationCost:
        """Program an operand tile into the crossbar.

        The data passes through the column buffers (write data) and the row
        buffers (row-enable mask), then each touched row is programmed.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        report: WriteReport = self.crossbar.write(matrix, row_offset, col_offset)
        model = self.energy_model
        # Buffer traffic: one byte per 8-bit cell staged, one mask byte per row.
        staged_bytes = report.cells_targeted + report.rows_touched
        self._stage_buffer_traffic(self.column_buffer, report.cells_targeted)
        self._stage_buffer_traffic(self.row_buffer, report.rows_touched)
        energy = (
            report.cells_changed * model.write_energy_per_cell_j
            + staged_bytes * model.buffer_energy_per_byte_j
        )
        latency = report.rows_touched * model.write_latency_per_row_s
        self.energy.add("cim.crossbar_write", report.cells_changed * model.write_energy_per_cell_j)
        self.energy.add("cim.buffers", staged_bytes * model.buffer_energy_per_byte_j)
        self.counters.add("cim.cell_writes", report.cells_changed)
        self.counters.add("cim.rows_written", report.rows_touched)
        self.counters.add("cim.crossbar_write_ops", 1)
        return TileOperationCost(energy, latency)

    def gemv(
        self,
        x: np.ndarray,
        rows_active: Optional[int] = None,
        cols_active: Optional[int] = None,
    ) -> tuple[np.ndarray, TileOperationCost]:
        """One analog matrix-vector product over the active sub-array."""
        x = np.asarray(x, dtype=np.float64).ravel()
        result, cost = self.gemv_batch(x[np.newaxis, :], rows_active, cols_active)
        return result[0], cost

    def gemv_batch(
        self,
        x: np.ndarray,
        rows_active: Optional[int] = None,
        cols_active: Optional[int] = None,
    ) -> tuple[np.ndarray, TileOperationCost]:
        """A batch of analog GEMVs over the same programmed operand.

        ``x`` holds the input vectors as rows.  Energy, latency, buffer
        traffic and counter totals equal those of the per-vector
        :meth:`gemv` calls; only the dispatch is batched.
        """
        x = np.asarray(x, dtype=np.float64)
        result, report = self.crossbar.gemv_batch(x, rows_active, cols_active)
        n_vectors = report.gemv_count
        model = self.energy_model
        input_bytes = n_vectors * report.rows_active
        output_bytes = n_vectors * report.cols_active * 4
        self._stage_buffer_traffic(self.row_buffer, input_bytes)
        self._stage_buffer_traffic(self.output_buffer, output_bytes)
        buffer_bytes = input_bytes + output_bytes
        energy = (
            report.macs * model.compute_energy_per_mac_j
            + n_vectors * model.mixed_signal_energy_per_gemv_j
            + n_vectors * model.digital_weighted_sum_per_gemv_j
            + buffer_bytes * model.buffer_energy_per_byte_j
        )
        latency = n_vectors * model.compute_latency_per_gemv_s
        self.energy.add("cim.crossbar_compute", report.macs * model.compute_energy_per_mac_j)
        self.energy.add("cim.mixed_signal", n_vectors * model.mixed_signal_energy_per_gemv_j)
        self.energy.add("cim.digital_logic", n_vectors * model.digital_weighted_sum_per_gemv_j)
        self.energy.add("cim.buffers", buffer_bytes * model.buffer_energy_per_byte_j)
        self.counters.add("cim.gemv_ops", n_vectors)
        self.counters.add("cim.macs", report.macs)
        return result, TileOperationCost(energy, latency)

    def digital_ops(self, n_ops: int) -> TileOperationCost:
        """Charge extra scalar ALU work done in the digital logic block."""
        energy = n_ops * self.energy_model.digital_alu_op_j
        self.energy.add("cim.digital_logic", energy)
        self.counters.add("cim.alu_ops", n_ops)
        # The digital block runs at the accelerator clock; its latency is
        # hidden behind the crossbar compute in practice.
        return TileOperationCost(energy, 0.0)

    # ------------------------------------------------------------------
    def _stage_buffer_traffic(self, buffer: SRAMBuffer, n_bytes: int) -> None:
        """Account buffer byte-traffic, wrapping at the buffer capacity.

        The buffers are much smaller than a full operand tile; the hardware
        streams data through them, so only the traffic (not the content) is
        modelled here.
        """
        remaining = n_bytes
        while remaining > 0:
            chunk = min(remaining, buffer.capacity_bytes)
            buffer.write(np.zeros(chunk, dtype=np.uint8))
            remaining -= chunk

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.crossbar.config.capacity_bytes

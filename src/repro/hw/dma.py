"""DMA engine: moves operand data between shared memory and the CIM tile.

The accelerator accesses the shared global memory exclusively through its
DMA unit with un-cacheable requests (Section II-E), which keeps it coherent
with the host without hardware snooping.  The model charges a per-byte
energy and a bandwidth-limited latency per transfer and keeps aggregate
counters for the evaluation layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.energy import CimEnergyModel


@dataclass
class DmaTransfer:
    """Description of one completed DMA transfer."""

    direction: str  # "mem_to_acc" or "acc_to_mem"
    address: int
    size_bytes: int
    duration_s: float
    energy_j: float


class DMAEngine:
    """Bandwidth- and energy-accounted shared-memory access."""

    def __init__(self, memory, energy_model: CimEnergyModel | None = None):
        """``memory`` is any object with ``read(addr, size)`` and
        ``write(addr, bytes)`` methods (see :class:`repro.system.memory`)."""
        self.memory = memory
        self.energy_model = energy_model or CimEnergyModel()
        self.transfers: list[DmaTransfer] = []
        self.total_bytes = 0
        self.total_energy_j = 0.0
        self.total_time_s = 0.0

    # ------------------------------------------------------------------
    def read(self, address: int, size_bytes: int) -> bytes:
        """Fetch *size_bytes* from shared memory into the accelerator."""
        payload = self.memory.read(address, size_bytes)
        self._account("mem_to_acc", address, size_bytes)
        return payload

    def write(self, address: int, payload: bytes | np.ndarray) -> int:
        """Store accelerator data back to shared memory."""
        data = bytes(np.asarray(payload, dtype=np.uint8).tobytes()) if isinstance(
            payload, np.ndarray
        ) else bytes(payload)
        self.memory.write(address, data)
        self._account("acc_to_mem", address, len(data))
        return len(data)

    def read_array(self, address: int, count: int, dtype=np.float32) -> np.ndarray:
        """Read a typed array from shared memory."""
        dtype = np.dtype(dtype)
        raw = self.read(address, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def write_array(self, address: int, array: np.ndarray) -> int:
        return self.write(address, np.ascontiguousarray(array).view(np.uint8).ravel())

    # ------------------------------------------------------------------
    def _account(self, direction: str, address: int, size_bytes: int) -> None:
        energy = size_bytes * self.energy_model.dma_energy_per_byte_j
        duration = size_bytes / self.energy_model.dma_bandwidth_bytes_per_s
        self.transfers.append(
            DmaTransfer(direction, address, size_bytes, duration, energy)
        )
        self.total_bytes += size_bytes
        self.total_energy_j += energy
        self.total_time_s += duration

    def reset_stats(self) -> None:
        self.transfers.clear()
        self.total_bytes = 0
        self.total_energy_j = 0.0
        self.total_time_s = 0.0

"""Phase-change-memory device model.

A PCM device stores information in the resistance of a chalcogenide volume
(Figure 1 of the paper): a *reset* pulse melts and quenches the material into
a high-resistance amorphous state, a *set* pulse recrystallises it into a
low-resistance state, and intermediate partial-crystallisation levels encode
multi-bit values.  Reads use a low-amplitude pulse that does not disturb the
state.

The array model tracks, per device:

* the programmed level (``0 .. 2**bits - 1``),
* the cumulative number of *program* operations (endurance wear),

and converts levels to conductances for the analog MVM model.  Programming
pulses only count as wear when the level actually changes (program-and-verify
skips redundant writes), which is also how the endurance benchmarks interpret
"writes".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PCMDeviceParams:
    """Physical parameters of one PCM device."""

    bits: int = 4
    # Conductance range in siemens (typical for IBM doped-GST devices).
    g_min: float = 0.1e-6
    g_max: float = 20.0e-6
    # Programming pulse characteristics (informational; latency/energy are
    # accounted at the crossbar level from Table I).
    set_pulse_ns: float = 1000.0
    reset_pulse_ns: float = 50.0
    read_pulse_ns: float = 10.0
    # Nominal endurance in programming cycles (the paper quotes 1e6 - 1e8).
    endurance_cycles: float = 1e7

    @property
    def levels(self) -> int:
        return 1 << self.bits

    def level_to_conductance(self, level: np.ndarray | int) -> np.ndarray | float:
        """Map a programmed level to a device conductance (linear spacing)."""
        fraction = np.asarray(level, dtype=np.float64) / (self.levels - 1)
        return self.g_min + fraction * (self.g_max - self.g_min)

    def conductance_to_level(self, conductance: np.ndarray | float) -> np.ndarray:
        fraction = (np.asarray(conductance, dtype=np.float64) - self.g_min) / (
            self.g_max - self.g_min
        )
        levels = np.rint(np.clip(fraction, 0.0, 1.0) * (self.levels - 1))
        return levels.astype(np.int64)


class PCMCellArray:
    """A 2-D array of PCM devices with wear tracking."""

    def __init__(self, rows: int, cols: int, params: PCMDeviceParams | None = None):
        if rows <= 0 or cols <= 0:
            raise ValueError("PCM array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.params = params or PCMDeviceParams()
        self.levels = np.zeros((rows, cols), dtype=np.int64)
        self.write_counts = np.zeros((rows, cols), dtype=np.int64)
        self.total_program_ops = 0

    # ------------------------------------------------------------------
    # Programming and reading
    # ------------------------------------------------------------------
    def program(
        self,
        values: np.ndarray,
        row_offset: int = 0,
        col_offset: int = 0,
        count_unchanged: bool = False,
    ) -> int:
        """Program a block of devices to the given levels.

        Returns the number of devices whose state actually changed (the wear
        increment).  ``count_unchanged`` forces every targeted device to be
        counted, modelling a controller without program-and-verify.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 2:
            raise ValueError("program() expects a 2-D block of levels")
        max_level = self.params.levels - 1
        if values.min() < 0 or values.max() > max_level:
            raise ValueError(
                f"levels out of range 0..{max_level}: "
                f"[{values.min()}, {values.max()}]"
            )
        r0, c0 = row_offset, col_offset
        r1, c1 = r0 + values.shape[0], c0 + values.shape[1]
        if r1 > self.rows or c1 > self.cols or r0 < 0 or c0 < 0:
            raise ValueError("programmed block exceeds array bounds")
        target = self.levels[r0:r1, c0:c1]
        changed = target != values
        if count_unchanged:
            changed = np.ones_like(changed, dtype=bool)
        self.write_counts[r0:r1, c0:c1] += changed
        n_changed = int(changed.sum())
        self.total_program_ops += n_changed
        self.levels[r0:r1, c0:c1] = values
        return n_changed

    def read(self, row_offset: int = 0, col_offset: int = 0,
             rows: int | None = None, cols: int | None = None) -> np.ndarray:
        """Read back programmed levels (non-destructive)."""
        rows = self.rows - row_offset if rows is None else rows
        cols = self.cols - col_offset if cols is None else cols
        return self.levels[
            row_offset : row_offset + rows, col_offset : col_offset + cols
        ].copy()

    def conductances(self) -> np.ndarray:
        """Conductance matrix of the whole array (siemens)."""
        return self.params.level_to_conductance(self.levels)

    # ------------------------------------------------------------------
    # Wear statistics
    # ------------------------------------------------------------------
    @property
    def max_cell_writes(self) -> int:
        return int(self.write_counts.max(initial=0))

    @property
    def mean_cell_writes(self) -> float:
        return float(self.write_counts.mean()) if self.write_counts.size else 0.0

    def worn_out_fraction(self, endurance_cycles: float | None = None) -> float:
        """Fraction of devices past their endurance limit."""
        limit = endurance_cycles or self.params.endurance_cycles
        if self.write_counts.size == 0:
            return 0.0
        return float((self.write_counts >= limit).mean())

    def reset_wear(self) -> None:
        self.write_counts[:] = 0
        self.total_program_ops = 0

"""Memristive crossbar model: analog matrix-vector multiplication.

The crossbar stores a matrix as device conductances and computes, in one
step, the dot product of an input voltage vector with every column
(Figure 2 (c) of the paper: ``I = v . G``).  A logical 8-bit cell is realised
with two adjacent 4-bit PCM devices — one column of most-significant nibbles
and one of least-significant nibbles — whose partial results the digital
logic recombines with a weighted sum.

Two numeric modes are supported:

* ``ideal`` — operands are kept at full floating-point precision.  Wear,
  energy and latency are still accounted as if the values had been
  programmed at 8-bit resolution.  Integration tests use this mode so the
  offloaded program matches the host reference to floating-point rounding
  (batched GEMV dispatch maps to one BLAS matmul, which may round a few
  ULPs differently from per-vector products; disable
  ``SystemConfig.batch_gemv`` for the exact sequential dispatch).
* ``quantized`` — operands are quantised to signed 8-bit fixed point (with a
  per-write scale factor), split into 4-bit MSB/LSB device levels, multiplied
  in the "analog" domain, digitised by the shared ADC and recombined
  digitally.  This mode exposes the accuracy impact of the analog substrate
  and is exercised by dedicated tests and an ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hw.adc import ADCConfig, ADCStage
from repro.hw.digital_logic import DigitalLogic
from repro.hw.pcm import PCMCellArray, PCMDeviceParams


@dataclass(frozen=True)
class CrossbarConfig:
    """Geometry and numeric configuration of one crossbar."""

    rows: int = 256
    cols: int = 256
    cell_bits: int = 8
    device_bits: int = 4
    mode: str = "ideal"  # "ideal" or "quantized"
    pcm: PCMDeviceParams = field(default_factory=PCMDeviceParams)
    adc: ADCConfig = field(default_factory=ADCConfig)

    def __post_init__(self) -> None:
        if self.mode not in ("ideal", "quantized"):
            raise ValueError(f"unknown crossbar mode {self.mode!r}")
        if self.cell_bits % self.device_bits != 0:
            raise ValueError("cell_bits must be a multiple of device_bits")

    @property
    def devices_per_cell(self) -> int:
        return self.cell_bits // self.device_bits

    @property
    def capacity_bytes(self) -> int:
        return self.rows * self.cols * self.cell_bits // 8


@dataclass
class WriteReport:
    """Result of programming a block of the crossbar."""

    cells_targeted: int = 0
    cells_changed: int = 0
    rows_touched: int = 0


@dataclass
class GemvReport:
    """Result of one analog GEMV (or a batch of GEMVs)."""

    rows_active: int = 0
    cols_active: int = 0
    macs: int = 0
    adc_conversions: int = 0
    gemv_count: int = 1


class Crossbar:
    """One memristive crossbar with wear tracking and counters."""

    def __init__(self, config: Optional[CrossbarConfig] = None):
        self.config = config or CrossbarConfig()
        cfg = self.config
        # Physical devices: MSB plane and LSB plane (two 4-bit devices per
        # logical 8-bit cell, as adjacent columns in the real layout).
        self.msb_plane = PCMCellArray(cfg.rows, cfg.cols, cfg.pcm)
        self.lsb_plane = PCMCellArray(cfg.rows, cfg.cols, cfg.pcm)
        self.adc = ADCStage(cfg.adc)
        self.digital = DigitalLogic()
        # Full-precision shadow of the stored values (used in ideal mode and
        # for read-back checks in quantized mode).
        self._values = np.zeros((cfg.rows, cfg.cols), dtype=np.float64)
        self._scale = 1.0
        # Lifetime counters.
        self.total_cell_writes = 0
        self.total_gemvs = 0
        self.total_macs = 0
        self.total_rows_written = 0

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def write(
        self,
        matrix: np.ndarray,
        row_offset: int = 0,
        col_offset: int = 0,
    ) -> WriteReport:
        """Program a block of the crossbar with *matrix* (float values)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("crossbar write expects a 2-D matrix")
        rows, cols = matrix.shape
        cfg = self.config
        if row_offset + rows > cfg.rows or col_offset + cols > cfg.cols:
            raise ValueError(
                f"write of {rows}x{cols} at ({row_offset},{col_offset}) exceeds "
                f"crossbar {cfg.rows}x{cfg.cols}"
            )
        self._values[row_offset : row_offset + rows, col_offset : col_offset + cols] = (
            matrix
        )
        # Quantise to 8-bit signed levels for the physical planes; the scale
        # is shared across the whole crossbar (the micro-engine writes one
        # operand tile at a time, so this matches its usage).
        max_abs = float(np.max(np.abs(matrix))) if matrix.size else 0.0
        self._scale = max_abs / 127.0 if max_abs > 0 else 1.0
        quantised = np.rint(matrix / self._scale).astype(np.int64) if max_abs > 0 else (
            np.zeros_like(matrix, dtype=np.int64)
        )
        offset_levels = quantised + 128  # unsigned representation 0..255
        msb_levels = offset_levels >> cfg.device_bits
        lsb_levels = offset_levels & ((1 << cfg.device_bits) - 1)
        # Wear is counted per programming pulse (no program-and-verify skip):
        # the paper's endurance analysis counts every write issued to a cell.
        self.msb_plane.program(msb_levels, row_offset, col_offset, count_unchanged=True)
        self.lsb_plane.program(lsb_levels, row_offset, col_offset, count_unchanged=True)
        report = WriteReport(
            cells_targeted=rows * cols,
            cells_changed=rows * cols,  # logical 8-bit cells programmed
            rows_touched=rows,
        )
        self.total_cell_writes += report.cells_changed
        self.total_rows_written += rows
        return report

    def read_values(self) -> np.ndarray:
        """Full-precision read-back of the stored matrix (shadow copy)."""
        return self._values.copy()

    def stored_quantised(self) -> np.ndarray:
        """The values as represented by the physical 8-bit cells."""
        cfg = self.config
        levels = (
            self.msb_plane.levels.astype(np.int64) << cfg.device_bits
        ) | self.lsb_plane.levels.astype(np.int64)
        return (levels - 128) * self._scale

    # ------------------------------------------------------------------
    # Analog compute
    # ------------------------------------------------------------------
    def gemv(
        self,
        x: np.ndarray,
        rows_active: Optional[int] = None,
        cols_active: Optional[int] = None,
    ) -> tuple[np.ndarray, GemvReport]:
        """Compute ``y = x @ G`` over the active sub-array.

        ``x`` has one entry per active row; the result has one entry per
        active column.  In quantized mode the input vector is quantised to
        8 bits, the two device planes produce partial sums, and the digital
        logic recombines and de-quantises them.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        result, report = self.gemv_batch(x[np.newaxis, :], rows_active, cols_active)
        report.gemv_count = 1
        return result[0], report

    def gemv_batch(
        self,
        x: np.ndarray,
        rows_active: Optional[int] = None,
        cols_active: Optional[int] = None,
    ) -> tuple[np.ndarray, GemvReport]:
        """Compute ``Y = X @ G`` for a batch of input vectors in one step.

        ``x`` has shape ``(n_vectors, rows_active)``; the result has shape
        ``(n_vectors, cols_active)``.  This is the batch of per-vector
        :meth:`gemv` calls in one dispatch.  In ``quantized`` mode the
        per-vector input scale, the MSB/LSB device-plane partial products,
        the ADC and the digital recombination are applied vectorized across
        the whole batch; the device levels are small integers, so the
        float64 partial sums are exact and the batch is *bit-identical* to
        the sequential path.  In ``ideal`` mode one matmul replaces
        ``n_vectors`` vector products — BLAS may round the batched matmul
        differently from per-vector products, so results agree to within a
        few ULPs (not bitwise).  Wear, MAC, GEMV and ADC accounting matches
        ``n_vectors`` sequential calls exactly in both modes.
        """
        cfg = self.config
        rows_active = cfg.rows if rows_active is None else rows_active
        cols_active = cfg.cols if cols_active is None else cols_active
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("batched GEMV expects a 2-D input (vectors as rows)")
        n_vectors = x.shape[0]
        if x.shape[1] != rows_active:
            raise ValueError(
                f"input vector{'s have' if n_vectors != 1 else ' has'} "
                f"{x.shape[1]} entries, expected {rows_active}"
            )
        if rows_active > cfg.rows or cols_active > cfg.cols:
            raise ValueError("active region exceeds crossbar geometry")

        report = GemvReport(
            rows_active=rows_active,
            cols_active=cols_active,
            macs=n_vectors * rows_active * cols_active,
            adc_conversions=n_vectors
            * self.adc.conversion_rounds(cols_active)
            * cfg.adc.columns_per_adc,
            gemv_count=n_vectors,
        )
        self.total_gemvs += n_vectors
        self.total_macs += report.macs
        if n_vectors == 0:
            return np.zeros((0, cols_active)), report

        if cfg.mode == "ideal":
            values = self._values[:rows_active, :cols_active]
            if n_vectors == 1:
                # Keep the single-vector call on the historical dgemv path
                # so lone GEMVs stay bit-for-bit stable.
                result = (x[0] @ values)[np.newaxis, :]
            else:
                result = x @ values
            return result, report

        # Quantized mode, vectorized over the batch (one scale per vector).
        x_max = (
            np.max(np.abs(x), axis=1) if x.shape[1] else np.zeros(n_vectors)
        )
        x_scale = np.where(x_max > 0, x_max / 127.0, 1.0)
        xq_f = np.rint(x / x_scale[:, None])
        msb = self.msb_plane.levels[:rows_active, :cols_active].astype(np.float64)
        lsb = self.lsb_plane.levels[:rows_active, :cols_active].astype(np.float64)
        # Analog partial dot products (per device plane), then ADC.
        msb_partial = xq_f @ msb
        lsb_partial = xq_f @ lsb
        full_scale = 127.0 * (self.config.pcm.levels - 1) * rows_active
        msb_partial = self.adc.convert(msb_partial, full_scale)
        lsb_partial = self.adc.convert(lsb_partial, full_scale)
        combined = self.digital.weighted_column_sum(
            msb_partial, lsb_partial, cfg.device_bits
        )
        self.digital.weighted_sums += n_vectors - 1  # one per logical GEMV
        # Remove the +128 unsigned offset: subtract 128 * sum(xq) per column.
        offset_term = 128.0 * xq_f.sum(axis=1, keepdims=True)
        self.digital.alu_ops += n_vectors * cols_active
        combined = combined - offset_term
        # De-quantise.
        result = combined * self._scale * x_scale[:, None]
        return result, report

    # ------------------------------------------------------------------
    # Wear
    # ------------------------------------------------------------------
    @property
    def max_cell_writes(self) -> int:
        """Worst-case wear across both device planes (per logical cell)."""
        return max(self.msb_plane.max_cell_writes, self.lsb_plane.max_cell_writes)

    def write_counts(self) -> np.ndarray:
        """Per-logical-cell write counts (max over the two device planes)."""
        return np.maximum(self.msb_plane.write_counts, self.lsb_plane.write_counts)

"""Event timeline of an accelerator run (Figure 2 (d) of the paper).

The micro-engine records one :class:`TimelineEvent` per hardware phase —
filling buffers via DMA, programming and computing on a CIM tile,
accumulating in the digital logic, storing results — so examples and tests
can reconstruct the execution timeline and verify pipelining.

Component naming convention: the single-tile (seed) path records plain
component names (``"dma"``, ``"crossbar"``); the multi-tile scheduler
prefixes them with the tile lane (``"tile0.dma"``, ``"tile2.crossbar"``),
so per-lane busy time and overlap can be checked with :meth:`Timeline.
busy_time` / :meth:`Timeline.by_component`.  Events on *different*
components may overlap in time (that is the point of double buffering and
multi-tile sharding); events on one component never do.  The reported
accelerator latency of a run is the timeline :attr:`Timeline.makespan_s`,
not the sum of event durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class TimelineEvent:
    """One hardware activity interval."""

    component: str   # "dma", "crossbar", "digital", "micro_engine", "host"
    action: str      # "fill_buffer", "write_crossbar", "compute", ...
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class Timeline:
    """Ordered collection of :class:`TimelineEvent`."""

    def __init__(self) -> None:
        self.events: list[TimelineEvent] = []

    def record(
        self, component: str, action: str, start_s: float, duration_s: float
    ) -> TimelineEvent:
        if duration_s < 0:
            raise ValueError("event duration must be non-negative")
        event = TimelineEvent(component, action, start_s, duration_s)
        self.events.append(event)
        return event

    @property
    def makespan_s(self) -> float:
        """Total span from the first event start to the last event end."""
        if not self.events:
            return 0.0
        start = min(e.start_s for e in self.events)
        end = max(e.end_s for e in self.events)
        return end - start

    def busy_time(self, component: str) -> float:
        """Total busy time of one component (intervals may overlap others)."""
        return sum(e.duration_s for e in self.events if e.component == component)

    def by_component(self) -> dict[str, list[TimelineEvent]]:
        grouped: dict[str, list[TimelineEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.component, []).append(event)
        return grouped

    def extend(self, events: Iterable[TimelineEvent]) -> None:
        self.events.extend(events)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def render(self, width: int = 60) -> str:
        """ASCII rendering of the timeline (one row per component)."""
        if not self.events:
            return "(empty timeline)"
        makespan = self.makespan_s or 1.0
        origin = min(e.start_s for e in self.events)
        lines = []
        for component, events in sorted(self.by_component().items()):
            row = [" "] * width
            for event in events:
                begin = int((event.start_s - origin) / makespan * (width - 1))
                end = int((event.end_s - origin) / makespan * (width - 1))
                for pos in range(begin, max(begin + 1, end + 1)):
                    if 0 <= pos < width:
                        row[pos] = "#"
            lines.append(f"{component:>12} |{''.join(row)}|")
        return "\n".join(lines)

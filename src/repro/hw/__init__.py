"""Cycle-approximate model of the CIM accelerator (the paper's Gem5 model).

The accelerator is assembled exactly as Figure 2 of the paper describes:

* :mod:`repro.hw.pcm` — phase-change-memory cell arrays (conductance states,
  programming pulses, endurance wear).
* :mod:`repro.hw.crossbar` — a 256x256 crossbar of 4-bit PCM cells, paired
  per column into 8-bit effective cells, performing analog matrix-vector
  multiplication.
* :mod:`repro.hw.adc` — sample-and-hold plus shared ADC conversion stage.
* :mod:`repro.hw.buffers` — row/column/output SRAM buffers.
* :mod:`repro.hw.digital_logic` — MSB/LSB weighted sum and scalar reduction
  post-processing.
* :mod:`repro.hw.tile` — the CIM tile: crossbar + periphery.
* :mod:`repro.hw.microengine` — decomposes GEMM into GEMV sequences, manages
  double buffering, drives the tile.
* :mod:`repro.hw.scheduler` — multi-tile offload scheduler: shards operand
  blocks across ``num_tiles`` tile lanes with an async double-buffered
  DMA/compute pipeline (latency only; accounting is tile-count-invariant).
* :mod:`repro.hw.dma` — shared-memory DMA engine.
* :mod:`repro.hw.context_regs` — memory-mapped context/status registers.
* :mod:`repro.hw.accelerator` — the standalone accelerator (tile +
  micro-engine + DMA + registers).
* :mod:`repro.hw.energy` — the Table I energy/latency model.
* :mod:`repro.hw.endurance` — per-cell wear tracking and the system-lifetime
  model of Eq. (1).
"""

from repro.hw.stats import EnergyLedger, StatCounter
from repro.hw.energy import CimEnergyModel, HostEnergyModel, TABLE_I
from repro.hw.pcm import PCMCellArray, PCMDeviceParams
from repro.hw.crossbar import Crossbar, CrossbarConfig
from repro.hw.adc import ADCConfig, ADCStage
from repro.hw.buffers import SRAMBuffer
from repro.hw.digital_logic import DigitalLogic
from repro.hw.tile import CIMTile
from repro.hw.dma import DMAEngine
from repro.hw.context_regs import ContextRegisterFile, Register
from repro.hw.microengine import MicroEngine
from repro.hw.scheduler import ShardBlock, ShardWork, TileScheduler, plan_gemm_shards
from repro.hw.accelerator import AcceleratorConfig, CIMAccelerator
from repro.hw.endurance import EnduranceTracker, system_lifetime_years
from repro.hw.timeline import Timeline, TimelineEvent

__all__ = [
    "EnergyLedger",
    "StatCounter",
    "CimEnergyModel",
    "HostEnergyModel",
    "TABLE_I",
    "PCMCellArray",
    "PCMDeviceParams",
    "Crossbar",
    "CrossbarConfig",
    "ADCConfig",
    "ADCStage",
    "SRAMBuffer",
    "DigitalLogic",
    "CIMTile",
    "DMAEngine",
    "ContextRegisterFile",
    "Register",
    "MicroEngine",
    "ShardBlock",
    "ShardWork",
    "TileScheduler",
    "plan_gemm_shards",
    "AcceleratorConfig",
    "CIMAccelerator",
    "EnduranceTracker",
    "system_lifetime_years",
    "Timeline",
    "TimelineEvent",
]

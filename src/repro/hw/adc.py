"""Sample-and-hold and ADC conversion stage.

The crossbar's analog column currents are sampled by per-column sample-and-
hold circuits and digitised by ADCs shared across groups of columns (the
ISAAC-style organisation the paper cites).  The stage's energy is folded into
Table I's "mixed-signal circuit" figure (3.9 nJ per GEMV); this module models
the *numerical* effect (quantisation of the column currents) and the sharing
schedule (how many sequential conversion rounds one GEMV needs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ADCConfig:
    """Configuration of the shared ADC stage."""

    resolution_bits: int = 12
    columns_per_adc: int = 32  # sharing factor via sample-and-hold reuse
    conversion_time_s: float = 1e-9  # one conversion at 1.2 GHz-class clocking

    @property
    def levels(self) -> int:
        return 1 << self.resolution_bits


class ADCStage:
    """Quantises analog column outputs and reports conversion rounds."""

    def __init__(self, config: ADCConfig | None = None):
        self.config = config or ADCConfig()
        self.total_conversions = 0

    def conversion_rounds(self, n_columns: int) -> int:
        """Sequential conversion rounds needed to digitise *n_columns*."""
        per_round = max(1, self.config.columns_per_adc)
        return (n_columns + per_round - 1) // per_round

    def convert(self, analog_values: np.ndarray, full_scale: float) -> np.ndarray:
        """Quantise analog values to the ADC resolution.

        ``full_scale`` is the maximum representable magnitude; values are
        clipped to it, as a real converter would saturate.
        """
        values = np.asarray(analog_values, dtype=np.float64)
        self.total_conversions += values.size
        if full_scale <= 0:
            return np.zeros_like(values)
        levels = self.config.levels
        step = full_scale / levels
        clipped = np.clip(values, -full_scale, full_scale)
        quantised = np.rint(clipped / step) * step
        return quantised

"""Analytical host cost model.

Estimates the dynamic instruction count of running a loop-nest IR program on
the Arm-A7 host without executing it element by element, by multiplying
per-iteration operation counts with polyhedral trip counts.  This plays the
role of the Gem5 host profiling runs in the paper: it produces the dynamic
instruction count and runtime of the baseline (and of any code left on the
host after offloading), which Table I's 128 pJ/instruction converts to
energy.

The estimate assumes ``-O3``-style code generation on an in-order core:

* every floating-point operation, load, store, integer/address operation and
  branch retires one instruction;
* the accumulation target of a reduction (``C[i][j] += ...``) is promoted to
  a register across the innermost loop when its subscripts do not depend on
  that loop's induction variable (so its load/store is charged once per
  outer iteration, not once per innermost iteration);
* each loop iteration pays one increment and one compare-and-branch.

On small problem sizes the estimate is validated against the interpreter's
measured :class:`~repro.ir.interp.ExecutionTrace` (see the unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.hw.energy import HostEnergyModel
from repro.ir.expr import ArrayRef, BinOp, Expr, Max, Min, UnaryOp
from repro.ir.interp import ExecutionTrace, evaluate_expr
from repro.ir.program import Program
from repro.ir.stmt import Assign, Block, CallStmt, IfStmt, Loop, Stmt


@dataclass
class HostExecutionEstimate:
    """Instruction/energy/time estimate of host execution."""

    instructions: float = 0.0
    flops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    int_ops: float = 0.0
    branches: float = 0.0
    time_s: float = 0.0
    energy_j: float = 0.0

    def add(self, other: "HostExecutionEstimate") -> None:
        self.instructions += other.instructions
        self.flops += other.flops
        self.loads += other.loads
        self.stores += other.stores
        self.int_ops += other.int_ops
        self.branches += other.branches
        self.time_s += other.time_s
        self.energy_j += other.energy_j


@dataclass
class _StatementCost:
    """Per-execution operation counts of one statement."""

    flops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    int_ops: float = 0.0

    @property
    def instructions(self) -> float:
        return self.flops + self.loads + self.stores + self.int_ops


class HostCostModel:
    """Analytical instruction/energy/time estimation for the host."""

    #: Fixed instruction overhead of a (runtime library) call site.
    CALL_OVERHEAD_INSTRUCTIONS = 20

    def __init__(
        self,
        model: Optional[HostEnergyModel] = None,
        assume_register_promotion: bool = True,
    ):
        self.model = model or HostEnergyModel()
        self.assume_register_promotion = assume_register_promotion

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def estimate_program(
        self, program: Program, params: Mapping[str, int | float]
    ) -> HostExecutionEstimate:
        """Estimate host execution of *program* under a parameter binding.

        Only the host-executed parts are counted: runtime library calls are
        charged a fixed call overhead here, their actual work is accounted by
        the runtime/accelerator models.
        """
        estimate = HostExecutionEstimate()
        bindings = dict(params)
        self._estimate_block(program.body, bindings, 1.0, estimate, innermost_var=None)
        self._finalise(estimate)
        return estimate

    def estimate_trace(self, trace: ExecutionTrace) -> HostExecutionEstimate:
        """Convert interpreter-measured counts into an estimate."""
        estimate = HostExecutionEstimate(
            flops=float(trace.flops),
            loads=float(trace.loads),
            stores=float(trace.stores),
            int_ops=float(trace.int_ops),
            branches=float(trace.branches),
        )
        estimate.instructions = (
            estimate.flops
            + estimate.loads
            + estimate.stores
            + estimate.int_ops
            + estimate.branches
            + len(trace.runtime_calls) * self.CALL_OVERHEAD_INSTRUCTIONS
        )
        self._finalise(estimate)
        return estimate

    def instructions_to_energy(self, instructions: float) -> float:
        return self.model.instruction_energy(instructions)

    def instructions_to_time(self, instructions: float) -> float:
        return self.model.instruction_time(instructions)

    # ------------------------------------------------------------------
    # Recursive estimation
    # ------------------------------------------------------------------
    def _finalise(self, estimate: HostExecutionEstimate) -> None:
        estimate.time_s = self.model.instruction_time(estimate.instructions)
        estimate.energy_j = self.model.instruction_energy(estimate.instructions)

    def _estimate_block(
        self,
        block: Block,
        bindings: dict[str, int | float],
        multiplier: float,
        estimate: HostExecutionEstimate,
        innermost_var: Optional[str],
    ) -> None:
        for stmt in block.stmts:
            self._estimate_stmt(stmt, bindings, multiplier, estimate, innermost_var)

    def _estimate_stmt(
        self,
        stmt: Stmt,
        bindings: dict[str, int | float],
        multiplier: float,
        estimate: HostExecutionEstimate,
        innermost_var: Optional[str],
    ) -> None:
        if isinstance(stmt, Block):
            self._estimate_block(stmt, bindings, multiplier, estimate, innermost_var)
        elif isinstance(stmt, Loop):
            self._estimate_loop(stmt, bindings, multiplier, estimate)
        elif isinstance(stmt, Assign):
            cost = self._statement_cost(stmt, innermost_var)
            estimate.flops += cost.flops * multiplier
            estimate.loads += cost.loads * multiplier
            estimate.stores += cost.stores * multiplier
            estimate.int_ops += cost.int_ops * multiplier
            estimate.instructions += cost.instructions * multiplier
            # Register-promoted reduction targets still move through memory
            # once per surrounding iteration of the non-innermost loops; this
            # is handled in _estimate_loop via the promotion bookkeeping.
            if self.assume_register_promotion and self._promotable(stmt, innermost_var):
                pass
        elif isinstance(stmt, CallStmt):
            estimate.instructions += self.CALL_OVERHEAD_INSTRUCTIONS * multiplier
            estimate.int_ops += self.CALL_OVERHEAD_INSTRUCTIONS * multiplier
        elif isinstance(stmt, IfStmt):
            estimate.branches += multiplier
            estimate.instructions += multiplier
            # Both branches conservatively estimated at half weight.
            self._estimate_block(stmt.then_body, bindings, multiplier * 0.5, estimate,
                                 innermost_var)
            if stmt.else_body is not None:
                self._estimate_block(stmt.else_body, bindings, multiplier * 0.5,
                                     estimate, innermost_var)
        else:
            raise TypeError(f"cannot estimate cost of statement {stmt!r}")

    def _estimate_loop(
        self,
        loop: Loop,
        bindings: dict[str, int | float],
        multiplier: float,
        estimate: HostExecutionEstimate,
    ) -> None:
        trip = self._trip_count(loop, bindings)
        iterations = multiplier * trip
        # Loop control: one increment + one compare-and-branch per iteration.
        estimate.int_ops += iterations
        estimate.branches += iterations
        estimate.instructions += 2 * iterations
        inner_multiplier = iterations
        # Descend with this loop as the innermost candidate for promotion.
        self._estimate_block(
            loop.body, bindings, inner_multiplier, estimate, innermost_var=loop.var
        )
        # Register-promoted reduction targets: charge one load+store per
        # *entry* into the innermost loop (i.e. per outer iteration).
        if self.assume_register_promotion:
            for stmt in loop.body.stmts:
                if isinstance(stmt, Assign) and self._promotable(stmt, loop.var):
                    estimate.loads += multiplier
                    estimate.stores += multiplier
                    estimate.instructions += 2 * multiplier

    def _trip_count(self, loop: Loop, bindings: Mapping[str, int | float]) -> float:
        """Trip count of a loop; enumerates outer values only when bounds
        depend on enclosing loop variables (non-rectangular nests)."""
        try:
            lower = evaluate_expr(loop.lower, dict(bindings), {})
            upper = evaluate_expr(loop.upper, dict(bindings), {})
        except Exception as exc:  # bounds reference an unbound loop variable
            raise ValueError(
                f"cannot analytically bound loop over {loop.var!r}; "
                f"non-rectangular bounds need explicit binding: {exc}"
            ) from exc
        if upper <= lower:
            return 0.0
        return float((int(upper) - int(lower) + loop.step - 1) // loop.step)

    # ------------------------------------------------------------------
    # Per-statement costs
    # ------------------------------------------------------------------
    def _promotable(self, stmt: Assign, innermost_var: Optional[str]) -> bool:
        """True when the reduction target can live in a register across the
        innermost loop (its subscripts do not use that loop's variable)."""
        if innermost_var is None or stmt.reduction is None:
            return False
        if not isinstance(stmt.target, ArrayRef):
            return False
        used = set()
        for idx in stmt.target.indices:
            used |= idx.free_vars()
        return innermost_var not in used

    def _statement_cost(self, stmt: Assign, innermost_var: Optional[str]) -> _StatementCost:
        cost = _StatementCost()
        self._expr_cost(stmt.rhs, cost)
        promoted = self.assume_register_promotion and self._promotable(
            stmt, innermost_var
        )
        if isinstance(stmt.target, ArrayRef):
            if not promoted:
                cost.stores += 1
                cost.int_ops += max(0, len(stmt.target.indices) - 1) * 2
                if stmt.reduction is not None:
                    cost.loads += 1
            if stmt.reduction is not None:
                cost.flops += 1  # the accumulate itself
        else:
            if stmt.reduction is not None:
                cost.flops += 1
        return cost

    def _expr_cost(self, expr: Expr, cost: _StatementCost) -> None:
        for node in expr.walk():
            if isinstance(node, (BinOp, UnaryOp, Min, Max)):
                cost.flops += 1
            elif isinstance(node, ArrayRef):
                cost.loads += 1
                cost.int_ops += max(0, len(node.indices) - 1) * 2

"""Arm-A7-class host CPU model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.energy import HostEnergyModel


@dataclass
class ArmA7Core:
    """One in-order Arm Cortex-A7-like core.

    The core model is deliberately coarse: a fixed IPC at a fixed frequency
    with a fixed energy per instruction (Table I), which is exactly the
    granularity the paper's evaluation uses.
    """

    model: HostEnergyModel = field(default_factory=HostEnergyModel)
    retired_instructions: float = 0.0

    def execute(self, instructions: float) -> tuple[float, float]:
        """Retire *instructions*; returns (time_s, energy_j)."""
        if instructions < 0:
            raise ValueError("cannot execute a negative instruction count")
        self.retired_instructions += instructions
        return (
            self.model.instruction_time(instructions),
            self.model.instruction_energy(instructions),
        )

    @property
    def frequency_hz(self) -> float:
        return self.model.frequency_hz


@dataclass
class HostCPU:
    """The dual-core host.  PolyBench kernels are single-threaded, so the
    second core only matters for the system description (Table I)."""

    model: HostEnergyModel = field(default_factory=HostEnergyModel)
    cores: list[ArmA7Core] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.cores:
            self.cores = [ArmA7Core(self.model) for _ in range(self.model.cores)]

    @property
    def core0(self) -> ArmA7Core:
        return self.cores[0]

    def total_retired_instructions(self) -> float:
        return sum(core.retired_instructions for core in self.cores)

"""Set-associative cache model for host locality studies.

Table I folds cache energy into the 128 pJ/instruction figure, so the main
evaluation does not need a cache simulator; this model supports the
locality-oriented ablations (e.g. how tiling changes host-side miss rates)
and the driver's flush accounting tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    associativity: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError("cache size must be a multiple of line * associativity")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheModel:
    """LRU set-associative cache with optional next-level cache."""

    def __init__(self, config: CacheConfig | None = None, next_level: "CacheModel | None" = None):
        self.config = config or CacheConfig()
        self.next_level = next_level
        self.stats = CacheStats()
        # Per set: OrderedDict mapping tag -> dirty flag (LRU order).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.config.num_sets)
        ]

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return set_index, tag

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one byte address; returns True on hit."""
        self.stats.accesses += 1
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(tag)
            if is_write:
                cache_set[tag] = True
            return True
        self.stats.misses += 1
        if self.next_level is not None:
            self.next_level.access(address, is_write=False)
        if len(cache_set) >= self.config.associativity:
            _, dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        cache_set[tag] = is_write
        return False

    def flush_range(self, address: int, size: int) -> int:
        """Flush (invalidate + write back) every line overlapping the range.

        Returns the number of lines flushed — the quantity the driver charges
        cache-maintenance instructions for.
        """
        if size <= 0:
            return 0
        line_bytes = self.config.line_bytes
        first_line = address // line_bytes
        last_line = (address + size - 1) // line_bytes
        flushed = 0
        for line in range(first_line, last_line + 1):
            set_index = line % self.config.num_sets
            tag = line // self.config.num_sets
            cache_set = self._sets[set_index]
            if tag in cache_set:
                if cache_set.pop(tag):
                    self.stats.writebacks += 1
                flushed += 1
        return flushed

    def reset(self) -> None:
        self.stats = CacheStats()
        for cache_set in self._sets:
            cache_set.clear()


def default_host_hierarchy() -> CacheModel:
    """L1 (32 KB, 4-way) backed by L2 (2 MB, 8-way) as in Table I."""
    l2 = CacheModel(CacheConfig(size_bytes=2 * 1024 * 1024, associativity=8))
    return CacheModel(CacheConfig(size_bytes=32 * 1024, associativity=4), next_level=l2)

"""Host (dual-core Arm-A7) performance and energy model.

The paper profiles the host baseline with Gem5 full-system simulation and
charges 128 pJ per instruction (cache included).  Here the host is modelled
analytically: the cost model walks a program's loop nests, derives dynamic
instruction counts from per-statement operation counts times polyhedral trip
counts, and converts them to time and energy.  A small cache model is
provided for locality studies (an ablation; it does not feed the main
figures, whose per-instruction energy already includes the cache).
"""

from repro.host.cpu import ArmA7Core, HostCPU
from repro.host.cache import CacheConfig, CacheModel, CacheStats
from repro.host.cost_model import HostCostModel, HostExecutionEstimate

__all__ = [
    "ArmA7Core",
    "HostCPU",
    "CacheConfig",
    "CacheModel",
    "CacheStats",
    "HostCostModel",
    "HostExecutionEstimate",
]

"""System bus connecting host, main memory and the CIM accelerator.

The bus routes port-mapped IO accesses from the host to the accelerator's
context registers and counts transactions.  Data traffic between the
accelerator and memory flows through the accelerator's DMA engine (which
talks to :class:`~repro.system.memory.SharedMemory` directly); the bus only
models the control path, as in the paper's Gem5 configuration where the
accelerator sits on the system crossbar as a DMA-capable device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.context_regs import Register


@dataclass
class PmioWindow:
    """A port-mapped IO window claimed by a device."""

    name: str
    base: int
    size: int
    device: object  # must expose mmio_read / mmio_write

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size


class BusError(RuntimeError):
    """Access to an unmapped PMIO address."""


class SystemBus:
    """Routes PMIO accesses and keeps transaction statistics."""

    #: Default base address of the CIM accelerator's register window.
    CIM_PMIO_BASE = 0x4000_0000
    #: One 64-bit word per register.
    REGISTER_STRIDE = 8

    def __init__(self) -> None:
        self.windows: list[PmioWindow] = []
        self.pmio_reads = 0
        self.pmio_writes = 0

    # ------------------------------------------------------------------
    def attach_accelerator(self, accelerator, base: int = CIM_PMIO_BASE) -> PmioWindow:
        """Map an accelerator's register file into the PMIO space."""
        size = len(Register) * self.REGISTER_STRIDE
        window = PmioWindow("cim", base, size, accelerator)
        self.windows.append(window)
        return window

    def _find_window(self, address: int) -> PmioWindow:
        for window in self.windows:
            if window.contains(address):
                return window
        raise BusError(f"no device mapped at PMIO address 0x{address:x}")

    # ------------------------------------------------------------------
    def pmio_read(self, address: int) -> int:
        window = self._find_window(address)
        register = (address - window.base) // self.REGISTER_STRIDE
        self.pmio_reads += 1
        return window.device.mmio_read(register)

    def pmio_write(self, address: int, value: int) -> None:
        window = self._find_window(address)
        register = (address - window.base) // self.REGISTER_STRIDE
        self.pmio_writes += 1
        window.device.mmio_write(register, value)

    def register_address(self, window: PmioWindow, register: Register) -> int:
        return window.base + int(register) * self.REGISTER_STRIDE

"""Simulated physical main memory with named regions.

The memory is byte-addressable and backed by a NumPy ``uint8`` array.  The
default layout reserves a CMA (contiguous memory allocator) region at the
top of the physical address space, matching how the paper's driver obtains
physically-contiguous buffers for the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MemoryRegion:
    """A named physical address range."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        return self.base <= address and address + size <= self.end


class MemoryAccessError(RuntimeError):
    """Out-of-range or misaligned physical memory access."""


class SharedMemory:
    """Byte-addressable simulated DRAM shared by host and accelerator."""

    def __init__(self, size_bytes: int = 64 * 1024 * 1024, cma_bytes: int = 32 * 1024 * 1024):
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        if cma_bytes > size_bytes:
            raise ValueError("CMA region cannot exceed total memory")
        self.size_bytes = size_bytes
        self._data = np.zeros(size_bytes, dtype=np.uint8)
        self.regions = {
            "system": MemoryRegion("system", 0, size_bytes - cma_bytes),
            "cma": MemoryRegion("cma", size_bytes - cma_bytes, cma_bytes),
        }
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    @property
    def cma_region(self) -> MemoryRegion:
        return self.regions["cma"]

    def _check(self, address: int, size: int) -> None:
        if address < 0 or size < 0 or address + size > self.size_bytes:
            raise MemoryAccessError(
                f"access of {size} B at 0x{address:x} outside memory of "
                f"{self.size_bytes} B"
            )

    # ------------------------------------------------------------------
    def read(self, address: int, size: int) -> bytes:
        self._check(address, size)
        self.reads += 1
        self.bytes_read += size
        return self._data[address : address + size].tobytes()

    def write(self, address: int, payload: bytes | bytearray | np.ndarray) -> int:
        if isinstance(payload, np.ndarray):
            payload = payload.astype(np.uint8, copy=False).tobytes()
        payload = bytes(payload)
        self._check(address, len(payload))
        self.writes += 1
        self.bytes_written += len(payload)
        self._data[address : address + len(payload)] = np.frombuffer(
            payload, dtype=np.uint8
        )
        return len(payload)

    # Typed helpers --------------------------------------------------------
    def read_array(self, address: int, count: int, dtype=np.float32) -> np.ndarray:
        dtype = np.dtype(dtype)
        raw = self.read(address, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def write_array(self, address: int, array: np.ndarray) -> int:
        contiguous = np.ascontiguousarray(array)
        return self.write(address, contiguous.view(np.uint8).ravel())

    def fill(self, address: int, size: int, value: int = 0) -> None:
        self._check(address, size)
        self._data[address : address + size] = value

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

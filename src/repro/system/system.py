"""Assembly of the full emulated platform.

:class:`CimSystem` wires together the shared memory, the system bus, the CIM
accelerator, the kernel driver, the user-space runtime and the host cost
model — the complete hardware/software stack of Figures 2 (a) and 3.  The
code generator's executor and the evaluation harness only ever talk to this
object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.driver.driver import CimDriver, HostOverheadLedger
from repro.host.cost_model import HostCostModel
from repro.host.cpu import HostCPU
from repro.hw.accelerator import CIMAccelerator
from repro.runtime.api import CimRuntime
from repro.runtime.blas import CimBlas
from repro.system.bus import SystemBus
from repro.system.config import SystemConfig
from repro.system.memory import SharedMemory


@dataclass
class SystemEnergySummary:
    """Energy roll-up of one simulated workload execution."""

    host_compute_j: float = 0.0     # host loop-nest execution
    host_offload_j: float = 0.0     # driver + copies + flushes + polling
    accelerator_j: float = 0.0      # everything inside the CIM accelerator
    host_compute_time_s: float = 0.0
    host_offload_time_s: float = 0.0
    accelerator_time_s: float = 0.0

    @property
    def total_j(self) -> float:
        return self.host_compute_j + self.host_offload_j + self.accelerator_j

    @property
    def total_time_s(self) -> float:
        return self.host_compute_time_s + self.host_offload_time_s + self.accelerator_time_s

    @property
    def edp(self) -> float:
        """Energy-delay product (J * s)."""
        return self.total_j * self.total_time_s


class CimSystem:
    """The emulated host + CIM accelerator platform."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig.paper_default()
        self.memory = SharedMemory(self.config.memory_bytes, self.config.cma_bytes)
        self.bus = SystemBus()
        self.accelerator = CIMAccelerator(
            self.memory,
            energy_model=self.config.cim,
            crossbar_config=self.config.crossbar_config(),
            config=self.config.accelerator_config(),
        )
        self.pmio_window = self.bus.attach_accelerator(self.accelerator)
        self.host_cpu = HostCPU(self.config.host)
        self.host_overhead = HostOverheadLedger(self.config.host)
        self.driver = CimDriver(
            self.accelerator,
            self.memory,
            host_model=self.config.host,
            overhead=self.host_overhead,
        )
        self.runtime = CimRuntime(self.driver)
        self.blas = CimBlas(self.runtime)
        self.host_cost_model = HostCostModel(self.config.host)

    # ------------------------------------------------------------------
    def energy_summary(
        self, host_compute_j: float = 0.0, host_compute_time_s: float = 0.0
    ) -> SystemEnergySummary:
        """Roll up the energy spent since the last :meth:`reset_stats`.

        ``host_compute_j``/``host_compute_time_s`` are the analytical host
        costs of the loop nests that stayed on the host (computed by the
        caller, which knows which program ran).
        """
        return SystemEnergySummary(
            host_compute_j=host_compute_j,
            host_offload_j=self.host_overhead.energy_j,
            accelerator_j=self.accelerator.total_energy_j(),
            host_compute_time_s=host_compute_time_s,
            host_offload_time_s=self.host_overhead.time_s
            - self.accelerator.total_latency_s()
            if self.host_overhead.time_s > self.accelerator.total_latency_s()
            else 0.0,
            accelerator_time_s=self.accelerator.total_latency_s(),
        )

    def reset_stats(self) -> None:
        """Clear all accumulated statistics (buffers stay allocated)."""
        self.accelerator.reset_stats()
        self.host_overhead.reset()
        self.memory.reset_stats()

    # ------------------------------------------------------------------
    @property
    def crossbar(self):
        return self.accelerator.tile.crossbar

    def __repr__(self) -> str:
        cim = self.config.cim
        return (
            f"CimSystem(crossbar={cim.crossbar_rows}x{cim.crossbar_cols}@"
            f"{cim.cell_bits}b, mode={self.config.crossbar_mode}, "
            f"mem={self.config.memory_bytes >> 20} MiB)"
        )

"""System configuration presets (Table I plus simulation knobs)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.accelerator import AcceleratorConfig
from repro.hw.crossbar import CrossbarConfig
from repro.hw.energy import CimEnergyModel, HostEnergyModel, SystemEnergyModel, TABLE_I


@dataclass
class SystemConfig:
    """Everything needed to assemble a :class:`~repro.system.system.CimSystem`.

    The defaults reproduce the paper's Table I configuration with an
    ``ideal``-precision crossbar (bit-exact results); switch
    ``crossbar_mode`` to ``"quantized"`` to study the analog precision.
    """

    memory_bytes: int = 64 * 1024 * 1024
    cma_bytes: int = 48 * 1024 * 1024
    crossbar_mode: str = "ideal"
    #: Number of CIM tiles the offload scheduler shards kernels over.  The
    #: default (1) reproduces the paper's single-tile accelerator exactly;
    #: more tiles overlap operand-block DMA and compute on parallel lanes
    #: (latency only — energy/wear accounting is tile-count-invariant).
    num_tiles: int = 1
    #: Crossbar geometry overrides (``None`` keeps the Table I geometry of
    #: the energy model).  Useful for sharding studies on small operands.
    crossbar_rows: Optional[int] = None
    crossbar_cols: Optional[int] = None
    double_buffering: bool = True
    #: Dispatch the GEMVs streaming against one programmed tile as a single
    #: batched tile operation (simulation speed only; accounting identical).
    batch_gemv: bool = True
    #: Keep a programmed operand resident in the crossbar across separate
    #: GEMV invocations against the same matrix (no re-programming wear).
    reuse_resident_gemv: bool = True
    energy: SystemEnergyModel = field(default_factory=lambda: TABLE_I)

    @property
    def cim(self) -> CimEnergyModel:
        return self.energy.cim

    @property
    def host(self) -> HostEnergyModel:
        return self.energy.host

    def crossbar_config(self) -> CrossbarConfig:
        for name, value in (("crossbar_rows", self.crossbar_rows),
                            ("crossbar_cols", self.crossbar_cols)):
            if value is not None and value < 1:
                raise ValueError(f"{name} override must be >= 1, got {value}")
        return CrossbarConfig(
            rows=self.crossbar_rows if self.crossbar_rows is not None
            else self.cim.crossbar_rows,
            cols=self.crossbar_cols if self.crossbar_cols is not None
            else self.cim.crossbar_cols,
            cell_bits=self.cim.cell_bits,
            device_bits=self.cim.device_bits,
            mode=self.crossbar_mode,
        )

    def accelerator_config(self) -> AcceleratorConfig:
        return AcceleratorConfig(
            num_tiles=self.num_tiles,
            double_buffering=self.double_buffering,
            batch_gemv=self.batch_gemv,
            reuse_resident_gemv=self.reuse_resident_gemv,
        )

    @staticmethod
    def paper_default() -> "SystemConfig":
        """The configuration used for the paper's evaluation."""
        return SystemConfig()

    @staticmethod
    def quantized() -> "SystemConfig":
        """Same system with the analog 8-bit quantisation enabled."""
        return SystemConfig(crossbar_mode="quantized")

"""Full-system integration: shared memory, system bus, and configuration.

This package corresponds to the paper's emulated platform (Figure 2 (a)): a
host, main memory, and the CIM accelerator connected through a system bus,
with the software stack of Figure 3 layered on top.  :class:`CimSystem`
assembles everything and is the single entry point the code generator's
executor and the evaluation harness use.

:class:`SystemConfig` carries the Table I hardware parameters plus the
simulation knobs: ``num_tiles`` (multi-tile offload sharding, default 1),
``crossbar_rows``/``crossbar_cols`` geometry overrides, ``double_buffering``
(DMA/compute pipelining), and the ``batch_gemv``/``reuse_resident_gemv``
dispatch flags.
"""

from repro.system.memory import SharedMemory, MemoryRegion
from repro.system.bus import SystemBus
from repro.system.config import SystemConfig
from repro.system.system import CimSystem

__all__ = ["SharedMemory", "MemoryRegion", "SystemBus", "SystemConfig", "CimSystem"]

"""Deterministic, replayable device-fault injection.

A :class:`FaultPlan` scripts every failure the fleet will suffer, in
simulated time, from three primitives:

* :class:`DeviceKill` — the device dies at ``at_s`` (simulated seconds).
  If it is mid-lease when its clock crosses the kill time, the in-flight
  attempt's work is lost (compensated, never billed) and the rest of the
  lease migrates; idle devices die quietly.  Death is permanent: the
  device is quarantined, drained and never placed again.
* :class:`CapacityDegrade` — at ``at_s`` the device's usable crossbar
  capacity shrinks by ``factor`` (a flaky bank of PCM columns taken out
  of service).  Degradation changes scheduling only — lease sizes shrink
  and placement deprioritises the device — never computed values.
* :class:`OpFaultRule` — transient, probabilistic faults of individual
  operation classes (``"dma"``, ``"compile"``, ``"dispatch"``), drawn
  from one seeded RNG.  A faulted operation costs the request one
  attempt; the fleet retries it with capped exponential backoff.

Everything is driven by the :class:`~repro.serve.clock.VirtualClock` and
one ``random.Random(seed)``: for a fixed submission trace the same plan
injects byte-identical fault sequences on every run, which is what makes
the differential fault test (fault-free vs faulted run of the same trace)
possible.  :meth:`FaultPlan.fresh` returns an unused copy of the plan so
one description can drive many runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DeviceKill:
    """Permanent device death at ``at_s`` (simulated seconds)."""

    device_id: int
    at_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("kill time cannot be negative")


@dataclass(frozen=True)
class CapacityDegrade:
    """At ``at_s`` the device retains ``factor`` of its lease capacity."""

    device_id: int
    at_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("degrade time cannot be negative")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("capacity factor must be in (0, 1]")


@dataclass(frozen=True)
class OpFaultRule:
    """Transient fault source for one operation class.

    ``probability`` is the per-check fault chance drawn from the plan's
    seeded RNG; ``device_id=None`` matches every device; ``max_faults``
    caps how many faults the rule may inject in total (``None`` =
    unlimited).
    """

    op: str                           # "dma" | "compile" | "dispatch"
    probability: float
    device_id: Optional[int] = None
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in ("dma", "compile", "dispatch"):
            raise ValueError(f"unknown op class {self.op!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if self.max_faults is not None and self.max_faults < 1:
            raise ValueError("max_faults must be >= 1 when given")


class FaultPlan:
    """One scripted, seeded fault scenario for a fleet run.

    The plan is consumed by a single :class:`~repro.fleet.server.
    FleetServer` run (RNG state and per-rule counters advance as faults
    are drawn); build a fresh copy with :meth:`fresh` to replay the same
    scenario.  At most one kill per device is allowed — death is
    permanent, a second kill could never fire.
    """

    def __init__(
        self,
        kills: tuple[DeviceKill, ...] | list[DeviceKill] = (),
        degrades: tuple[CapacityDegrade, ...] | list[CapacityDegrade] = (),
        op_rules: tuple[OpFaultRule, ...] | list[OpFaultRule] = (),
        seed: int = 0,
    ):
        self.kills = tuple(kills)
        seen: set[int] = set()
        for kill in self.kills:
            if kill.device_id in seen:
                raise ValueError(
                    f"device {kill.device_id} has more than one kill event"
                )
            seen.add(kill.device_id)
        self.degrades = tuple(sorted(degrades, key=lambda d: (d.at_s, d.device_id)))
        self.op_rules = tuple(op_rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self._rule_fault_counts = [0] * len(self.op_rules)
        self._kill_times = {kill.device_id: kill.at_s for kill in self.kills}

    # ------------------------------------------------------------------
    def fresh(self) -> "FaultPlan":
        """An unused copy of this plan (same scenario, reset RNG/counters)."""
        return FaultPlan(
            kills=self.kills,
            degrades=self.degrades,
            op_rules=self.op_rules,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    def kill_time(self, device_id: int) -> Optional[float]:
        return self._kill_times.get(device_id)

    def draw_op_fault(self, device_id: int, op: str) -> Optional[OpFaultRule]:
        """One seeded draw per matching rule; returns the first rule that
        fires, or ``None``.  Deterministic: for a fixed sequence of calls
        the same faults fire on every run."""
        fired: Optional[OpFaultRule] = None
        for index, rule in enumerate(self.op_rules):
            if rule.op != op:
                continue
            if rule.device_id is not None and rule.device_id != device_id:
                continue
            if (
                rule.max_faults is not None
                and self._rule_fault_counts[index] >= rule.max_faults
            ):
                continue
            # Always consume the draw, even after an earlier rule fired —
            # the RNG stream must not depend on which rule matched first.
            draw = self._rng.random()
            if fired is None and draw < rule.probability:
                self._rule_fault_counts[index] += 1
                fired = rule
        return fired

    @property
    def op_faults_drawn(self) -> int:
        return sum(self._rule_fault_counts)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(kills={len(self.kills)}, degrades={len(self.degrades)}, "
            f"op_rules={len(self.op_rules)}, seed={self.seed})"
        )

"""Fault-tolerant multi-device fleet tier (see :mod:`repro.fleet.server`)."""

from repro.fleet.device import DeviceState, FleetDevice
from repro.fleet.faults import CapacityDegrade, DeviceKill, FaultPlan, OpFaultRule
from repro.fleet.placement import (
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    WearAwarePlacement,
    make_placement,
)
from repro.fleet.server import FleetConfig, FleetServer

__all__ = [
    "CapacityDegrade",
    "DeviceKill",
    "DeviceState",
    "FaultPlan",
    "FleetConfig",
    "FleetDevice",
    "FleetServer",
    "LeastLoadedPlacement",
    "OpFaultRule",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "WearAwarePlacement",
    "make_placement",
]

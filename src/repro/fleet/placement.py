"""Lease placement policies for the fleet tier.

A placement policy picks which healthy device serves the next lease.
All policies are deterministic (ties break on device id) so fleet runs
replay exactly.

* :class:`RoundRobinPlacement` — classic rotation; ignores device state
  entirely.  The baseline the benchmark measures against.
* :class:`LeastLoadedPlacement` — the device whose simulated clock is
  furthest behind (shortest queue of committed work) wins; maximises
  parallelism, ignores wear.
* :class:`WearAwarePlacement` — orders devices by *effective* accumulated
  crossbar wear (wear divided by remaining capacity factor, so degraded
  devices age faster in the ranking), then by load.  Because Eq. 1 fleet
  lifetime is the lifetime of the **most-worn** device, levelling wear
  across a heterogeneous fleet directly extends the fleet's implied
  lifetime — the effect ``benchmarks/bench_fleet_failover.py`` measures.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.fleet.device import FleetDevice


class PlacementPolicy(Protocol):
    """Strategy interface: pick one device from the healthy set."""

    name: str

    def choose(self, devices: Sequence[FleetDevice], now_s: float) -> FleetDevice:
        ...


def _require_devices(devices: Sequence[FleetDevice]) -> None:
    if not devices:
        raise ValueError("placement called with no healthy devices")


class RoundRobinPlacement:
    """Rotate through healthy devices in id order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, devices: Sequence[FleetDevice], now_s: float) -> FleetDevice:
        _require_devices(devices)
        ordered = sorted(devices, key=lambda d: d.device_id)
        device = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return device


class LeastLoadedPlacement:
    """Send the lease to the device that will start it soonest."""

    name = "least-loaded"

    def choose(self, devices: Sequence[FleetDevice], now_s: float) -> FleetDevice:
        _require_devices(devices)
        # A device can start the lease at max(now, its own clock); less
        # committed work first, id breaks ties.
        return min(
            devices,
            key=lambda d: (max(now_s, d.clock.now_s), d.busy_s, d.device_id),
        )


class WearAwarePlacement:
    """Level accumulated crossbar wear across the fleet.

    Primary key: effective wear (total programmed bytes scaled by the
    inverse capacity factor — a degraded device has fewer healthy cells
    absorbing the same writes).  Secondary: pending load, so the policy
    degenerates to least-loaded among equally-worn devices rather than
    serialising on one of them.
    """

    name = "wear-aware"

    def choose(self, devices: Sequence[FleetDevice], now_s: float) -> FleetDevice:
        _require_devices(devices)
        return min(
            devices,
            key=lambda d: (
                d.total_wear_bytes / d.capacity_factor,
                max(now_s, d.clock.now_s),
                d.device_id,
            ),
        )


_POLICIES = {
    RoundRobinPlacement.name: RoundRobinPlacement,
    LeastLoadedPlacement.name: LeastLoadedPlacement,
    WearAwarePlacement.name: WearAwarePlacement,
}


def make_placement(spec: "str | PlacementPolicy") -> PlacementPolicy:
    """Resolve a policy name (``"wear-aware"`` etc.) or pass through an
    already-built policy object."""
    if isinstance(spec, str):
        try:
            return _POLICIES[spec]()
        except KeyError:
            raise ValueError(
                f"unknown placement policy {spec!r}; "
                f"choose from {sorted(_POLICIES)}"
            ) from None
    return spec


__all__ = [
    "PlacementPolicy",
    "RoundRobinPlacement",
    "LeastLoadedPlacement",
    "WearAwarePlacement",
    "make_placement",
]

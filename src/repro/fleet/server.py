"""Fault-tolerant multi-device fleet serving tier.

:class:`FleetServer` lifts the PR 4 single-device
:class:`~repro.serve.server.CimServer` to a fleet of N emulated CIM
devices behind one submission front door:

* **Parallel devices, one trace.**  Arrivals, admission and batching
  windows run on one global :class:`~repro.serve.clock.VirtualClock`;
  each :class:`~repro.fleet.device.FleetDevice` serves its leases on its
  *own* clock, so devices work in parallel simulated time and a lease
  queues behind the previous lease of its device only.
* **Wear-aware placement.**  Each formed batch is routed by a pluggable
  :mod:`~repro.fleet.placement` policy; the default levels accumulated
  crossbar wear (the Eq. 1 lifetime currency) across the fleet, because
  fleet lifetime is the lifetime of its most-worn device.
* **Deterministic fault injection.**  A seeded
  :class:`~repro.fleet.faults.FaultPlan` kills devices at scripted
  simulated times (mid-lease or idle), injects transient DMA / compile /
  dispatch faults, and degrades lease capacity.  Same trace + same plan
  → byte-identical run.
* **Recovery.**  Transient faults retry with capped exponential backoff
  in simulated time; a dead device is quarantined, its in-flight lease
  migrates to healthy devices, and admission tightens per-tenant queue
  bounds in proportion to surviving capacity (graceful degradation).
  Requests that fault on every allowed attempt fail with a
  :class:`~repro.serve.errors.RetryExhausted` reason.
* **Exactly-once accounting.**  Work a device performed for an attempt
  that died before its response was released is *compensated*
  (:class:`~repro.serve.accounting.FaultCompensation`): the device's
  physical ledgers still partition exactly across tenants + faults +
  housekeeping (:meth:`verify_fleet_partition`), no tenant is billed for
  wear or energy that produced no response, and the responses themselves
  are bit-identical to a fault-free run of the same trace.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

import numpy as np

from repro.compiler.cache import KernelCompileCache, compile_fingerprint
from repro.compiler.driver import TdoCimCompiler
from repro.compiler.options import CompileOptions
from repro.fleet.device import DeviceState, FleetDevice
from repro.fleet.faults import FaultPlan
from repro.fleet.placement import PlacementPolicy, make_placement
from repro.hw.timeline import Timeline
from repro.ir.program import Program
from repro.serve.accounting import AccountingLedger
from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.batcher import DynamicBatcher, batch_signature
from repro.serve.clock import VirtualClock
from repro.serve.errors import DeviceFault, LeaseAborted, RetryExhausted, ServeError
from repro.serve.metrics import MetricsRegistry
from repro.serve.request import RequestHandle, RequestStatus, TenantRequest
from repro.system.config import SystemConfig


@dataclass
class FleetConfig:
    """Tuning knobs of one :class:`FleetServer`."""

    #: Fleet size (emulated devices).
    num_devices: int = 2
    #: CIM tiles per device (each device shards its leases over these).
    num_tiles: int = 1
    #: Simulated batching window (same semantics as the single server).
    batch_window_s: float = 100e-6
    #: Hard cap on requests per dispatch batch (per lease).
    max_batch_size: int = 16
    #: Admission defaults for tenants without an explicit quota.
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: Scrub crossbar residency between leases (tenant isolation).
    scrub_leases: bool = True
    #: Compiler options for ``submit`` calls that pass mini-C source.
    compile_options: CompileOptions = field(default_factory=CompileOptions)
    #: Optional crossbar geometry overrides (homogeneous across devices).
    crossbar_rows: Optional[int] = None
    crossbar_cols: Optional[int] = None
    crossbar_mode: str = "ideal"
    #: Lease routing policy: "wear-aware" (default), "round-robin",
    #: "least-loaded", or a PlacementPolicy instance.
    placement: Union[str, PlacementPolicy] = "wear-aware"
    #: Per-device pre-fleet wear (bytes), device id order; shorter tuples
    #: pad with 0 — models a heterogeneous-age fleet.
    initial_wear_bytes: tuple = ()
    #: Retry policy for transient faults: at most ``max_attempts``
    #: executions per request, backoff = min(base * 2^(attempt-1), max).
    max_attempts: int = 5
    retry_backoff_base_s: float = 50e-6
    retry_backoff_max_s: float = 800e-6
    #: Scripted fault scenario (consumed via ``fresh()``; None = fault-free).
    fault_plan: Optional[FaultPlan] = None
    #: Graceful degradation: shrink per-tenant queue bounds to the
    #: surviving fraction of the fleet as devices die.
    tighten_admission: bool = True

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("fleet needs at least one device")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.retry_backoff_base_s < 0 or self.retry_backoff_max_s < 0:
            raise ValueError("retry backoff times cannot be negative")
        if len(self.initial_wear_bytes) > self.num_devices:
            raise ValueError(
                f"initial_wear_bytes has {len(self.initial_wear_bytes)} "
                f"entries for {self.num_devices} devices"
            )


class FleetServer:
    """Serve offload requests from many tenants on a fleet of devices."""

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        compile_cache: Optional[KernelCompileCache] = None,
    ):
        self.config = config or FleetConfig()
        self.clock = VirtualClock()
        self.metrics = MetricsRegistry()
        self.timeline = Timeline()
        system_config = SystemConfig(
            num_tiles=self.config.num_tiles,
            crossbar_rows=self.config.crossbar_rows,
            crossbar_cols=self.config.crossbar_cols,
            crossbar_mode=self.config.crossbar_mode,
        )
        crossbar = system_config.crossbar_config()
        self.ledger = AccountingLedger(
            crossbar_size_bytes=crossbar.rows * crossbar.cols
        )
        self.admission = AdmissionController(
            self.ledger, self.config.default_quota
        )
        self.batcher = DynamicBatcher(
            window_s=self.config.batch_window_s,
            max_batch_size=self.config.max_batch_size,
        )
        self.compile_cache = compile_cache or KernelCompileCache()
        self.compiler = TdoCimCompiler(
            self.config.compile_options, cache=self.compile_cache
        )
        self.placement = make_placement(self.config.placement)
        self.fault_plan = (
            self.config.fault_plan.fresh()
            if self.config.fault_plan is not None
            else None
        )
        wear = self.config.initial_wear_bytes
        self.devices: list[FleetDevice] = []
        for device_id in range(self.config.num_devices):
            device = FleetDevice(
                device_id=device_id,
                system_config=SystemConfig(
                    num_tiles=self.config.num_tiles,
                    crossbar_rows=self.config.crossbar_rows,
                    crossbar_cols=self.config.crossbar_cols,
                    crossbar_mode=self.config.crossbar_mode,
                ),
                ledger=self.ledger,
                metrics=self.metrics,
                timeline=self.timeline,
                scrub_leases=self.config.scrub_leases,
                charge_service=self.admission.charge_service,
                fault_hook=self._make_fault_hook(device_id),
                initial_wear_bytes=(
                    wear[device_id] if device_id < len(wear) else 0
                ),
            )
            self.devices.append(device)
            self.metrics.observe_device_state(device_id, device.state.value)
        #: Programs already compiled/seen per device ("compile" faults
        #: only threaten a program's first landing on a device).
        self._programs_seen: dict[int, set] = {
            device.device_id: set() for device in self.devices
        }
        self._arrivals: deque[TenantRequest] = deque()
        #: Backoff queue: (ready_s, seq, request), promoted into the
        #: tenant queues once the global clock reaches ready_s.
        self._retry_heap: list[tuple[float, int, TenantRequest]] = []
        self._degrade_index = 0
        self._seq = 0
        self._batch_counter = 0
        self._last_arrival_s = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(self) -> None:
        """Release every device's runtime session.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for device in self.devices:
            device.shutdown()

    def __enter__(self) -> "FleetServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def _require_open(self) -> None:
        if self._closed:
            raise ServeError("fleet has been shut down")

    # ------------------------------------------------------------------
    # Tenant API (same contract as CimServer.submit)
    # ------------------------------------------------------------------
    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self.admission.set_quota(tenant, quota)

    def submit(
        self,
        tenant: str,
        kernel: Union[str, Program, object],
        params: Optional[Mapping[str, Union[int, float]]] = None,
        arrays: Optional[Mapping[str, np.ndarray]] = None,
        arrival_s: Optional[float] = None,
    ) -> RequestHandle:
        """Queue one offload request; returns its handle immediately."""
        self._require_open()
        if not tenant:
            raise ServeError("tenant name must be non-empty")
        params = {key: value for key, value in (params or {}).items()}
        earliest = max(self.clock.now_s, self._last_arrival_s)
        if arrival_s is None:
            arrival_s = earliest
        elif arrival_s < earliest:
            raise ServeError(
                f"arrival_s={arrival_s} is in the simulated past "
                f"(clock={self.clock.now_s}, last arrival={self._last_arrival_s})"
            )
        program, fingerprint, engine = self._resolve_kernel(kernel, params)
        snapshot = {
            name: np.array(value, copy=True)
            for name, value in (arrays or {}).items()
        }
        signature = batch_signature(fingerprint, program, params, snapshot)
        self._seq += 1
        handle = RequestHandle(
            request_id=self._seq, tenant=tenant, arrival_s=arrival_s
        )
        request = TenantRequest(
            seq=self._seq,
            tenant=tenant,
            signature=signature,
            program=program,
            params=params,
            arrays=snapshot,
            arrival_s=arrival_s,
            engine=engine,
            handle=handle,
        )
        self._arrivals.append(request)
        self._last_arrival_s = arrival_s
        self.metrics.observe_submit()
        return handle

    def _resolve_kernel(
        self, kernel: Union[str, Program, object], params: Mapping[str, float]
    ) -> tuple[Program, str, Optional[str]]:
        if hasattr(kernel, "program") and hasattr(kernel, "report"):
            program = kernel.program  # pre-compiled CompilationResult
            fingerprint = getattr(kernel, "cache_key", None) or compile_fingerprint(
                program, self.config.compile_options, params
            )
            options = getattr(kernel, "options", None)
            engine = options.engine if options is not None else None
            return program, fingerprint, engine
        hits0 = self.compile_cache.hits
        misses0 = self.compile_cache.misses
        result = self.compiler.compile(kernel, size_hint=params)
        self.metrics.observe_compile(
            self.compile_cache.hits - hits0, self.compile_cache.misses - misses0
        )
        fingerprint = result.cache_key or compile_fingerprint(
            kernel, self.config.compile_options, params
        )
        return result.program, fingerprint, self.config.compile_options.engine

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Advance the fleet by one event (one dispatched lease, or one
        clock hop to the next arrival / retry).  Returns ``False`` when
        every submitted request is resolved."""
        self._require_open()
        now_s = self.clock.now_s
        self._apply_device_events(now_s)
        self._promote_retries(now_s)
        self._pump_arrivals(now_s)
        if self.admission.total_queued == 0:
            candidates = []
            if self._arrivals:
                candidates.append(self._arrivals[0].arrival_s)
            if self._retry_heap:
                candidates.append(self._retry_heap[0][0])
            if not candidates:
                return False
            target_s = min(candidates)
            self.clock.advance_to(target_s)
            self._apply_device_events(target_s)
            self._promote_retries(target_s)
            self._pump_arrivals(target_s)
            if self.admission.total_queued == 0:
                return True  # everything at this instant was rejected
        healthy = self._healthy_devices()
        if not healthy:
            self._fail_stranded("no healthy devices left in the fleet")
            return True
        seed = self.admission.pick_seed()
        window_close_s = self.clock.now_s + self.batcher.window_s
        self._pump_arrivals(window_close_s)
        batch = self.batcher.form_batch(seed, self.admission.queued_requests())
        device = self.placement.choose(healthy, self.clock.now_s)
        # A degraded device leases fewer crossbar columns: shrink the
        # batch; the overflow stays queued for the next window.
        capacity = max(
            1, int(self.batcher.max_batch_size * device.capacity_factor)
        )
        if len(batch) > capacity:
            if seed in batch[:capacity]:
                batch = batch[:capacity]
            else:
                batch = batch[: capacity - 1] + [seed]
        self.admission.remove(batch)
        self.clock.advance_to(window_close_s)
        lease_start_s = max(self.clock.now_s, device.clock.now_s)
        device.clock.advance_to(lease_start_s)
        self._batch_counter += 1
        faulted = device.lease_executor.dispatch(batch, self._batch_counter)
        device.busy_s += device.clock.now_s - lease_start_s
        device.leases += 1
        self._handle_faults(batch, faulted, device)
        return True

    def drain(self) -> dict:
        """Run the event loop until every submitted request is resolved;
        returns a metrics snapshot (including the fleet health section)."""
        while self.step():
            pass
        return self.metrics.snapshot(self.admission.queue_depths())

    def _pump_arrivals(self, until_s: float) -> None:
        while self._arrivals and self._arrivals[0].arrival_s <= until_s:
            request = self._arrivals.popleft()
            admitted = self.admission.admit(request, now_s=request.arrival_s)
            self.metrics.observe_admission(admitted)
            if admitted:
                self.metrics.observe_queue_depths(self.admission.queue_depths())

    def _promote_retries(self, now_s: float) -> None:
        """Move backed-off requests whose retry time has come back into
        their tenant queues (quota-exempt: admission already granted)."""
        while self._retry_heap and self._retry_heap[0][0] <= now_s:
            _, _, request = heapq.heappop(self._retry_heap)
            self.admission.requeue(request)

    # ------------------------------------------------------------------
    # Fault machinery
    # ------------------------------------------------------------------
    def _healthy_devices(self) -> list[FleetDevice]:
        return [device for device in self.devices if device.healthy]

    def _make_fault_hook(self, device_id: int):
        def hook(stage: str, request: TenantRequest) -> None:
            self._inject_faults(stage, request, self.devices[device_id])

        return hook

    def _inject_faults(
        self, stage: str, request: TenantRequest, device: FleetDevice
    ) -> None:
        """LeaseExecutor fault hook: consult the plan on the device's own
        clock.  ``attempt`` faults lose no work; a kill surfacing at
        ``commit`` is the mid-attempt death — the work is measured, then
        compensated, and the response is discarded."""
        plan = self.fault_plan
        if plan is None:
            return
        kill_at_s = plan.kill_time(device.device_id)
        if kill_at_s is not None and device.clock.now_s >= kill_at_s:
            if device.state is DeviceState.UP:
                self._mark_device_dead(device)
            raise LeaseAborted(
                f"device {device.device_id} died at t={kill_at_s:.6g}s",
                device_id=device.device_id,
            )
        if stage != "attempt":
            return
        ops = ["dma", "dispatch"]
        if request.signature not in self._programs_seen[device.device_id]:
            ops.insert(0, "compile")
        for op in ops:
            rule = plan.draw_op_fault(device.device_id, op)
            if rule is not None:
                self.metrics.observe_fault(op)
                raise DeviceFault(
                    f"transient {op} fault on device {device.device_id} "
                    f"(attempt {request.handle.attempts} of request "
                    f"{request.seq})",
                    device_id=device.device_id,
                    op=op,
                )
        self._programs_seen[device.device_id].add(request.signature)

    def _mark_device_dead(self, device: FleetDevice) -> None:
        """Quarantine a dying device and tighten fleet-wide admission."""
        device.quarantine()
        self.metrics.observe_fault("device")
        self.metrics.observe_device_state(device.device_id, device.state.value)
        if self.config.tighten_admission:
            self.admission.depth_scale = len(self._healthy_devices()) / len(
                self.devices
            )

    def _apply_device_events(self, now_s: float) -> None:
        """Fire scripted kills (idle deaths) and capacity degradations
        whose simulated time has come."""
        if self.fault_plan is None:
            return
        for device in self.devices:
            if device.state is not DeviceState.UP:
                continue
            kill_at_s = self.fault_plan.kill_time(device.device_id)
            if kill_at_s is not None and kill_at_s <= now_s:
                self._mark_device_dead(device)
                device.drain()  # idle: nothing in flight to migrate
                self.metrics.observe_device_state(
                    device.device_id, device.state.value
                )
        degrades = self.fault_plan.degrades
        while self._degrade_index < len(degrades):
            event = degrades[self._degrade_index]
            if event.at_s > now_s:
                break
            self._degrade_index += 1
            if not 0 <= event.device_id < len(self.devices):
                continue
            device = self.devices[event.device_id]
            if device.state is DeviceState.UP:
                device.degrade(event.factor)
                self.metrics.observe_fault("degrade")

    def _handle_faults(
        self,
        batch: list[TenantRequest],
        faulted: list,
        device: FleetDevice,
    ) -> None:
        """Resolve the aftermath of a lease: retry transient faults with
        backoff, migrate requests stranded by a device death, fail
        requests that spent all their attempts, and finish draining a
        quarantined device."""
        for item in faulted:
            request, fault = item.request, item.fault
            handle = request.handle
            if fault.fatal:
                handle.migrations += 1
                self.metrics.observe_migration()
            if item.attempted and handle.attempts >= self.config.max_attempts:
                error = RetryExhausted(
                    f"request {request.seq} of tenant {request.tenant!r} "
                    f"faulted on all {handle.attempts} attempts "
                    f"(last fault: {fault})",
                    attempts=handle.attempts,
                    last_fault=fault,
                )
                handle.mark_failed(
                    completed_s=device.clock.now_s,
                    reason=f"RetryExhausted: {error}",
                    device_id=device.device_id,
                )
                self.metrics.observe_failure()
                self.metrics.observe_unrecovered()
                continue
            if item.attempted and not fault.fatal:
                backoff_s = min(
                    self.config.retry_backoff_base_s
                    * 2 ** (handle.attempts - 1),
                    self.config.retry_backoff_max_s,
                )
                heapq.heappush(
                    self._retry_heap,
                    (device.clock.now_s + backoff_s, request.seq, request),
                )
                self.metrics.observe_retry()
            else:
                # Device death: migrate now — stranded members retry on a
                # healthy device without consuming an attempt, the member
                # the death interrupted consumes one.
                if item.attempted:
                    self.metrics.observe_retry()
                self.admission.requeue(request)
        if device.state is DeviceState.QUARANTINED:
            device.drain()  # in-flight lease fully migrated above
            self.metrics.observe_device_state(
                device.device_id, device.state.value
            )
        for request in batch:
            handle = request.handle
            if handle.status is RequestStatus.COMPLETED and (
                handle.attempts > 1 or handle.migrations > 0
            ):
                self.metrics.observe_recovery()

    def _fail_stranded(self, reason: str) -> None:
        """The whole fleet is dead: resolve everything still in flight
        (queued, backed off, or yet to arrive) as FAILED."""
        stranded = self.admission.queued_requests()
        for tenant in self.admission.queues:
            self.admission.queues[tenant] = []
        while self._retry_heap:
            stranded.append(heapq.heappop(self._retry_heap)[2])
        while self._arrivals:
            stranded.append(self._arrivals.popleft())
        for request in stranded:
            handle = request.handle
            handle.mark_failed(
                completed_s=max(self.clock.now_s, request.arrival_s),
                reason=f"DeviceFault: {reason}",
            )
            self.metrics.observe_failure()
            if handle.attempts > 0 or handle.migrations > 0:
                self.metrics.observe_unrecovered()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def verify_fleet_partition(self) -> dict[str, bool]:
        """Exactly-once check across the whole fleet (see
        :meth:`~repro.serve.accounting.AccountingLedger.verify_fleet_partition`)."""
        return self.ledger.verify_fleet_partition(
            {device.device_id: device.system.accelerator for device in self.devices}
        )

    def device_states(self) -> dict[int, str]:
        return {device.device_id: device.state.value for device in self.devices}

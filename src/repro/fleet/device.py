"""One member of the emulated CIM fleet.

A :class:`FleetDevice` bundles everything one device needs to serve
leases on its own simulated timeline: a private
:class:`~repro.system.system.CimSystem` (accelerator + runtime + BLAS),
a private :class:`~repro.serve.clock.VirtualClock` (devices serve leases
in *parallel* simulated time — the fleet clock only tracks arrivals and
batching windows), and a :class:`~repro.serve.dispatch.LeaseExecutor`
wired to the fleet-shared ledger/metrics/timeline with this device's id.

The device also carries the state the placement policies and the fault
machinery read: lifecycle (:class:`DeviceState`), accumulated busy time,
capacity factor (shrunk by :class:`~repro.fleet.faults.CapacityDegrade`
events) and total crossbar wear.  ``initial_wear_bytes`` models a device
that joined the fleet already aged — heterogeneous fleets are where
wear-aware placement pays off (see ``benchmarks/bench_fleet_failover.py``).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.codegen.executor import OffloadExecutor
from repro.hw.timeline import Timeline
from repro.serve.accounting import AccountingLedger
from repro.serve.dispatch import FaultHook, LeaseExecutor
from repro.serve.clock import VirtualClock
from repro.serve.metrics import MetricsRegistry
from repro.system.config import SystemConfig
from repro.system.system import CimSystem


class DeviceState(enum.Enum):
    """Lifecycle of a fleet member."""

    #: Healthy: eligible for placement.
    UP = "up"
    #: Failed: no new leases; in-flight work is being migrated away.
    QUARANTINED = "quarantined"
    #: Failed and fully evacuated; terminal.
    DRAINED = "drained"


class FleetDevice:
    """One emulated CIM device inside a :class:`~repro.fleet.server.FleetServer`."""

    def __init__(
        self,
        device_id: int,
        system_config: SystemConfig,
        ledger: AccountingLedger,
        metrics: MetricsRegistry,
        timeline: Timeline,
        scrub_leases: bool = True,
        charge_service: Optional[Callable[[str, float], None]] = None,
        fault_hook: Optional[FaultHook] = None,
        initial_wear_bytes: int = 0,
    ):
        if initial_wear_bytes < 0:
            raise ValueError("initial_wear_bytes cannot be negative")
        self.device_id = device_id
        self.system = CimSystem(system_config)
        self.executor = OffloadExecutor(self.system)
        self.clock = VirtualClock()
        self.state = DeviceState.UP
        self.capacity_factor = 1.0
        self.initial_wear_bytes = initial_wear_bytes
        self.busy_s = 0.0
        self.leases = 0
        self.lease_executor = LeaseExecutor(
            system=self.system,
            executor=self.executor,
            clock=self.clock,
            ledger=ledger,
            metrics=metrics,
            timeline=timeline,
            scrub_leases=scrub_leases,
            charge_service=charge_service,
            device_id=device_id,
            component=f"fleet.device{device_id}",
            fault_hook=fault_hook,
        )
        self.system.runtime.cim_init(0)

    # ------------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        return self.state is DeviceState.UP

    @property
    def total_wear_bytes(self) -> int:
        """Lifetime-model wear: bytes ever written to this device's
        crossbars (pre-fleet age included)."""
        return self.initial_wear_bytes + self.system.accelerator.total_cell_writes()

    def implied_lifetime_years(
        self, cell_endurance: float, writes_per_year_bytes: float
    ) -> float:
        """Eq. 1 lifetime this device would reach if its *current* wear
        rate were sustained at ``writes_per_year_bytes``; the device's
        accumulated wear is deducted from the endurance budget first."""
        tile = self.system.accelerator.tile
        size_bytes = tile.rows * tile.cols
        total_budget = cell_endurance * size_bytes
        remaining = max(0.0, total_budget - self.total_wear_bytes)
        if writes_per_year_bytes <= 0:
            return float("inf")
        return remaining / writes_per_year_bytes

    # ------------------------------------------------------------------
    def quarantine(self) -> None:
        if self.state is DeviceState.UP:
            self.state = DeviceState.QUARANTINED

    def drain(self) -> None:
        if self.state is not DeviceState.DRAINED:
            self.state = DeviceState.DRAINED

    def degrade(self, factor: float) -> None:
        """Shrink usable lease capacity; degradations compound."""
        self.capacity_factor *= factor

    def shutdown(self) -> None:
        self.system.runtime.cim_shutdown()

    def __repr__(self) -> str:
        return (
            f"FleetDevice(id={self.device_id}, state={self.state.value}, "
            f"wear={self.total_wear_bytes}B, busy={self.busy_s:.6f}s)"
        )


__all__ = ["DeviceState", "FleetDevice"]

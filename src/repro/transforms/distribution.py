"""Loop distribution (fission) on schedule trees.

Several PolyBench kernels compute two contractions inside one shared loop
nest (``bicg``, ``gesummv``, ``atax``); before such a kernel can be replaced
by a single runtime call its statements must be *isolated* into their own
nest — the classic loop-distribution transformation Polly applies through
rescheduling.  Distribution of a band over the sequence below it is legal
when no dependence flows from a statement of a later sequence branch to a
statement of an earlier branch, and every cross-branch dependence carried by
the distributed loop points forward.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.poly.dependence import Dependence, compute_dependences
from repro.poly.schedule_tree import (
    BandNode,
    DomainNode,
    FilterNode,
    MarkNode,
    ScheduleNode,
    SequenceNode,
    replace_node,
)
from repro.poly.scop import Scop
from repro.tactics.patterns.base import KernelMatch


class DistributionError(RuntimeError):
    """Illegal or impossible distribution request."""


def _sequence_below(band: BandNode) -> Optional[SequenceNode]:
    """The sequence directly below *band* (skipping marks), if any."""
    node = band.child
    while isinstance(node, MarkNode):
        node = node.child
    return node if isinstance(node, SequenceNode) else None


def _filter_order(sequence: SequenceNode) -> dict[str, int]:
    order: dict[str, int] = {}
    for position, child in enumerate(sequence.children()):
        assert isinstance(child, FilterNode)
        for name in child.statements:
            order[name] = position
    return order


def can_distribute(scop: Scop, band: BandNode) -> bool:
    """Legality of distributing *band* over the sequence below it."""
    sequence = _sequence_below(band)
    if sequence is None:
        return False
    order = _filter_order(sequence)
    band_vars = set(band.dims)
    for dep in compute_dependences(scop):
        src_pos = order.get(dep.source)
        dst_pos = order.get(dep.target)
        if src_pos is None or dst_pos is None or src_pos == dst_pos:
            continue
        if src_pos > dst_pos:
            # Dependence from a later branch back to an earlier one: after
            # distribution the earlier branch would run entirely first.
            return False
        if dep.distance is None:
            return False
        for var, dist in zip(dep.common_loops, dep.distance):
            if var in band_vars and dist < 0:
                return False
    return True


def distribute_band(tree: DomainNode, band: BandNode) -> SequenceNode:
    """Distribute *band* over the sequence below it (checked for legality).

    ``band(sequence(f1, f2, ...))`` becomes
    ``sequence(f1(band'), f2(band''), ...)`` where each new band copies the
    original band's dimensions.  Returns the new sequence node, which takes
    the band's place in the tree.
    """
    scop = tree.scop
    if not can_distribute(scop, band):
        raise DistributionError(
            f"distributing band {band.dims} would violate a dependence"
        )
    sequence = _sequence_below(band)
    assert sequence is not None
    new_filters: list[FilterNode] = []
    for child in sequence.children():
        assert isinstance(child, FilterNode)
        new_band = BandNode(
            list(band.dims),
            permutable=band.permutable,
            tile_steps=dict(band.tile_steps),
            tile_origin=dict(band.tile_origin),
        )
        new_band.set_child(0, child.child) if child.child is not None else None
        new_filters.append(FilterNode(set(child.statements), new_band))
    new_sequence = SequenceNode(new_filters)
    replace_node(band, new_sequence)
    return new_sequence


def _bands_between(root: ScheduleNode, leaf: ScheduleNode) -> list[BandNode]:
    """Band nodes on the path from *root* (exclusive) down to *leaf*."""
    path: list[BandNode] = []
    node: Optional[ScheduleNode] = leaf
    while node is not None and node is not root:
        if isinstance(node, BandNode):
            path.append(node)
        node = node.parent
    path.reverse()
    return path


def isolate_match(tree: DomainNode, match: KernelMatch, *, max_steps: int = 16) -> bool:
    """Distribute loops until *match* owns a complete loop nest.

    Returns True when the match's subtree root now contains every band of
    the match's loop dimensions (so device mapping can replace one subtree
    by one runtime call); returns False when a required distribution is
    illegal — the kernel then stays on the host.
    """
    needed_dims = set(match.dims.values())
    for _ in range(max_steps):
        root = match.subtree_root(tree)
        covered = {
            dim
            for node in root.walk()
            if isinstance(node, BandNode)
            for dim in node.dims
        }
        if isinstance(root, BandNode):
            covered |= set(root.dims)
        if needed_dims <= covered:
            return True
        # Find the innermost band above the root that schedules a needed
        # dimension but also non-match statements, and distribute it.
        blocking: Optional[BandNode] = None
        node: Optional[ScheduleNode] = root.parent
        while node is not None:
            if isinstance(node, BandNode) and set(node.dims) & needed_dims:
                blocking = node
                break
            node = node.parent
        if blocking is None:
            return False
        sequence = _sequence_below(blocking)
        if sequence is None or not can_distribute(tree.scop, blocking):
            return False
        distribute_band(tree, blocking)
    return False

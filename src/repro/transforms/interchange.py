"""Loop interchange on schedule-tree bands."""

from __future__ import annotations

from typing import Sequence

from repro.poly.dependence import nest_permutable
from repro.poly.schedule_tree import BandNode, DomainNode
from repro.poly.scop import Scop


class InterchangeError(RuntimeError):
    """Illegal interchange request."""


def permute_band(band: BandNode, new_order: Sequence[str]) -> None:
    """Permute the dimensions of a multi-dimensional band in place."""
    if sorted(new_order) != sorted(band.dims):
        raise InterchangeError(
            f"new order {list(new_order)} is not a permutation of {band.dims}"
        )
    band.dims = list(new_order)


def interchange_band_chain(
    bands: Sequence[BandNode], new_order: Sequence[str]
) -> None:
    """Reorder a chain of nested single-dimension bands.

    ``bands`` is the chain outermost-first; ``new_order`` lists the loop
    variables in their new outermost-first order.  The band nodes stay where
    they are — only their dimensions are re-assigned — which preserves any
    filters or marks attached between them.
    """
    if not bands:
        raise InterchangeError("cannot interchange an empty band chain")
    for band in bands:
        if band.n_dims != 1:
            raise InterchangeError("interchange_band_chain expects 1-D bands")
    current = [band.dims[0] for band in bands]
    if sorted(new_order) != sorted(current):
        raise InterchangeError(
            f"new order {list(new_order)} is not a permutation of {current}"
        )
    for band, var in zip(bands, new_order):
        band.dims = [var]


def legal_to_interchange(
    scop: Scop, stmt_name: str, loop_vars: Sequence[str]
) -> bool:
    """Check full permutability of the loops around *stmt_name*.

    Wraps the dependence-analysis check so transformation code and tests
    have a single entry point for legality questions.
    """
    return nest_permutable(scop, stmt_name, tuple(loop_vars))

"""Revisited kernel fusion (Listing 2 of the paper).

Two adjacent kernels X and Y are fused when they have the same access
pattern (both are GEMM-like contractions) and are independent: Y neither
reads nor writes any output of X and does not write any input of X.  Fusion
pays off twice on the CIM device:

1. the two kernels become a single *batched* runtime call, halving the
   offload overhead;
2. when the kernels share an input operand, the shared operand is written to
   the crossbar only once and the other operands are streamed through the
   input buffers — the "smart mapping" that roughly doubles PCM lifetime in
   Figure 5.

This module finds fusable groups among pattern matches and can also fuse the
loop nests structurally (for host-side execution studies); device mapping
consumes the groups to emit ``polly_cimBlasGemmBatched`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.poly.dependence import kernels_independent
from repro.poly.schedule_tree import (
    BandNode,
    DomainNode,
    FilterNode,
    LeafNode,
    ScheduleNode,
    SequenceNode,
)
from repro.poly.scop import Scop
from repro.tactics.matchers import nested_band_chain
from repro.tactics.patterns.base import KernelMatch
from repro.tactics.patterns.gemm import GemmMatch


class FusionError(RuntimeError):
    """Illegal fusion request."""


@dataclass
class FusionGroup:
    """A set of kernels to be executed as one batched CIM call."""

    matches: list[KernelMatch] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.matches)

    @property
    def statements(self) -> set[str]:
        names: set[str] = set()
        for match in self.matches:
            names |= match.statements
        return names

    def shared_arrays(self) -> set[str]:
        """Input arrays read by every kernel of the group (the operands the
        smart mapping keeps stationary in the crossbar)."""
        if not self.matches:
            return set()
        shared: Optional[set[str]] = None
        for match in self.matches:
            scop = match.scop
            assert scop is not None
            stmt = scop.statement(match.update_stmt)
            inputs = stmt.read_arrays() - stmt.write_arrays()
            shared = inputs if shared is None else (shared & inputs)
        return shared or set()

    def __str__(self) -> str:
        kernels = ", ".join(m.update_stmt for m in self.matches)
        return f"FusionGroup[{kernels}] shared={sorted(self.shared_arrays())}"


def _kernels_pairwise_independent(
    scop: Scop, matches: Sequence[KernelMatch]
) -> bool:
    """Every later kernel must be independent of every earlier one,
    considering both the update and the init statement of each kernel."""
    for earlier_index, earlier in enumerate(matches):
        for later in matches[earlier_index + 1 :]:
            for x_name in earlier.statements:
                for y_name in later.statements:
                    x_stmt = scop.statement(x_name)
                    y_stmt = scop.statement(y_name)
                    if not kernels_independent(x_stmt, y_stmt):
                        return False
    return True


def find_fusable_groups(
    scop: Scop,
    matches: Sequence[KernelMatch],
    require_shared_input: bool = False,
    same_kind_only: bool = True,
    fusable_kinds: tuple[str, ...] = ("gemm",),
) -> list[FusionGroup]:
    """Group adjacent fusable kernel matches.

    Matches are considered in program order (by the nest they live in).  A
    group grows while the next kernel: lives in a different loop nest (fusion
    across nests, as in Listing 2), has the same kind (GEMM with GEMM),
    and is independent of every kernel already in the group.  Groups of size
    one are not reported.

    ``require_shared_input`` additionally demands a common read operand (the
    endurance-oriented case the paper highlights); by default sharing is
    exploited opportunistically but not required.
    """
    ordered = sorted(
        (m for m in matches if m.kind in fusable_kinds),
        key=lambda m: scop.statement(m.update_stmt).nest_index,
    )
    groups: list[FusionGroup] = []
    current: list[KernelMatch] = []

    def flush() -> None:
        if len(current) > 1:
            groups.append(FusionGroup(list(current)))
        current.clear()

    for match in ordered:
        if not current:
            current.append(match)
            continue
        previous = current[-1]
        prev_nest = scop.statement(previous.update_stmt).nest_index
        this_nest = scop.statement(match.update_stmt).nest_index
        candidate = current + [match]
        compatible = (
            this_nest != prev_nest
            and (not same_kind_only or match.kind == previous.kind)
            and _kernels_pairwise_independent(scop, candidate)
        )
        if compatible and require_shared_input:
            compatible = bool(FusionGroup(candidate).shared_arrays())
        if compatible:
            current.append(match)
        else:
            flush()
            current.append(match)
    flush()
    return groups


def fuse_sibling_nests(tree: DomainNode, first: FilterNode, second: FilterNode) -> FilterNode:
    """Structurally fuse two sibling loop nests in the schedule tree.

    Both filters must be children of the same sequence and their subtrees
    must be band chains of the same depth with identical loop extents (the
    caller is responsible for the legality check via
    :func:`find_fusable_groups` / dependence analysis).  The second nest's
    loops are renamed to the first nest's loop variables and its statements
    are appended under the shared bands.  Used for host-side fusion studies;
    CIM offloading itself keeps the nests separate and fuses at the runtime
    call level.
    """
    parent = first.parent
    if parent is None or parent is not second.parent or not isinstance(parent, SequenceNode):
        raise FusionError("fuse_sibling_nests needs two filters under one sequence")
    scop: Scop = tree.scop

    first_chain = nested_band_chain(first.child) if first.child is not None else []
    second_chain = nested_band_chain(second.child) if second.child is not None else []
    if not first_chain or len(first_chain) != len(second_chain):
        raise FusionError("fused nests must be band chains of equal depth")

    renaming = {}
    for band_a, band_b in zip(first_chain, second_chain):
        if band_a.n_dims != 1 or band_b.n_dims != 1:
            raise FusionError("fusion expects single-dimension bands")
        renaming[band_b.dims[0]] = band_a.dims[0]

    # Verify extents match (symbolically) for every statement being moved.
    second_stmts = sorted(second.statements)
    for name in second_stmts:
        stmt = scop.statement(name)
        for old_var, new_var in renaming.items():
            if not stmt.domain.has_dim(old_var):
                continue
            old_dim = stmt.domain.dim(old_var)
            ref_stmt_name = next(iter(sorted(first.statements)))
            ref_dim = scop.statement(ref_stmt_name).domain.dim(new_var)
            if (old_dim.upper - old_dim.lower) != (ref_dim.upper - ref_dim.lower):
                raise FusionError(
                    f"loop extents differ for {old_var!r} vs {new_var!r}; "
                    "nests cannot be fused"
                )

    # Rename the moved statements' domains, accesses and IR in the SCoP.
    from repro.ir.expr import VarRef
    from repro.ir.visitor import substitute

    for name in second_stmts:
        stmt = scop.statement(name)
        for old_var, new_var in renaming.items():
            if old_var == new_var:
                continue
            stmt.domain = stmt.domain.rename(old_var, new_var)
            stmt.accesses = [a.rename_var(old_var, new_var) for a in stmt.accesses]
        mapping = {old: VarRef(new) for old, new in renaming.items() if old != new}
        if mapping:
            stmt.assign.rhs = substitute(stmt.assign.rhs, mapping)
            if hasattr(stmt.assign.target, "indices"):
                from repro.ir.expr import ArrayRef

                stmt.assign.target = ArrayRef(
                    stmt.assign.target.name,
                    [substitute(i, mapping) for i in stmt.assign.target.indices],
                )

    # Graft the second nest's innermost content under the first nest.
    innermost_first = first_chain[-1]
    innermost_second = second_chain[-1]
    first_tail = innermost_first.child
    second_tail = innermost_second.child
    merged = SequenceNode(
        [
            FilterNode(set(first.statements), first_tail),
            FilterNode(set(second.statements), second_tail),
        ]
    )
    innermost_first.set_child(0, merged)

    # Update the first filter to cover both statement sets, drop the second.
    first.statements = set(first.statements) | set(second.statements)
    for index, child in enumerate(parent.children()):
        if child is second:
            parent.remove_child(index)
            break
    return first

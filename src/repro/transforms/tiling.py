"""Revisited tiling (Listing 3 of the paper).

Tiling splits a band's iteration space into tile loops and point loops so
that the working set of one tile fits the CIM crossbar; combined with an
interchange of the tile loops it maximises reuse of the operand tile that
has been written to the crossbar, reducing crossbar writes and therefore
improving endurance.

The transformation operates on a chain of nested single-dimension bands (the
canonical schedule of a perfect loop nest): it inserts a new tile band above
the chain and rewrites the original bands into point bands whose loops run
within one tile (the AST generator emits ``min`` upper bounds for them).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.poly.schedule_tree import BandNode, DomainNode, ScheduleNode, replace_node
from repro.tactics.matchers import nested_band_chain
from repro.tactics.patterns.gemm import GemmMatch


class TilingError(RuntimeError):
    """Illegal or impossible tiling request."""


def tile_band_chain(
    bands: Sequence[BandNode],
    tile_sizes: dict[str, int],
    tile_loop_order: Optional[Sequence[str]] = None,
) -> BandNode:
    """Tile a chain of nested 1-D bands.

    ``bands`` is the chain outermost-first (each band must be the single
    child of the previous one).  ``tile_sizes`` maps loop-variable names to
    tile sizes; loops not mentioned are left untiled.  ``tile_loop_order``
    optionally fixes the order of the *tile* loops (outermost first),
    defaulting to the original loop order — passing e.g. ``("i", "k", "j")``
    reproduces the interchange of Listing 3.

    Returns the newly inserted tile band.
    """
    if not bands:
        raise TilingError("cannot tile an empty band chain")
    for band in bands:
        if band.n_dims != 1:
            raise TilingError("tile_band_chain expects single-dimension bands")
    for outer, inner in zip(bands, bands[1:]):
        if inner.parent is not outer:
            raise TilingError("bands do not form a nested chain")
    chain_vars = [band.dims[0] for band in bands]
    unknown = set(tile_sizes) - set(chain_vars)
    if unknown:
        raise TilingError(f"tile sizes given for loops not in the chain: {sorted(unknown)}")
    for var, size in tile_sizes.items():
        if size <= 0:
            raise TilingError(f"tile size for {var!r} must be positive, got {size}")
    tiled_vars = [var for var in chain_vars if var in tile_sizes]
    if not tiled_vars:
        raise TilingError("no loops selected for tiling")

    order = list(tile_loop_order) if tile_loop_order is not None else list(tiled_vars)
    if sorted(order) != sorted(tiled_vars):
        raise TilingError(
            "tile_loop_order must be a permutation of the tiled loops "
            f"({sorted(tiled_vars)}), got {order}"
        )

    outermost = bands[0]
    parent = outermost.parent
    if parent is None:
        raise TilingError("cannot tile a detached band chain")

    # Build the tile band: one dimension per tiled loop, in the given order.
    tile_dims = [f"{var}_t" for var in order]
    tile_steps = {f"{var}_t": tile_sizes[var] for var in order}
    tile_band = BandNode(tile_dims, permutable=True, tile_steps=tile_steps)

    # Splice the tile band between the parent and the original chain.
    for index, child in enumerate(parent.children()):
        if child is outermost:
            parent.set_child(index, tile_band)
            break
    else:
        raise TilingError("band chain is not attached to its parent")
    tile_band.set_child(0, outermost)

    # Point bands: original loops now iterate within their tile.
    for band in bands:
        var = band.dims[0]
        if var in tile_sizes:
            band.tile_origin = {var: (f"{var}_t", tile_sizes[var])}
    return tile_band


def tile_gemm_for_crossbar(
    tree: DomainNode,
    match: GemmMatch,
    crossbar_rows: int = 256,
    crossbar_cols: int = 256,
) -> BandNode:
    """Apply the paper's Listing 3 tiling to a matched GEMM.

    The ``A`` operand is indexed by ``(i, k)``; to make one ``A`` tile fit
    the crossbar we tile ``i`` by the number of crossbar columns and ``k`` by
    the number of crossbar rows, tile ``j`` by the column-buffer-friendly
    crossbar width, and order the tile loops ``(i_t, k_t, j_t)`` so the
    ``A`` tile written to the crossbar is reused across the whole ``j_t``
    sweep before the next tile is written.
    """
    if match.kind != "gemm":
        raise TilingError("tile_gemm_for_crossbar needs a GEMM match")
    bands = match.band_chain(tree)
    chain_vars = [band.dims[0] for band in bands]
    i_var, j_var, k_var = match.dims["i"], match.dims["j"], match.dims["k"]
    missing = {i_var, j_var, k_var} - set(chain_vars)
    if missing:
        raise TilingError(
            f"GEMM loops {sorted(missing)} are not in the band chain {chain_vars}"
        )
    update_bands = [b for b in bands if b.dims[0] in (i_var, j_var, k_var)]
    sizes = {
        i_var: crossbar_cols,
        k_var: crossbar_rows,
        j_var: crossbar_cols,
    }
    order = [i_var, k_var, j_var]
    return tile_band_chain(update_bands, sizes, tile_loop_order=order)

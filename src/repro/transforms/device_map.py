"""Device mapping: rewrite matched kernels into CIM runtime calls.

This pass turns the schedule tree of a SCoP into the offloaded form of
Listing 1: the subtree that scheduled a matched kernel is replaced by an
extension node carrying buffer allocations, host-to-device copies, the BLAS
call, and the device-to-host copy of the result.  Kernels grouped by the
fusion pass become a single ``polly_cimBlasGemmBatched`` call placed at the
first kernel's position; the remaining kernels' subtrees are removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.codegen.runtime_calls import (
    CIM_CONV2D,
    CIM_DEV_TO_HOST,
    CIM_GEMM,
    CIM_GEMM_BATCHED,
    CIM_GEMV,
    CIM_HOST_TO_DEV,
    CIM_MALLOC,
    BatchedGemmCallArgs,
    Conv2DCallArgs,
    CopyCallArgs,
    GemmCallArgs,
    GemvCallArgs,
    MallocCallArgs,
)
from repro.ir.expr import BinOp, Expr, FloatConst, IntConst
from repro.ir.program import ArrayDecl
from repro.ir.stmt import CallStmt
from repro.poly.schedule_tree import (
    DomainNode,
    ExtensionNode,
    FilterNode,
    ScheduleNode,
    SequenceNode,
    replace_node,
)
from repro.tactics.patterns.base import KernelMatch
from repro.tactics.patterns.conv import Conv2DMatch
from repro.tactics.patterns.gemm import GemmMatch
from repro.tactics.patterns.gemv import GemvMatch
from repro.transforms.fusion import FusionGroup


class DeviceMappingError(RuntimeError):
    """A match cannot be mapped onto the accelerator."""


@dataclass
class DeviceMapping:
    """Record of one offloaded kernel (or fused kernel group)."""

    kind: str
    call_name: str
    matches: list[KernelMatch]
    statements: set[str]
    buffers: list[str]
    shared_arrays: set[str] = field(default_factory=set)

    def __str__(self) -> str:
        stmts = ", ".join(sorted(self.statements))
        return f"{self.call_name}({self.kind}) <- {stmts}"


@dataclass
class DeviceMappingResult:
    """Outcome of device mapping over one schedule tree."""

    mappings: list[DeviceMapping] = field(default_factory=list)
    offloaded_statements: set[str] = field(default_factory=set)
    allocated_buffers: dict[str, str] = field(default_factory=dict)  # array -> buffer

    @property
    def any_offloaded(self) -> bool:
        return bool(self.mappings)


def _buffer_name(array: str) -> str:
    return f"cim_{array}"


def _array_size_bytes_expr(decl: ArrayDecl) -> Expr:
    """Symbolic byte size of an array (product of extents times element size)."""
    size: Expr = IntConst(decl.elem_type.size_bytes)
    for dim in decl.shape:
        size = BinOp("*", size, dim)
    return size


def _leading_dim_expr(decl: ArrayDecl) -> Expr:
    """Leading dimension of a row-major array (its innermost extent)."""
    return decl.shape[-1]


def _is_literal_zero(expr: Expr) -> bool:
    return isinstance(expr, (IntConst, FloatConst)) and float(expr.value) == 0.0


class _CallBuilder:
    """Accumulates the runtime calls of one extension node."""

    def __init__(self, tree: DomainNode, result: DeviceMappingResult):
        self.tree = tree
        self.scop = tree.scop
        self.program = tree.scop.program
        self.result = result
        self.calls: list[CallStmt] = []

    # -- building blocks -------------------------------------------------
    def ensure_buffer(self, array: str) -> str:
        buffer = _buffer_name(array)
        if array not in self.result.allocated_buffers:
            decl = self.program.array(array)
            self.calls.append(
                CallStmt(
                    CIM_MALLOC,
                    [MallocCallArgs(buffer, array, _array_size_bytes_expr(decl))],
                )
            )
            self.result.allocated_buffers[array] = buffer
        return buffer

    def copy_in(self, array: str) -> str:
        buffer = self.ensure_buffer(array)
        decl = self.program.array(array)
        self.calls.append(
            CallStmt(
                CIM_HOST_TO_DEV,
                [CopyCallArgs(buffer, array, _array_size_bytes_expr(decl))],
            )
        )
        return buffer

    def copy_out(self, array: str) -> str:
        buffer = self.ensure_buffer(array)
        decl = self.program.array(array)
        self.calls.append(
            CallStmt(
                CIM_DEV_TO_HOST,
                [CopyCallArgs(buffer, array, _array_size_bytes_expr(decl))],
            )
        )
        return buffer

    def append(self, call: CallStmt) -> None:
        self.calls.append(call)


def _effective_beta(match: KernelMatch, root: ScheduleNode) -> tuple[Expr, bool]:
    """Beta to pass to the runtime call, and whether the init statement is
    absorbed by the offload (True) or stays on the host (False)."""
    if match.init_stmt is None:
        return match.beta, False
    if match.init_stmt in root.active_statements():
        return match.beta, True
    # The init statement lives outside the replaced subtree (e.g. a separate
    # scaling nest): it keeps running on the host, the device call must then
    # accumulate onto the already-scaled output.
    return FloatConst(1.0), False


def _gemm_call_args(
    match: GemmMatch, builder: _CallBuilder, beta: Expr
) -> GemmCallArgs:
    program = builder.program
    a, b, c = match.arrays["A"], match.arrays["B"], match.arrays["C"]
    buffer_a = builder.copy_in(a)
    buffer_b = builder.copy_in(b)
    if _is_literal_zero(beta):
        buffer_c = builder.ensure_buffer(c)
    else:
        buffer_c = builder.copy_in(c)
    return GemmCallArgs(
        trans_a=match.trans_a,
        trans_b=match.trans_b,
        m=match.m_expr,
        n=match.n_expr,
        k=match.k_expr,
        alpha=match.alpha,
        buffer_a=buffer_a,
        lda=_leading_dim_expr(program.array(a)),
        buffer_b=buffer_b,
        ldb=_leading_dim_expr(program.array(b)),
        beta=beta,
        buffer_c=buffer_c,
        ldc=_leading_dim_expr(program.array(c)),
        array_a=a,
        array_b=b,
        array_c=c,
    )


def _map_gemm_group(
    tree: DomainNode,
    group: list[GemmMatch],
    result: DeviceMappingResult,
) -> tuple[ExtensionNode, DeviceMapping, list[ScheduleNode]]:
    """Build the extension node for one GEMM (len==1) or fused group."""
    builder = _CallBuilder(tree, result)
    roots = [match.subtree_root(tree) for match in group]
    problems: list[GemmCallArgs] = []
    statements: set[str] = set()
    for match, root in zip(group, roots):
        beta, absorbs_init = _effective_beta(match, root)
        problems.append(_gemm_call_args(match, builder, beta))
        statements.add(match.update_stmt)
        if absorbs_init and match.init_stmt is not None:
            statements.add(match.init_stmt)
    if len(problems) == 1:
        builder.append(CallStmt(CIM_GEMM, [problems[0]]))
        call_name = CIM_GEMM
    else:
        builder.append(CallStmt(CIM_GEMM_BATCHED, [BatchedGemmCallArgs(tuple(problems))]))
        call_name = CIM_GEMM_BATCHED
    for args in problems:
        builder.copy_out(args.array_c)
    mapping = DeviceMapping(
        kind="gemm",
        call_name=call_name,
        matches=list(group),
        statements=statements,
        buffers=sorted({p.buffer_a for p in problems}
                       | {p.buffer_b for p in problems}
                       | {p.buffer_c for p in problems}),
        shared_arrays=FusionGroup(list(group)).shared_arrays() if len(group) > 1 else set(),
    )
    return ExtensionNode(builder.calls), mapping, roots


def _map_gemv(
    tree: DomainNode, match: GemvMatch, result: DeviceMappingResult
) -> tuple[ExtensionNode, DeviceMapping, list[ScheduleNode]]:
    builder = _CallBuilder(tree, result)
    root = match.subtree_root(tree)
    beta, absorbs_init = _effective_beta(match, root)
    a, x, y = match.arrays["A"], match.arrays["x"], match.arrays["y"]
    program = builder.program
    buffer_a = builder.copy_in(a)
    buffer_x = builder.copy_in(x)
    buffer_y = builder.ensure_buffer(y) if _is_literal_zero(beta) else builder.copy_in(y)
    args = GemvCallArgs(
        trans_a=match.trans_a,
        m=match.m_expr,
        n=match.n_expr,
        alpha=match.alpha,
        buffer_a=buffer_a,
        lda=_leading_dim_expr(program.array(a)),
        buffer_x=buffer_x,
        beta=beta,
        buffer_y=buffer_y,
        array_a=a,
        array_x=x,
        array_y=y,
    )
    builder.append(CallStmt(CIM_GEMV, [args]))
    builder.copy_out(y)
    statements = {match.update_stmt}
    if absorbs_init and match.init_stmt is not None:
        statements.add(match.init_stmt)
    mapping = DeviceMapping(
        kind="gemv",
        call_name=CIM_GEMV,
        matches=[match],
        statements=statements,
        buffers=[buffer_a, buffer_x, buffer_y],
    )
    return ExtensionNode(builder.calls), mapping, [root]


def _map_conv2d(
    tree: DomainNode, match: Conv2DMatch, result: DeviceMappingResult
) -> tuple[ExtensionNode, DeviceMapping, list[ScheduleNode]]:
    builder = _CallBuilder(tree, result)
    root = match.subtree_root(tree)
    beta, absorbs_init = _effective_beta(match, root)
    out, img, weights = match.arrays["out"], match.arrays["img"], match.arrays["W"]
    buffer_img = builder.copy_in(img)
    buffer_w = builder.copy_in(weights)
    buffer_out = (
        builder.ensure_buffer(out) if _is_literal_zero(beta) else builder.copy_in(out)
    )
    args = Conv2DCallArgs(
        out_h=match.out_h_expr,
        out_w=match.out_w_expr,
        filter_h=match.filter_h_expr,
        filter_w=match.filter_w_expr,
        alpha=match.alpha,
        buffer_img=buffer_img,
        buffer_w=buffer_w,
        beta=beta,
        buffer_out=buffer_out,
        array_img=img,
        array_w=weights,
        array_out=out,
    )
    builder.append(CallStmt(CIM_CONV2D, [args]))
    builder.copy_out(out)
    statements = {match.update_stmt}
    if absorbs_init and match.init_stmt is not None:
        statements.add(match.init_stmt)
    mapping = DeviceMapping(
        kind="conv2d",
        call_name=CIM_CONV2D,
        matches=[match],
        statements=statements,
        buffers=[buffer_img, buffer_w, buffer_out],
    )
    return ExtensionNode(builder.calls), mapping, [root]


def _detach_root(root: ScheduleNode) -> None:
    """Remove a subtree that became redundant after fusion."""
    parent = root.parent
    if isinstance(parent, SequenceNode) is False and isinstance(root, FilterNode) is False:
        # Walk up to the filter that encloses only this subtree, if any.
        node = root
        while node.parent is not None and not isinstance(node.parent, SequenceNode):
            node = node.parent
        root = node
        parent = node.parent
    if isinstance(parent, SequenceNode):
        for index, child in enumerate(parent.children()):
            if child is root:
                parent.remove_child(index)
                return
    raise DeviceMappingError(
        "cannot remove a fused kernel's subtree: it is not under a sequence"
    )


def map_kernels_to_cim(
    tree: DomainNode,
    matches: Sequence[KernelMatch],
    fusion_groups: Sequence[FusionGroup] = (),
) -> DeviceMappingResult:
    """Map matched kernels onto the CIM accelerator.

    ``matches`` are the kernels selected for offloading; ``fusion_groups``
    (whose members must all appear in ``matches``) are offloaded as batched
    calls.  The schedule tree is modified in place.
    """
    result = DeviceMappingResult()
    selected_names = {m.update_stmt for m in matches}
    grouped: list[list[KernelMatch]] = []
    in_group: set[str] = set()
    for group in fusion_groups:
        members = [m for m in group.matches if m.update_stmt in selected_names]
        if len(members) > 1:
            grouped.append(members)
            in_group |= {m.update_stmt for m in members}
    for match in matches:
        if match.update_stmt not in in_group:
            grouped.append([match])

    for group in grouped:
        kind = group[0].kind
        if kind == "gemm":
            extension, mapping, roots = _map_gemm_group(tree, group, result)  # type: ignore[arg-type]
        elif kind == "gemv":
            if len(group) != 1:
                raise DeviceMappingError("GEMV kernels cannot be batched")
            extension, mapping, roots = _map_gemv(tree, group[0], result)  # type: ignore[arg-type]
        elif kind == "conv2d":
            if len(group) != 1:
                raise DeviceMappingError("convolutions cannot be batched")
            extension, mapping, roots = _map_conv2d(tree, group[0], result)  # type: ignore[arg-type]
        else:
            raise DeviceMappingError(f"unsupported kernel kind {kind!r}")
        # Replace the first kernel's subtree by the runtime calls, drop the
        # rest (their work is covered by the batched call).  Sequence nodes
        # only accept filter children, so when the replaced subtree is a
        # filter the extension is grafted underneath it instead.
        first_root = roots[0]
        if isinstance(first_root, FilterNode) and isinstance(
            first_root.parent, SequenceNode
        ):
            first_root.set_child(0, extension)
        else:
            replace_node(first_root, extension)
        for redundant in roots[1:]:
            _detach_root(redundant)
        result.mappings.append(mapping)
        result.offloaded_statements |= mapping.statements
    return result

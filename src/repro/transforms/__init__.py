"""Schedule-tree transformations (the TDO-CIM specific optimizations).

* :mod:`repro.transforms.tiling` — the revisited tiling + interchange of
  Listing 3: split a GEMM's bands so one operand tile fits the crossbar and
  reorder the tile loops so the written tile is reused across consecutive
  point-loop executions.
* :mod:`repro.transforms.interchange` — loop interchange on permutable bands.
* :mod:`repro.transforms.fusion` — the revisited kernel fusion of Listing 2:
  group adjacent, independent, same-shaped kernels so device mapping can
  emit one batched runtime call and write shared operands only once.
* :mod:`repro.transforms.device_map` — replace matched subtrees by extension
  nodes carrying the CIM runtime calls (Listing 1).
"""

from repro.transforms.tiling import tile_band_chain, tile_gemm_for_crossbar, TilingError
from repro.transforms.interchange import interchange_band_chain, permute_band, InterchangeError
from repro.transforms.fusion import (
    FusionGroup,
    find_fusable_groups,
    fuse_sibling_nests,
    FusionError,
)
from repro.transforms.device_map import (
    DeviceMapping,
    DeviceMappingResult,
    map_kernels_to_cim,
)

__all__ = [
    "tile_band_chain",
    "tile_gemm_for_crossbar",
    "TilingError",
    "interchange_band_chain",
    "permute_band",
    "InterchangeError",
    "FusionGroup",
    "find_fusable_groups",
    "fuse_sibling_nests",
    "FusionError",
    "DeviceMapping",
    "DeviceMappingResult",
    "map_kernels_to_cim",
]

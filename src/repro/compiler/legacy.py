"""The pre-pass-manager monolithic pipeline, kept as a frozen reference.

This is the straight-line ``_compile_uncached`` the driver shipped before
the pass-manager refactor (one function running the whole Figure 4 flow
per SCoP).  It exists for exactly one purpose: the pipeline-equivalence
differential test compares the pass-based default pipeline against it,
bit-identically, on every PolyBench workload.

Do **not** refactor this control flow to share structure with the pass
subsystem — its value is being an independent expression of the same
semantics.  The only shared pieces are the leaf utilities both sides must
agree on verbatim (the :class:`OffloadPolicy` selection strategies and the
compute-intensity estimator).

Never caches; never records pass timings.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.codegen.lowering import reassemble_program
from repro.compiler.options import CompileOptions
from repro.compiler.passes.policy import resolve_policy
from repro.compiler.report import CompilationReport, KernelDecision
from repro.frontend.parser import parse_program
from repro.ir.normalize import normalize_reductions
from repro.ir.program import Program
from repro.ir.stmt import Stmt
from repro.poly.astgen import generate_ir
from repro.poly.schedule_build import build_schedule_tree
from repro.poly.scop import Scop, detect_scops
from repro.tactics.patterns import KernelMatch, find_all_kernels
from repro.tactics.patterns.gemm import GemmMatch
from repro.transforms.device_map import map_kernels_to_cim
from repro.transforms.distribution import isolate_match
from repro.transforms.fusion import FusionGroup, find_fusable_groups
from repro.transforms.tiling import TilingError, tile_gemm_for_crossbar


def compile_monolithic(
    source: Union[str, Program],
    options: Optional[CompileOptions] = None,
    size_hint: Optional[Mapping[str, int | float]] = None,
):
    """Run the legacy single-function pipeline; returns a
    :class:`~repro.compiler.driver.CompilationResult`."""
    from repro.compiler.driver import CompilationResult

    options = options or CompileOptions()
    policy = resolve_policy(options.offload_policy)
    hints = dict(size_hint) if size_hint is not None else None

    program = parse_program(source) if isinstance(source, str) else source
    program = normalize_reductions(program)
    report = CompilationReport(program=program.name)

    scops = detect_scops(program)
    report.scop_count = len(scops)
    result = CompilationResult(
        source_program=program,
        program=program,
        report=report,
        scops=scops,
        options=options,
    )
    if not scops or not options.enable_offload:
        # Nothing to do: the "compiled" program is the input program.
        for scop in scops:
            tree = build_schedule_tree(scop)
            result.trees.append(tree)
            for match in find_all_kernels(scop, tree):
                result.matches.append(match)
                report.decisions.append(
                    KernelDecision(
                        scop=scop.name,
                        statement=match.update_stmt,
                        kind=match.kind,
                        offloaded=False,
                        reason="offloading disabled",
                    )
                )
        return result

    replacements: list[tuple[Scop, list[Stmt]]] = []
    anything_offloaded = False
    for scop in scops:
        tree = build_schedule_tree(scop)
        result.trees.append(tree)
        matches = find_all_kernels(scop, tree)
        result.matches.extend(matches)

        selected, decisions = policy.select(scop, matches, options, hints)

        # Isolate each selected kernel into its own loop nest (loop
        # distribution); kernels that cannot be isolated legally stay on
        # the host.
        isolated: list[KernelMatch] = []
        for match in selected:
            if isolate_match(tree, match):
                isolated.append(match)
            else:
                for decision in decisions:
                    if decision.statement == match.update_stmt:
                        decision.offloaded = False
                        decision.reason = (
                            "kernel shares its loop nest with other statements "
                            "and loop distribution is not legal"
                        )
        selected = isolated
        report.decisions.extend(decisions)

        groups: list[FusionGroup] = []
        if options.enable_fusion and len(selected) > 1:
            groups = find_fusable_groups(
                scop,
                selected,
                require_shared_input=options.fusion_requires_shared_input,
            )
            for group in groups:
                names = [m.update_stmt for m in group.matches]
                report.fusion_groups.append(names)
                for decision in report.decisions:
                    if decision.statement in names:
                        decision.fused_with = [
                            n for n in names if n != decision.statement
                        ]

        if options.enable_tiling:
            for match in selected:
                if isinstance(match, GemmMatch):
                    try:
                        tile_gemm_for_crossbar(
                            tree,
                            match,
                            options.crossbar_rows,
                            options.crossbar_cols,
                        )
                        report.tiled_kernels.append(match.update_stmt)
                    except TilingError:
                        # Imperfect nests (init statement inside) are left
                        # untiled; the micro-engine still tiles internally.
                        pass

        if selected:
            mapping = map_kernels_to_cim(tree, selected, groups)
            result.mappings.append(mapping)
            anything_offloaded = anything_offloaded or mapping.any_offloaded
            report.runtime_calls_emitted.extend(
                m.call_name for m in mapping.mappings
            )
        replacements.append((scop, generate_ir(tree)))

    compiled = reassemble_program(
        program, replacements, add_init_call=anything_offloaded
    )
    result.program = compiled
    return result

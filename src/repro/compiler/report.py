"""Compilation report: what was detected, offloaded, fused, and why."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class KernelDecision:
    """The compiler's decision about one detected kernel."""

    scop: str
    statement: str
    kind: str
    offloaded: bool
    reason: str
    fused_with: list[str] = field(default_factory=list)
    estimated_macs_per_write: Optional[float] = None

    def __str__(self) -> str:
        action = "offloaded" if self.offloaded else "kept on host"
        extra = f" fused with {self.fused_with}" if self.fused_with else ""
        return f"{self.kind} kernel {self.statement} ({self.scop}): {action} — {self.reason}{extra}"


@dataclass
class PassTiming:
    """Wall time and IR delta of one compiler pass.

    ``ir_size_before``/``ir_size_after`` count the lines of the printed IR
    program around the pass (0 while no program exists yet, i.e. before the
    parse pass ran).  A pass that only analyses leaves the size unchanged;
    lowering and reassembly typically change it.
    """

    name: str
    wall_time_s: float
    ir_size_before: int = 0
    ir_size_after: int = 0

    @property
    def ir_delta(self) -> int:
        return self.ir_size_after - self.ir_size_before

    def __str__(self) -> str:
        delta = f"{self.ir_delta:+d}" if self.ir_delta else "±0"
        return (
            f"{self.name:<22s} {self.wall_time_s * 1e3:8.3f} ms   "
            f"IR {self.ir_size_before:>4d} -> {self.ir_size_after:<4d} ({delta})"
        )


@dataclass
class CompilationReport:
    """Summary of one TDO-CIM compilation."""

    program: str = ""
    scop_count: int = 0
    decisions: list[KernelDecision] = field(default_factory=list)
    fusion_groups: list[list[str]] = field(default_factory=list)
    tiled_kernels: list[str] = field(default_factory=list)
    runtime_calls_emitted: list[str] = field(default_factory=list)
    #: Per-pass instrumentation recorded by the
    #: :class:`~repro.compiler.passes.manager.PassManager` — one entry per
    #: executed pass, in pipeline order.  Empty for results produced by the
    #: frozen legacy monolith (:mod:`repro.compiler.legacy`).
    pass_timings: list[PassTiming] = field(default_factory=list)
    #: Printed IR snapshots requested via ``CompileOptions.dump_ir_after``,
    #: keyed by pass name.
    ir_dumps: dict[str, str] = field(default_factory=dict)
    #: Per-nest engine lowering report produced by the ``engine-lower``
    #: pass: which execution tier (interpreter / vectorized / fold /
    #: native) every loop nest of the compiled program lands on, and why
    #: slower tiers were chosen.  Entries are
    #: :class:`~repro.ir.engine.lowering.NestLowering` objects.
    nest_lowerings: list = field(default_factory=list)

    @property
    def detected_kernels(self) -> int:
        return len(self.decisions)

    @property
    def offloaded_kernels(self) -> int:
        return sum(1 for d in self.decisions if d.offloaded)

    def summary(self) -> str:
        lines = [
            f"TDO-CIM compilation of {self.program!r}:",
            f"  SCoPs detected:   {self.scop_count}",
            f"  kernels detected: {self.detected_kernels}",
            f"  kernels offloaded: {self.offloaded_kernels}",
        ]
        if self.fusion_groups:
            lines.append(f"  fusion groups:    {self.fusion_groups}")
        if self.tiled_kernels:
            lines.append(f"  tiled kernels:    {self.tiled_kernels}")
        for decision in self.decisions:
            lines.append(f"    - {decision}")
        return "\n".join(lines)

    def lowering_summary(self) -> str:
        """Per-nest engine-tier table (empty string if the pass didn't run)."""
        if not self.nest_lowerings:
            return ""
        lines = [f"engine lowering for {self.program!r}:"]
        lines.extend(f"  {nest.summary()}" for nest in self.nest_lowerings)
        return "\n".join(lines)

    def timing_summary(self) -> str:
        """Per-pass wall-time / IR-delta table (empty string if none)."""
        if not self.pass_timings:
            return ""
        total = sum(t.wall_time_s for t in self.pass_timings)
        lines = [f"pass pipeline for {self.program!r} ({total * 1e3:.3f} ms total):"]
        lines.extend(f"  {timing}" for timing in self.pass_timings)
        return "\n".join(lines)

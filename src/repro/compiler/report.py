"""Compilation report: what was detected, offloaded, fused, and why."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class KernelDecision:
    """The compiler's decision about one detected kernel."""

    scop: str
    statement: str
    kind: str
    offloaded: bool
    reason: str
    fused_with: list[str] = field(default_factory=list)
    estimated_macs_per_write: Optional[float] = None

    def __str__(self) -> str:
        action = "offloaded" if self.offloaded else "kept on host"
        extra = f" fused with {self.fused_with}" if self.fused_with else ""
        return f"{self.kind} kernel {self.statement} ({self.scop}): {action} — {self.reason}{extra}"


@dataclass
class CompilationReport:
    """Summary of one TDO-CIM compilation."""

    program: str = ""
    scop_count: int = 0
    decisions: list[KernelDecision] = field(default_factory=list)
    fusion_groups: list[list[str]] = field(default_factory=list)
    tiled_kernels: list[str] = field(default_factory=list)
    runtime_calls_emitted: list[str] = field(default_factory=list)

    @property
    def detected_kernels(self) -> int:
        return len(self.decisions)

    @property
    def offloaded_kernels(self) -> int:
        return sum(1 for d in self.decisions if d.offloaded)

    def summary(self) -> str:
        lines = [
            f"TDO-CIM compilation of {self.program!r}:",
            f"  SCoPs detected:   {self.scop_count}",
            f"  kernels detected: {self.detected_kernels}",
            f"  kernels offloaded: {self.offloaded_kernels}",
        ]
        if self.fusion_groups:
            lines.append(f"  fusion groups:    {self.fusion_groups}")
        if self.tiled_kernels:
            lines.append(f"  tiled kernels:    {self.tiled_kernels}")
        for decision in self.decisions:
            lines.append(f"    - {decision}")
        return "\n".join(lines)

"""Compilation options (the ``-enable-loop-tactics`` family of flags)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CompileOptions:
    """Knobs of the TDO-CIM compilation flow.

    The defaults correspond to the paper's ``clang -O3 -march-native
    -enable-loop-tactics`` configuration: offloading enabled for every kernel
    kind the accelerator supports, kernel fusion enabled, and no selectivity
    (the paper offloads every detected kernel and reports a separate
    "selective" geometric mean that excludes the GEMV-like kernels).
    """

    #: Master switch; with offloading disabled the compiler only reports what
    #: it would have done (the plain ``-O3`` host baseline).
    enable_offload: bool = True
    #: Kernel kinds eligible for offloading.
    offload_kinds: tuple[str, ...] = ("gemm", "gemv", "conv2d")
    #: Fuse adjacent independent kernels into batched runtime calls.
    enable_fusion: bool = True
    #: Require fused kernels to share an input operand (endurance-oriented
    #: fusion only); by default sharing is exploited when present but not
    #: required.
    fusion_requires_shared_input: bool = False
    #: Apply the Listing 3 tiling + interchange to GEMMs whose operands do
    #: not fit the crossbar.  The micro-engine also tiles internally, so this
    #: is primarily an endurance/locality optimisation.
    enable_tiling: bool = False
    #: Crossbar geometry the compiler assumes for tiling decisions.
    crossbar_rows: int = 256
    crossbar_cols: int = 256
    #: Selective offloading: skip kernels whose estimated compute intensity
    #: (MACs per crossbar-cell write) is below this threshold.  ``None``
    #: disables the heuristic (the paper's default behaviour); the paper's
    #: "Selective Geomean" corresponds to a threshold of a few tens.
    min_macs_per_write: float | None = None
    #: Content-addressed kernel-compile cache: repeated ``compile_source()``
    #: calls with the same source, options and size hint return the cached
    #: :class:`~repro.compiler.driver.CompilationResult` instead of re-running
    #: the poly + tactics + transforms pipeline.  Cached results are shared
    #: objects — treat them as immutable (every existing consumer does).
    enable_compile_cache: bool = True
    #: Directory for on-disk cache persistence (``None`` keeps the cache
    #: in-memory only).  Entries are content-addressed pickles, so they are
    #: never stale and can be shared across processes.
    compile_cache_dir: str | None = None
    #: Execution engine for the host-side IR: ``"fast"`` (slice-folded
    #: NumPy kernels, bit-identical to the interpreter), ``"native"``
    #: (additionally compiles eligible nests to C via cffi, falling back
    #: to ``"fast"`` when no toolchain is present), ``"vectorized"``
    #: (broadcast-gather lowering), ``"interpreter"`` (the reference
    #: tree-walker), or ``"vectorized-fast"`` (einsum contraction
    #: lowering, reassociates floating-point sums).  Honoured
    #: automatically when the :class:`CompilationResult` is passed to
    #: :meth:`OffloadExecutor.run`; it does not change the generated code
    #: or any cost-model report.
    engine: str = "fast"
    #: Pass pipeline to run: a named pipeline (``"default"``, ``"no-fusion"``,
    #: ``"detect-only"``) or an explicit sequence of pass names (see
    #: :data:`repro.compiler.passes.PASS_REGISTRY`).  Part of the compile-cache
    #: fingerprint, so results from different pipelines never alias.
    pipeline: str | tuple[str, ...] | list[str] = "default"
    #: Offload-selection policy applied by the ``select-offload`` pass:
    #: ``"threshold"`` (the paper's behaviour — kind filter plus the optional
    #: ``min_macs_per_write`` compute-intensity heuristic), ``"always"`` or
    #: ``"never"`` (ablation strategies).
    offload_policy: str = "threshold"
    #: Pass names after which the pass manager stores the printed IR into
    #: ``CompilationReport.ir_dumps`` (e.g. ``("isolate", "lower")``).
    dump_ir_after: tuple[str, ...] | list[str] = ()

    def __post_init__(self) -> None:
        from repro.compiler.passes.pipelines import PASS_REGISTRY, validate_pipeline
        from repro.compiler.passes.policy import validate_policy
        from repro.ir.engine import validate_engine

        validate_engine(self.engine)
        validate_pipeline(self.pipeline)
        validate_policy(self.offload_policy)
        for name in self.dump_ir_after:
            if name not in PASS_REGISTRY:
                raise ValueError(
                    f"unknown pass {name!r} in dump_ir_after; "
                    f"available passes: {sorted(PASS_REGISTRY)}"
                )

    def wants_kind(self, kind: str) -> bool:
        return kind in self.offload_kinds

    @staticmethod
    def host_only() -> "CompileOptions":
        """The ``-O3`` baseline: nothing is offloaded."""
        return CompileOptions(enable_offload=False)

    @staticmethod
    def selective(threshold: float = 32.0) -> "CompileOptions":
        """Offload only compute-intense kernels (GEMM-like)."""
        return CompileOptions(min_macs_per_write=threshold)

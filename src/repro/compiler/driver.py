"""The end-to-end TDO-CIM compilation pipeline (Figure 4)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence, Union

from repro.codegen.lowering import reassemble_program
from repro.compiler.cache import (
    KernelCompileCache,
    compile_fingerprint,
    get_default_cache,
)
from repro.compiler.options import CompileOptions
from repro.compiler.report import CompilationReport, KernelDecision
from repro.frontend.parser import parse_program
from repro.ir.normalize import normalize_reductions
from repro.ir.program import Program
from repro.ir.stmt import Stmt
from repro.poly.astgen import generate_ir
from repro.poly.schedule_build import build_schedule_tree
from repro.poly.schedule_tree import DomainNode
from repro.poly.scop import Scop, detect_scops
from repro.tactics.patterns import KernelMatch, find_all_kernels
from repro.tactics.patterns.gemm import GemmMatch
from repro.transforms.device_map import DeviceMappingResult, map_kernels_to_cim
from repro.transforms.distribution import isolate_match
from repro.transforms.fusion import FusionGroup, find_fusable_groups
from repro.transforms.tiling import TilingError, tile_gemm_for_crossbar


@dataclass
class CompilationResult:
    """Everything produced by one compiler invocation."""

    source_program: Program
    program: Program
    report: CompilationReport
    scops: list[Scop] = field(default_factory=list)
    trees: list[DomainNode] = field(default_factory=list)
    matches: list[KernelMatch] = field(default_factory=list)
    mappings: list[DeviceMappingResult] = field(default_factory=list)
    #: The options this result was compiled with.  The executor reads the
    #: ``engine`` choice from here when a result is passed to ``run``.
    options: Optional[CompileOptions] = None

    @property
    def offloaded(self) -> bool:
        return any(mapping.any_offloaded for mapping in self.mappings)


class TdoCimCompiler:
    """Transparent detection and offloading for computation in-memory."""

    def __init__(
        self,
        options: Optional[CompileOptions] = None,
        cache: Optional[KernelCompileCache] = None,
    ):
        self.options = options or CompileOptions()
        if cache is not None:
            self.cache: Optional[KernelCompileCache] = cache
        elif not self.options.enable_compile_cache:
            self.cache = None
        elif self.options.compile_cache_dir is not None:
            self.cache = KernelCompileCache(
                disk_dir=self.options.compile_cache_dir
            )
        else:
            self.cache = get_default_cache()

    # ------------------------------------------------------------------
    def compile(
        self,
        source: Union[str, Program],
        size_hint: Optional[Mapping[str, int | float]] = None,
    ) -> CompilationResult:
        """Compile mini-C source (or an IR program) for the CIM system.

        ``size_hint`` optionally provides concrete problem sizes so the
        selective-offloading heuristic can estimate compute intensity; it
        does not specialise the generated code.

        With ``options.enable_compile_cache`` (the default) the result is
        memoised by content fingerprint — see :mod:`repro.compiler.cache`.
        """
        key: Optional[str] = None
        if self.cache is not None:
            key = compile_fingerprint(source, self.options, size_hint)
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        result = self._compile_uncached(source, size_hint)
        if key is not None:
            # Snapshot the options so a caller mutating theirs after the
            # fact cannot change the cached artifact under its old key.
            result.options = replace(self.options)
            self.cache.put(key, result)
        return result

    def _compile_uncached(
        self,
        source: Union[str, Program],
        size_hint: Optional[Mapping[str, int | float]] = None,
    ) -> CompilationResult:
        program = parse_program(source) if isinstance(source, str) else source
        program = normalize_reductions(program)
        options = self.options
        report = CompilationReport(program=program.name)

        scops = detect_scops(program)
        report.scop_count = len(scops)
        result = CompilationResult(
            source_program=program,
            program=program,
            report=report,
            scops=scops,
            options=options,
        )
        if not scops or not options.enable_offload:
            # Nothing to do: the "compiled" program is the input program.
            for scop in scops:
                tree = build_schedule_tree(scop)
                result.trees.append(tree)
                for match in find_all_kernels(scop, tree):
                    result.matches.append(match)
                    report.decisions.append(
                        KernelDecision(
                            scop=scop.name,
                            statement=match.update_stmt,
                            kind=match.kind,
                            offloaded=False,
                            reason="offloading disabled",
                        )
                    )
            return result

        replacements: list[tuple[Scop, list[Stmt]]] = []
        anything_offloaded = False
        for scop in scops:
            tree = build_schedule_tree(scop)
            result.trees.append(tree)
            matches = find_all_kernels(scop, tree)
            result.matches.extend(matches)

            selected, decisions = self._select(scop, matches, size_hint)

            # Isolate each selected kernel into its own loop nest (loop
            # distribution); kernels that cannot be isolated legally stay on
            # the host.
            isolated: list[KernelMatch] = []
            for match in selected:
                if isolate_match(tree, match):
                    isolated.append(match)
                else:
                    for decision in decisions:
                        if decision.statement == match.update_stmt:
                            decision.offloaded = False
                            decision.reason = (
                                "kernel shares its loop nest with other statements "
                                "and loop distribution is not legal"
                            )
            selected = isolated
            report.decisions.extend(decisions)

            groups: list[FusionGroup] = []
            if options.enable_fusion and len(selected) > 1:
                groups = find_fusable_groups(
                    scop,
                    selected,
                    require_shared_input=options.fusion_requires_shared_input,
                )
                for group in groups:
                    names = [m.update_stmt for m in group.matches]
                    report.fusion_groups.append(names)
                    for decision in report.decisions:
                        if decision.statement in names:
                            decision.fused_with = [
                                n for n in names if n != decision.statement
                            ]

            if options.enable_tiling:
                for match in selected:
                    if isinstance(match, GemmMatch):
                        try:
                            tile_gemm_for_crossbar(
                                tree,
                                match,
                                options.crossbar_rows,
                                options.crossbar_cols,
                            )
                            report.tiled_kernels.append(match.update_stmt)
                        except TilingError:
                            # Imperfect nests (init statement inside) are left
                            # untiled; the micro-engine still tiles internally.
                            pass

            if selected:
                mapping = map_kernels_to_cim(tree, selected, groups)
                result.mappings.append(mapping)
                anything_offloaded = anything_offloaded or mapping.any_offloaded
                report.runtime_calls_emitted.extend(
                    m.call_name for m in mapping.mappings
                )
            replacements.append((scop, generate_ir(tree)))

        compiled = reassemble_program(
            program, replacements, add_init_call=anything_offloaded
        )
        result.program = compiled
        return result

    # ------------------------------------------------------------------
    def _select(
        self,
        scop: Scop,
        matches: Sequence[KernelMatch],
        size_hint: Optional[Mapping[str, int | float]],
    ) -> tuple[list[KernelMatch], list[KernelDecision]]:
        """Apply the offloading policy to the detected kernels."""
        options = self.options
        selected: list[KernelMatch] = []
        decisions: list[KernelDecision] = []
        for match in matches:
            intensity = self._estimated_intensity(match, size_hint)
            if not options.wants_kind(match.kind):
                decisions.append(
                    KernelDecision(
                        scop=scop.name,
                        statement=match.update_stmt,
                        kind=match.kind,
                        offloaded=False,
                        reason=f"kind {match.kind!r} excluded by options",
                        estimated_macs_per_write=intensity,
                    )
                )
                continue
            if (
                options.min_macs_per_write is not None
                and intensity is not None
                and intensity < options.min_macs_per_write
            ):
                decisions.append(
                    KernelDecision(
                        scop=scop.name,
                        statement=match.update_stmt,
                        kind=match.kind,
                        offloaded=False,
                        reason=(
                            f"compute intensity {intensity:.1f} MACs/write below "
                            f"threshold {options.min_macs_per_write:.1f}"
                        ),
                        estimated_macs_per_write=intensity,
                    )
                )
                continue
            selected.append(match)
            decisions.append(
                KernelDecision(
                    scop=scop.name,
                    statement=match.update_stmt,
                    kind=match.kind,
                    offloaded=True,
                    reason="pattern matched by Loop Tactics",
                    estimated_macs_per_write=intensity,
                )
            )
        return selected, decisions

    @staticmethod
    def _estimated_intensity(
        match: KernelMatch, size_hint: Optional[Mapping[str, int | float]]
    ) -> Optional[float]:
        """MACs per crossbar-cell write, estimated from the size hint."""
        if size_hint is None:
            return None
        try:
            if match.kind == "gemm":
                macs = (
                    match.extent("i", dict(size_hint))
                    * match.extent("j", dict(size_hint))
                    * match.extent("k", dict(size_hint))
                )
                writes = match.extent("i", dict(size_hint)) * match.extent(
                    "k", dict(size_hint)
                )
            elif match.kind == "gemv":
                macs = match.extent("i", dict(size_hint)) * match.extent(
                    "j", dict(size_hint)
                )
                writes = macs  # every matrix element is written and used once
            elif match.kind == "conv2d":
                out = match.extent("i", dict(size_hint)) * match.extent(
                    "j", dict(size_hint)
                )
                taps = match.extent("p", dict(size_hint)) * match.extent(
                    "q", dict(size_hint)
                )
                macs = out * taps
                writes = taps
            else:
                return None
        except Exception:
            return None
        if writes == 0:
            return None
        return macs / writes


def compile_source(
    source: Union[str, Program],
    options: Optional[CompileOptions] = None,
    size_hint: Optional[Mapping[str, int | float]] = None,
    cache: Optional[KernelCompileCache] = None,
) -> CompilationResult:
    """Convenience wrapper: ``TdoCimCompiler(options).compile(source)``.

    ``cache`` overrides the compile cache instance and wins over
    ``options.enable_compile_cache`` (the process-wide default cache is
    used otherwise; pass ``options`` with ``enable_compile_cache=False``
    and no explicit ``cache`` to bypass caching entirely).

    Standard memoisation contract: a cache hit returns the *same*
    :class:`CompilationResult` object as the original compile — do not
    mutate it (or its program/report) in place; recompile with caching
    disabled if you need a private copy to modify.
    """
    return TdoCimCompiler(options, cache=cache).compile(source, size_hint=size_hint)

"""The end-to-end TDO-CIM compilation driver (Figure 4).

:class:`TdoCimCompiler` is a thin wrapper around the pass-manager subsystem
(:mod:`repro.compiler.passes`): it resolves ``CompileOptions.pipeline``
into a :class:`~repro.compiler.passes.manager.PassManager`, threads a
:class:`~repro.compiler.passes.context.CompilationContext` through it, and
memoises the result in the content-addressed compile cache.  The pipeline
itself — parse → normalize → detect SCoPs → build schedule trees → match
kernels → select offload → isolate → fuse → tile → device-map → lower —
lives entirely in the pass classes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro.compiler.cache import (
    KernelCompileCache,
    compile_fingerprint,
    get_default_cache,
)
from repro.compiler.options import CompileOptions
from repro.compiler.passes.context import CompilationContext
from repro.compiler.passes.pipelines import build_pipeline
from repro.compiler.passes.policy import OffloadPolicy
from repro.compiler.report import CompilationReport
from repro.ir.program import Program
from repro.poly.schedule_tree import DomainNode
from repro.poly.scop import Scop
from repro.tactics.patterns import KernelMatch
from repro.transforms.device_map import DeviceMappingResult


@dataclass
class CompilationResult:
    """Everything produced by one compiler invocation."""

    source_program: Program
    program: Program
    report: CompilationReport
    scops: list[Scop] = field(default_factory=list)
    trees: list[DomainNode] = field(default_factory=list)
    matches: list[KernelMatch] = field(default_factory=list)
    mappings: list[DeviceMappingResult] = field(default_factory=list)
    #: The options this result was compiled with.  The executor reads the
    #: ``engine`` choice from here when a result is passed to ``run``.
    options: Optional[CompileOptions] = None
    #: Content fingerprint this result was cached under (``None`` when
    #: compiled with caching disabled).  Lets downstream consumers (e.g.
    #: the serving layer's batch signatures) reuse the hash instead of
    #: recomputing it per request.
    cache_key: Optional[str] = None

    @property
    def offloaded(self) -> bool:
        return any(mapping.any_offloaded for mapping in self.mappings)


class TdoCimCompiler:
    """Transparent detection and offloading for computation in-memory.

    ``policy`` optionally overrides the offload-selection strategy with an
    :class:`OffloadPolicy` *instance* (for experiments with unregistered
    strategies).  An instance override is not part of the compile-cache
    fingerprint, so it disables caching for this compiler; registered
    policies selected via ``options.offload_policy`` cache normally.
    """

    def __init__(
        self,
        options: Optional[CompileOptions] = None,
        cache: Optional[KernelCompileCache] = None,
        policy: Optional[OffloadPolicy] = None,
    ):
        self.options = options or CompileOptions()
        self.policy = policy
        if policy is not None:
            self.cache: Optional[KernelCompileCache] = None
        elif cache is not None:
            self.cache = cache
        elif not self.options.enable_compile_cache:
            self.cache = None
        elif self.options.compile_cache_dir is not None:
            self.cache = KernelCompileCache(
                disk_dir=self.options.compile_cache_dir
            )
        else:
            self.cache = get_default_cache()

    # ------------------------------------------------------------------
    def compile(
        self,
        source: Union[str, Program],
        size_hint: Optional[Mapping[str, int | float]] = None,
    ) -> CompilationResult:
        """Compile mini-C source (or an IR program) for the CIM system.

        ``size_hint`` optionally provides concrete problem sizes so the
        selective-offloading heuristic can estimate compute intensity; it
        does not specialise the generated code.

        With ``options.enable_compile_cache`` (the default) the result is
        memoised by content fingerprint — see :mod:`repro.compiler.cache`.
        The fingerprint covers every options field, including the pipeline
        description, so results from different pipelines never alias.
        """
        key: Optional[str] = None
        if self.cache is not None:
            key = compile_fingerprint(source, self.options, size_hint)
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        result = self._compile_uncached(source, size_hint, cache_key=key)
        if key is not None:
            # Snapshot the options so a caller mutating theirs after the
            # fact cannot change the cached artifact under its old key.
            # A deep copy: ``dataclasses.replace`` would share any mutable
            # field (e.g. a ``dump_ir_after`` list) with the caller.
            result.options = copy.deepcopy(self.options)
            self.cache.put(key, result)
        return result

    def _compile_uncached(
        self,
        source: Union[str, Program],
        size_hint: Optional[Mapping[str, int | float]] = None,
        cache_key: Optional[str] = None,
    ) -> CompilationResult:
        manager = build_pipeline(self.options.pipeline, policy=self.policy)
        ctx = CompilationContext(
            source=source,
            options=self.options,
            size_hint=size_hint,
            cache_key=cache_key,
        )
        manager.run(ctx)
        return _result_from_context(ctx)


def _result_from_context(ctx: CompilationContext) -> CompilationResult:
    """Fold a finished pass-pipeline context into the public result type."""
    program = ctx.program
    if program is None:
        raise ValueError(
            "pipeline produced no program — it must include the 'parse' pass"
        )
    source_program = ctx.source_program if ctx.source_program is not None else program
    return CompilationResult(
        source_program=source_program,
        program=program,
        report=ctx.report,
        scops=ctx.scops,
        trees=ctx.trees,
        matches=ctx.matches,
        mappings=ctx.mappings,
        options=ctx.options,
        cache_key=ctx.cache_key,
    )


def compile_source(
    source: Union[str, Program],
    options: Optional[CompileOptions] = None,
    size_hint: Optional[Mapping[str, int | float]] = None,
    cache: Optional[KernelCompileCache] = None,
) -> CompilationResult:
    """Convenience wrapper: ``TdoCimCompiler(options).compile(source)``.

    ``cache`` overrides the compile cache instance and wins over
    ``options.enable_compile_cache`` (the process-wide default cache is
    used otherwise; pass ``options`` with ``enable_compile_cache=False``
    and no explicit ``cache`` to bypass caching entirely).

    Standard memoisation contract: a cache hit returns the *same*
    :class:`CompilationResult` object as the original compile — do not
    mutate it (or its program/report) in place; recompile with caching
    disabled if you need a private copy to modify.
    """
    return TdoCimCompiler(options, cache=cache).compile(source, size_hint=size_hint)

"""Content-addressed kernel-compile cache.

Workload sweeps and serving loops compile the same mini-C kernels over and
over; the poly + tactics + transforms pipeline is pure (same source, same
options, same size hint → same result), so its output can be memoised.
:func:`compile_fingerprint` hashes the source (or the printed IR program),
the :class:`~repro.compiler.options.CompileOptions`, the size hint and the
package version (so a persisted entry from an older compiler pipeline is
never served by a newer one) into a stable content address; :class:`KernelCompileCache` maps those addresses
to :class:`~repro.compiler.driver.CompilationResult` objects with an
in-memory LRU, optionally persisted to disk so separate processes (e.g.
benchmark sweeps) share warm compiles.

Cache-control fields of ``CompileOptions`` (``enable_compile_cache``,
``compile_cache_dir``) are excluded from the fingerprint because they do
not affect the compiled artifact.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import fields
from pathlib import Path
from typing import Mapping, Optional, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: CompileOptions fields that steer caching itself, not the compiled output.
_CACHE_CONTROL_FIELDS = frozenset({"enable_compile_cache", "compile_cache_dir"})


def compile_fingerprint(
    source,
    options,
    size_hint: Optional[Mapping[str, Union[int, float]]] = None,
) -> str:
    """Stable content address of one compiler invocation.

    ``source`` may be mini-C text or an IR :class:`~repro.ir.program.Program`
    (hashed via its printed form, so later mutation of a program object
    yields a different key).
    """
    from repro import __version__

    if not isinstance(source, str):
        from repro.ir.printer import to_source

        source = to_source(source)
    option_items = tuple(
        (f.name, repr(getattr(options, f.name)))
        for f in fields(options)
        if f.name not in _CACHE_CONTROL_FIELDS
    )
    hint_items = tuple(
        sorted((str(k), float(v)) for k, v in (size_hint or {}).items())
    )
    # The package version salts the key so persisted entries from an older
    # compiler pipeline are never served by a newer one.
    payload = repr((__version__, source, option_items, hint_items)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@contextmanager
def _flock(lock_path: Path, timeout_s: float):
    """Advisory cross-process lock around the cache directory.

    Yields ``True`` while the lock is held, ``False`` when it could not
    be acquired within *timeout_s* (or the platform has no ``fcntl``) —
    callers then degrade gracefully (a load becomes a miss, a store is
    skipped) instead of blocking a compile behind a stuck process.
    """
    if fcntl is None:
        # No advisory locking available; the atomic temp-file + rename
        # protocol still keeps individual entries consistent.
        yield True
        return
    try:
        handle = open(lock_path, "a+b")
    except OSError:
        yield False
        return
    held = False
    deadline = time.monotonic() + timeout_s
    try:
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                held = True
                break
            except OSError:
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.01)
        yield held
    finally:
        if held:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
        handle.close()


class KernelCompileCache:
    """LRU cache of compilation results, keyed by content fingerprint.

    ``capacity`` bounds the in-memory entries (least-recently-used entries
    are evicted first).  With ``disk_dir`` set, every stored result is also
    pickled to ``<disk_dir>/<key>.pkl`` and in-memory misses fall back to
    disk; disk I/O failures (unpicklable results, read-only filesystems)
    silently degrade to a miss, never an error.  A corrupt or truncated
    disk entry — a torn write from a crashed process, disk rot — also
    degrades to a miss, and is additionally *quarantined* (renamed to
    ``<key>.pkl.corrupt``, or unlinked if the rename fails) and counted in
    :attr:`disk_corruptions`, so the poisoned entry is read at most once
    and its slot becomes storable again.

    The cache is safe for concurrent use from multiple threads: one
    re-entrant lock serialises the LRU mutation and the hit/miss
    statistics (the serving layer shares a single cache between its
    submission path and any caller threads).  Disk I/O deliberately runs
    *outside* the lock — it can be slow — and relies on the atomic
    temp-file + rename protocol of :meth:`_disk_store` instead.  Entries
    are content-addressed, so two threads racing to ``put`` the same key
    store equivalent results and either may win.

    Across *processes*, disk reads and writes additionally take an
    advisory ``flock`` on ``<disk_dir>/.lock`` (POSIX only; a no-op
    elsewhere) so a store and the quarantine rename of a concurrent
    corrupt-entry read never interleave.  The lock is acquired with a
    bounded retry loop — if it cannot be taken within
    ``lock_timeout_s`` (a crashed or wedged holder), the operation
    degrades to a cache miss / skipped store, counted in
    :attr:`lock_timeouts`, and compilation proceeds uncached rather than
    blocking.
    """

    def __init__(
        self,
        capacity: int = 128,
        disk_dir: Optional[Union[str, Path]] = None,
        lock_timeout_s: float = 2.0,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if lock_timeout_s < 0:
            raise ValueError(
                f"lock_timeout_s must be >= 0, got {lock_timeout_s}"
            )
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.lock_timeout_s = lock_timeout_s
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        #: Corrupt/truncated disk entries found (and quarantined) so far.
        self.disk_corruptions = 0
        #: Disk operations skipped because the cross-process lock could
        #: not be acquired within ``lock_timeout_s``.
        self.lock_timeouts = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        path = self._disk_path(key)
        return path is not None and path.exists()

    def get(self, key: str):
        """Return the cached result for *key*, or ``None`` on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        # Disk I/O happens outside the lock (it can be slow); the insert
        # below re-acquires it.  A concurrent put of the same key is
        # harmless: content addressing makes both values equivalent.
        result = self._disk_load(key)
        with self._lock:
            if result is not None:
                self._insert(key, result)
                self.hits += 1
                return result
            self.misses += 1
            return None

    def put(self, key: str, result) -> None:
        """Store *result* under *key* (in memory, and on disk if enabled)."""
        with self._lock:
            self._insert(key, result)
        self._disk_store(key, result)

    def clear(self) -> None:
        """Drop the in-memory entries and hit/miss statistics (disk files,
        if any, are kept — they are content-addressed and never stale)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------
    def _insert(self, key: str, result) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key}.pkl"

    def _note_lock_timeout(self) -> None:
        with self._lock:
            self.lock_timeouts += 1

    def _disk_store(self, key: str, result) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with _flock(path.parent / ".lock", self.lock_timeout_s) as held:
                if not held:
                    self._note_lock_timeout()
                    return
                # A unique temp file per writer: concurrent processes
                # storing the same key must each install a complete pickle
                # atomically, never interleave into one shared temp file.
                fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
                tmp_name = None
        except Exception:
            # Persistence is best-effort: an unpicklable result or an
            # unwritable directory must not fail the compile.
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return

    def _disk_load(self, key: str):
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        with _flock(path.parent / ".lock", self.lock_timeout_s) as held:
            if not held:
                self._note_lock_timeout()
                return None  # degrade to a miss, never block a compile
            try:
                with open(path, "rb") as handle:
                    return pickle.load(handle)
            except FileNotFoundError:
                return None  # raced with another process; plain miss
            except Exception:
                # Corrupt or truncated entry (torn write by a crashed
                # process, disk rot, an incompatible pickle).  Quarantine
                # it so the poison is never re-read on every future miss
                # of this key — the entry degrades to one miss and the
                # slot becomes storable again.
                self._quarantine_corrupt(path)
                return None

    def _quarantine_corrupt(self, path: Path) -> None:
        with self._lock:
            self.disk_corruptions += 1
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            # Quarantine is best-effort (read-only dir, concurrent
            # unlink...); fall back to removing the bad entry outright.
            try:
                os.unlink(path)
            except OSError:
                pass

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"KernelCompileCache(entries={len(self._entries)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses}, disk={self.disk_dir})"
            )


#: Process-wide default cache used by :class:`TdoCimCompiler` when caching
#: is enabled and no explicit cache instance is given.
_default_cache = KernelCompileCache()


def get_default_cache() -> KernelCompileCache:
    return _default_cache


def clear_compile_cache() -> None:
    """Empty the process-wide default compile cache."""
    _default_cache.clear()

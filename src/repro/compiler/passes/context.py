"""The compilation state threaded through the pass pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro.compiler.report import CompilationReport, KernelDecision
from repro.ir.program import Program
from repro.poly.schedule_tree import DomainNode
from repro.poly.scop import Scop
from repro.tactics.patterns import KernelMatch
from repro.transforms.device_map import DeviceMappingResult
from repro.transforms.fusion import FusionGroup

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.options import CompileOptions


@dataclass
class CompilationContext:
    """Everything one compiler invocation knows, shared between passes.

    The context is created by the driver with the immutable inputs
    (``source``, ``options``, ``size_hint``, ``cache_key``) and is then
    populated stage by stage; the per-SCoP lists (``*_by_scop``) run
    parallel to :attr:`scops`/:attr:`trees`.  After the pipeline finishes,
    the driver folds the context into a
    :class:`~repro.compiler.driver.CompilationResult`.
    """

    # ------------------------------------------------------------------
    # Inputs (set once by the driver).
    source: Union[str, Program]
    options: "CompileOptions"
    size_hint: Optional[Mapping[str, int | float]] = None
    #: Content fingerprint of this invocation when compile caching is
    #: active (``None`` otherwise) — observability for tools and dumps.
    cache_key: Optional[str] = None

    # ------------------------------------------------------------------
    # State produced by the passes.
    #: The program after parsing/normalisation, then the compiled program
    #: once the lower pass reassembled the transformed SCoPs.
    program: Optional[Program] = None
    #: The (normalised) input program, kept for host-baseline costing.
    source_program: Optional[Program] = None
    report: CompilationReport = field(default_factory=CompilationReport)
    scops: list[Scop] = field(default_factory=list)
    trees: list[DomainNode] = field(default_factory=list)
    matches_by_scop: list[list[KernelMatch]] = field(default_factory=list)
    selected_by_scop: list[list[KernelMatch]] = field(default_factory=list)
    decisions_by_scop: list[list[KernelDecision]] = field(default_factory=list)
    groups_by_scop: list[list[FusionGroup]] = field(default_factory=list)
    mappings: list[DeviceMappingResult] = field(default_factory=list)
    anything_offloaded: bool = False

    #: ``size_hint`` converted to a plain dict exactly once, so repeated
    #: ``match.extent(...)`` calls do not rebuild it per lookup.
    size_hint_values: Optional[dict[str, int | float]] = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.size_hint is not None:
            self.size_hint_values = dict(self.size_hint)

    # ------------------------------------------------------------------
    @property
    def matches(self) -> list[KernelMatch]:
        """All kernel matches, flattened in SCoP order."""
        return [match for matches in self.matches_by_scop for match in matches]

    def selected_for(self, scop_index: int) -> list[KernelMatch]:
        if scop_index < len(self.selected_by_scop):
            return self.selected_by_scop[scop_index]
        return []

    def groups_for(self, scop_index: int) -> list[FusionGroup]:
        if scop_index < len(self.groups_by_scop):
            return self.groups_by_scop[scop_index]
        return []

"""Lowering: regenerate IR from the transformed trees and reassemble."""

from __future__ import annotations

from repro.compiler.passes.base import Pass
from repro.compiler.passes.context import CompilationContext
from repro.codegen.lowering import reassemble_program
from repro.ir.stmt import Stmt
from repro.poly.astgen import generate_ir
from repro.poly.scop import Scop


class LowerPass(Pass):
    """AST regeneration + program reassembly (the Polly codegen stage).

    With offloading disabled or no SCoP detected, the compiled program *is*
    the (normalised) input program — no regeneration happens, exactly as in
    the original monolithic driver, so the ``-O3`` host baseline round-trips
    the input byte-for-byte.
    """

    name = "lower"
    requires = ("device-mapping",)
    provides = ("lowered-program",)

    def run(self, ctx: CompilationContext) -> None:
        if not ctx.scops or not ctx.options.enable_offload:
            return
        replacements: list[tuple[Scop, list[Stmt]]] = [
            (scop, generate_ir(tree))
            for scop, tree in zip(ctx.scops, ctx.trees)
        ]
        ctx.program = reassemble_program(
            ctx.program, replacements, add_init_call=ctx.anything_offloaded
        )


class EngineLowerPass(Pass):
    """Classify every loop nest of the compiled program onto its engine tier.

    Runs the engine's lowering analysis (see
    :mod:`repro.ir.engine.lowering`) over the lowered program and attaches
    the per-nest report to ``CompilationReport.nest_lowerings`` — which
    tier (interpreter / vectorized / fold / native) each nest executes on
    and, for the slow tiers, the reason.  Pure analysis: the program is
    not modified, nothing is compiled or executed.  The native C lowering
    is attempted exactly when the selected engine is ``"native"``; code
    generation is pure, so the report is deterministic and safe to share
    through the on-disk compile cache even across machines without a C
    toolchain (the engine re-checks availability at run time).
    """

    name = "engine-lower"
    requires = ("lowered-program",)
    provides = ("engine-lowering",)

    def run(self, ctx: CompilationContext) -> None:
        from repro.ir.engine.lowering import program_lowering_report

        if ctx.program is None:
            return
        ctx.report.nest_lowerings = program_lowering_report(
            ctx.program, native=ctx.options.engine == "native"
        )

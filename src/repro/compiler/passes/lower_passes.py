"""Lowering: regenerate IR from the transformed trees and reassemble."""

from __future__ import annotations

from repro.compiler.passes.base import Pass
from repro.compiler.passes.context import CompilationContext
from repro.codegen.lowering import reassemble_program
from repro.ir.stmt import Stmt
from repro.poly.astgen import generate_ir
from repro.poly.scop import Scop


class LowerPass(Pass):
    """AST regeneration + program reassembly (the Polly codegen stage).

    With offloading disabled or no SCoP detected, the compiled program *is*
    the (normalised) input program — no regeneration happens, exactly as in
    the original monolithic driver, so the ``-O3`` host baseline round-trips
    the input byte-for-byte.
    """

    name = "lower"
    requires = ("device-mapping",)
    provides = ("lowered-program",)

    def run(self, ctx: CompilationContext) -> None:
        if not ctx.scops or not ctx.options.enable_offload:
            return
        replacements: list[tuple[Scop, list[Stmt]]] = [
            (scop, generate_ir(tree))
            for scop, tree in zip(ctx.scops, ctx.trees)
        ]
        ctx.program = reassemble_program(
            ctx.program, replacements, add_init_call=ctx.anything_offloaded
        )

"""Named pipelines and the pass registry.

Benchmarks and ablations select pipelines declaratively —
``CompileOptions(pipeline="no-fusion")`` — instead of toggling individual
feature flags.  A pipeline description is either the name of a predefined
pipeline or an explicit sequence of pass names; both resolve through
:data:`PASS_REGISTRY`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.compiler.passes.analysis_passes import MatchKernelsPass, SelectOffloadPass
from repro.compiler.passes.base import Pass, PipelineError
from repro.compiler.passes.frontend_passes import (
    BuildScheduleTreesPass,
    DetectScopsPass,
    NormalizeReductionsPass,
    ParsePass,
)
from repro.compiler.passes.lower_passes import EngineLowerPass, LowerPass
from repro.compiler.passes.manager import PassManager
from repro.compiler.passes.policy import OffloadPolicy
from repro.compiler.passes.transform_passes import (
    DeviceMapPass,
    FusionPass,
    IsolatePass,
    TilingPass,
)

PipelineDescription = Union[str, Sequence[str]]

#: Every built-in pass, keyed by its pipeline name.
PASS_REGISTRY: dict[str, type[Pass]] = {
    cls.name: cls
    for cls in (
        ParsePass,
        NormalizeReductionsPass,
        DetectScopsPass,
        BuildScheduleTreesPass,
        MatchKernelsPass,
        SelectOffloadPass,
        IsolatePass,
        FusionPass,
        TilingPass,
        DeviceMapPass,
        LowerPass,
        EngineLowerPass,
    )
}

_FRONT_HALF = (
    "parse",
    "normalize-reductions",
    "detect-scops",
    "build-schedule-trees",
    "match-kernels",
)

#: Predefined pipelines, selectable via ``CompileOptions.pipeline``.
NAMED_PIPELINES: dict[str, tuple[str, ...]] = {
    # The paper's Figure 4 flow.
    "default": _FRONT_HALF
    + (
        "select-offload",
        "isolate",
        "fusion",
        "tiling",
        "device-map",
        "lower",
        "engine-lower",
    ),
    # Ablation: everything except the endurance-oriented kernel fusion.
    "no-fusion": _FRONT_HALF
    + (
        "select-offload",
        "isolate",
        "tiling",
        "device-map",
        "lower",
        "engine-lower",
    ),
    # Analysis only: detect SCoPs and match kernels, transform nothing —
    # the compiled program is the (normalised) input program.
    "detect-only": _FRONT_HALF,
}


def resolve_pass_names(description: PipelineDescription) -> tuple[str, ...]:
    """Expand a pipeline description into the concrete pass-name sequence."""
    if isinstance(description, str):
        try:
            return NAMED_PIPELINES[description]
        except KeyError:
            raise PipelineError(
                f"unknown pipeline {description!r}; "
                f"named pipelines: {sorted(NAMED_PIPELINES)} "
                f"(or pass an explicit sequence of pass names)"
            ) from None
    names = tuple(description)
    for name in names:
        if name not in PASS_REGISTRY:
            raise PipelineError(
                f"unknown pass {name!r} in explicit pipeline {list(names)}; "
                f"available passes: {sorted(PASS_REGISTRY)}"
            )
    return names


def validate_pipeline(description: PipelineDescription) -> None:
    """Check a pipeline description (names only; ordering is checked by
    :class:`PassManager` when the pipeline is built)."""
    resolve_pass_names(description)


def build_pipeline(
    description: PipelineDescription = "default",
    policy: Optional[OffloadPolicy] = None,
) -> PassManager:
    """Instantiate a :class:`PassManager` for a pipeline description.

    ``policy`` optionally overrides the offload-selection strategy of the
    ``select-offload`` pass (otherwise ``CompileOptions.offload_policy`` is
    resolved at run time).
    """
    names = resolve_pass_names(description)
    passes: list[Pass] = []
    for name in names:
        if name == SelectOffloadPass.name:
            passes.append(SelectOffloadPass(policy=policy))
        else:
            passes.append(PASS_REGISTRY[name]())
    label = description if isinstance(description, str) else "+".join(names)
    return PassManager(passes, description=label)

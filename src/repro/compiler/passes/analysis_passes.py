"""Analysis passes: Loop Tactics matching and offload selection."""

from __future__ import annotations

from typing import Optional

from repro.compiler.passes.base import Pass
from repro.compiler.passes.context import CompilationContext
from repro.compiler.passes.policy import OffloadPolicy, resolve_policy
from repro.compiler.report import KernelDecision
from repro.tactics.patterns import find_all_kernels


class MatchKernelsPass(Pass):
    """Run the Loop Tactics matchers over every schedule tree."""

    name = "match-kernels"
    requires = ("schedule-trees",)
    provides = ("kernel-matches",)

    def run(self, ctx: CompilationContext) -> None:
        ctx.matches_by_scop = [
            find_all_kernels(scop, tree)
            for scop, tree in zip(ctx.scops, ctx.trees)
        ]


class SelectOffloadPass(Pass):
    """Apply the offloading policy to the detected kernels.

    The policy is a swappable :class:`OffloadPolicy` strategy — an explicit
    instance given at construction wins, otherwise the name in
    ``CompileOptions.offload_policy`` is resolved.  With
    ``options.enable_offload`` unset (the plain ``-O3`` host baseline) the
    policy is bypassed entirely and every kernel is reported as kept on the
    host, mirroring the original monolithic driver.
    """

    name = "select-offload"
    requires = ("kernel-matches",)
    provides = ("offload-selection",)

    def __init__(self, policy: Optional[OffloadPolicy] = None):
        self.policy = policy

    def run(self, ctx: CompilationContext) -> None:
        ctx.selected_by_scop = []
        ctx.decisions_by_scop = []
        if not ctx.options.enable_offload:
            for scop, matches in zip(ctx.scops, ctx.matches_by_scop):
                decisions = [
                    KernelDecision(
                        scop=scop.name,
                        statement=match.update_stmt,
                        kind=match.kind,
                        offloaded=False,
                        reason="offloading disabled",
                    )
                    for match in matches
                ]
                ctx.selected_by_scop.append([])
                ctx.decisions_by_scop.append(decisions)
                ctx.report.decisions.extend(decisions)
            return
        policy = self.policy or resolve_policy(ctx.options.offload_policy)
        for scop, matches in zip(ctx.scops, ctx.matches_by_scop):
            selected, decisions = policy.select(
                scop, matches, ctx.options, ctx.size_hint_values
            )
            ctx.selected_by_scop.append(selected)
            ctx.decisions_by_scop.append(decisions)
            ctx.report.decisions.extend(decisions)

"""Pass base class and pipeline-composition errors.

A :class:`Pass` is one stage of the TDO-CIM compilation flow.  It reads and
writes a shared :class:`~repro.compiler.passes.context.CompilationContext`
and declares its dataflow contract as two tuples of *facts*:

``requires``
    facts that must have been provided by an earlier pass (the pseudo-fact
    ``"source"`` is always available);
``provides``
    facts this pass establishes for later passes;
``conflicts``
    facts that must *not* have been provided yet — a too-late ordering
    (e.g. fusion after the kernels were already rewritten into runtime
    calls) would silently produce a report describing transformations the
    generated program does not contain.

The :class:`~repro.compiler.passes.manager.PassManager` checks the contract
when a pipeline is assembled, so an ill-ordered pipeline (e.g. tiling
before loop distribution) fails fast with a :class:`PipelineError` instead
of crashing mid-compile on a half-populated context.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.passes.context import CompilationContext


class PipelineError(ValueError):
    """An invalid pass pipeline: unknown pass/pipeline name or bad ordering."""


class Pass:
    """One stage of the compilation pipeline.

    Subclasses set :attr:`name` (the identifier used in explicit pipeline
    descriptions and ``CompileOptions.dump_ir_after``), declare
    :attr:`requires`/:attr:`provides`, and implement :meth:`run`.
    Passes must be stateless across invocations: all inter-pass state lives
    in the :class:`CompilationContext`.
    """

    name: ClassVar[str] = "<anonymous>"
    requires: ClassVar[tuple[str, ...]] = ()
    provides: ClassVar[tuple[str, ...]] = ()
    conflicts: ClassVar[tuple[str, ...]] = ()

    def run(self, ctx: "CompilationContext") -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

"""Offload-selection policies (the strategy behind the select-offload pass).

The paper's compiler offloads every kernel Loop Tactics matches, with an
optional compute-intensity threshold ("Selective Geomean").  That behaviour
is :class:`ThresholdPolicy`, the default.  :class:`AlwaysOffload` and
:class:`NeverOffload` are ablation strategies: they bypass the kind filter
and the intensity heuristic entirely, so benchmarks can bound what the
selection logic itself contributes.

A policy receives the matches of one SCoP and returns the selected subset
plus one :class:`~repro.compiler.report.KernelDecision` per match.  Custom
policies subclass :class:`OffloadPolicy` and are either registered under a
name (usable via ``CompileOptions.offload_policy``) or passed as an
instance to :class:`~repro.compiler.driver.TdoCimCompiler`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Mapping, Optional, Sequence

from repro.compiler.report import KernelDecision
from repro.tactics.patterns import KernelMatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.options import CompileOptions
    from repro.poly.scop import Scop


def estimated_intensity(
    match: KernelMatch,
    size_hint: Optional[Mapping[str, int | float]],
) -> tuple[Optional[float], Optional[str]]:
    """MACs per crossbar-cell write, estimated from the size hint.

    Returns ``(intensity, note)``: ``intensity`` is ``None`` when it cannot
    be estimated, and ``note`` explains why when the cause is an incomplete
    size hint (a missing loop-extent parameter), so the decision reason can
    surface it instead of silently dropping the heuristic.

    ``size_hint`` should already be a plain dict — callers convert once up
    front rather than per ``extent()`` lookup.
    """
    if size_hint is None:
        return None, None
    hints = size_hint if isinstance(size_hint, dict) else dict(size_hint)
    try:
        if match.kind == "gemm":
            macs = (
                match.extent("i", hints)
                * match.extent("j", hints)
                * match.extent("k", hints)
            )
            writes = match.extent("i", hints) * match.extent("k", hints)
        elif match.kind == "gemv":
            macs = match.extent("i", hints) * match.extent("j", hints)
            writes = macs  # every matrix element is written and used once
        elif match.kind == "conv2d":
            out = match.extent("i", hints) * match.extent("j", hints)
            taps = match.extent("p", hints) * match.extent("q", hints)
            macs = out * taps
            writes = taps
        else:
            return None, None
    except (KeyError, TypeError) as exc:
        # An extent parameter is absent from (or non-numeric in) the size
        # hint; anything else — a genuinely broken match — must propagate.
        return None, f"size hint missing extent: {exc}"
    if writes == 0:
        return None, None
    return macs / writes, None


class OffloadPolicy:
    """Strategy deciding which matched kernels are offloaded."""

    name: ClassVar[str] = "<anonymous>"

    def select(
        self,
        scop: "Scop",
        matches: Sequence[KernelMatch],
        options: "CompileOptions",
        size_hint: Optional[dict[str, int | float]],
    ) -> tuple[list[KernelMatch], list[KernelDecision]]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class ThresholdPolicy(OffloadPolicy):
    """The paper's selection: kind filter + optional intensity threshold."""

    name = "threshold"

    def select(self, scop, matches, options, size_hint):
        selected: list[KernelMatch] = []
        decisions: list[KernelDecision] = []
        for match in matches:
            intensity, note = estimated_intensity(match, size_hint)
            if not options.wants_kind(match.kind):
                decisions.append(
                    KernelDecision(
                        scop=scop.name,
                        statement=match.update_stmt,
                        kind=match.kind,
                        offloaded=False,
                        reason=f"kind {match.kind!r} excluded by options",
                        estimated_macs_per_write=intensity,
                    )
                )
                continue
            if (
                options.min_macs_per_write is not None
                and intensity is not None
                and intensity < options.min_macs_per_write
            ):
                decisions.append(
                    KernelDecision(
                        scop=scop.name,
                        statement=match.update_stmt,
                        kind=match.kind,
                        offloaded=False,
                        reason=(
                            f"compute intensity {intensity:.1f} MACs/write below "
                            f"threshold {options.min_macs_per_write:.1f}"
                        ),
                        estimated_macs_per_write=intensity,
                    )
                )
                continue
            reason = "pattern matched by Loop Tactics"
            if note is not None:
                reason = f"{reason} ({note})"
            selected.append(match)
            decisions.append(
                KernelDecision(
                    scop=scop.name,
                    statement=match.update_stmt,
                    kind=match.kind,
                    offloaded=True,
                    reason=reason,
                    estimated_macs_per_write=intensity,
                )
            )
        return selected, decisions


class AlwaysOffload(OffloadPolicy):
    """Ablation: offload every match, ignoring kind filter and threshold."""

    name = "always"

    def select(self, scop, matches, options, size_hint):
        selected: list[KernelMatch] = []
        decisions: list[KernelDecision] = []
        for match in matches:
            intensity, _ = estimated_intensity(match, size_hint)
            selected.append(match)
            decisions.append(
                KernelDecision(
                    scop=scop.name,
                    statement=match.update_stmt,
                    kind=match.kind,
                    offloaded=True,
                    reason="always-offload policy (ablation)",
                    estimated_macs_per_write=intensity,
                )
            )
        return selected, decisions


class NeverOffload(OffloadPolicy):
    """Ablation: keep every match on the host (detection still reported)."""

    name = "never"

    def select(self, scop, matches, options, size_hint):
        decisions = [
            KernelDecision(
                scop=scop.name,
                statement=match.update_stmt,
                kind=match.kind,
                offloaded=False,
                reason="never-offload policy (ablation)",
                estimated_macs_per_write=estimated_intensity(match, size_hint)[0],
            )
            for match in matches
        ]
        return [], decisions


#: Policies selectable by name via ``CompileOptions.offload_policy``.
POLICY_REGISTRY: dict[str, type[OffloadPolicy]] = {
    policy.name: policy
    for policy in (ThresholdPolicy, AlwaysOffload, NeverOffload)
}


def validate_policy(name: str) -> None:
    if name not in POLICY_REGISTRY:
        raise ValueError(
            f"unknown offload policy {name!r}; "
            f"available: {sorted(POLICY_REGISTRY)}"
        )


def resolve_policy(name: str) -> OffloadPolicy:
    validate_policy(name)
    return POLICY_REGISTRY[name]()

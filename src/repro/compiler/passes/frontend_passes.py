"""Front-of-pipeline passes: parse, normalise, detect SCoPs, build trees."""

from __future__ import annotations

from repro.compiler.passes.base import Pass
from repro.compiler.passes.context import CompilationContext
from repro.frontend.parser import parse_program
from repro.ir.normalize import normalize_reductions
from repro.ir.program import Program
from repro.poly.schedule_build import build_schedule_tree
from repro.poly.scop import detect_scops


class ParsePass(Pass):
    """Mini-C source → loop-nest IR (a no-op for IR-program inputs)."""

    name = "parse"
    requires = ()
    provides = ("program",)

    def run(self, ctx: CompilationContext) -> None:
        source = ctx.source
        ctx.program = parse_program(source) if isinstance(source, str) else source
        assert isinstance(ctx.program, Program)
        ctx.source_program = ctx.program
        ctx.report.program = ctx.program.name


class NormalizeReductionsPass(Pass):
    """Rewrite reductions into canonical ``+=`` form (Loop Tactics input)."""

    name = "normalize-reductions"
    requires = ("program",)
    provides = ("normalized-program",)

    def run(self, ctx: CompilationContext) -> None:
        ctx.program = normalize_reductions(ctx.program)
        ctx.source_program = ctx.program
        ctx.report.program = ctx.program.name


class DetectScopsPass(Pass):
    """Find the static control parts (the Polly SCoP-detection stage)."""

    name = "detect-scops"
    requires = ("normalized-program",)
    provides = ("scops",)

    def run(self, ctx: CompilationContext) -> None:
        ctx.scops = detect_scops(ctx.program)
        ctx.report.scop_count = len(ctx.scops)


class BuildScheduleTreesPass(Pass):
    """Construct one schedule tree per SCoP (the isl schedule stage)."""

    name = "build-schedule-trees"
    requires = ("scops",)
    provides = ("schedule-trees",)

    def run(self, ctx: CompilationContext) -> None:
        ctx.trees = [build_schedule_tree(scop) for scop in ctx.scops]

"""The pass manager: ordering validation + per-pass instrumentation."""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.compiler.passes.base import Pass, PipelineError
from repro.compiler.passes.context import CompilationContext
from repro.compiler.report import PassTiming
from repro.ir.printer import to_source
from repro.ir.program import Program


def _ir_size(program: Optional[Program]) -> int:
    """Lines of printed IR — the delta metric recorded per pass."""
    if program is None:
        return 0
    return len(to_source(program).splitlines())


class PassManager:
    """Owns pass ordering and executes a pipeline over one context.

    The dataflow contract (every pass's ``requires`` satisfied by an
    earlier pass's ``provides``) is validated at construction, so a broken
    pipeline fails before any compilation starts.  :meth:`run` records one
    :class:`~repro.compiler.report.PassTiming` per executed pass (wall time
    plus printed-IR size delta) into ``report.pass_timings`` and stores IR
    dumps for the passes named in ``CompileOptions.dump_ir_after``.
    """

    def __init__(self, passes: Sequence[Pass], description: Optional[str] = None):
        self.passes = list(passes)
        #: Human-readable pipeline description (a named pipeline, or the
        #: joined pass list for explicit pipelines).
        self.description = description or "+".join(p.name for p in self.passes)
        self._validate()

    # ------------------------------------------------------------------
    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def _validate(self) -> None:
        if not self.passes:
            raise PipelineError("a pass pipeline must contain at least one pass")
        available = {"source"}
        for index, pass_ in enumerate(self.passes):
            missing = [fact for fact in pass_.requires if fact not in available]
            if missing:
                raise PipelineError(
                    f"pass {pass_.name!r} (position {index}) requires "
                    f"{missing} which no earlier pass provides; "
                    f"pipeline order: {self.pass_names}"
                )
            too_late = [fact for fact in pass_.conflicts if fact in available]
            if too_late:
                raise PipelineError(
                    f"pass {pass_.name!r} (position {index}) must run before "
                    f"{too_late} is established, but an earlier pass already "
                    f"provides it; pipeline order: {self.pass_names}"
                )
            available.update(pass_.provides)

    # ------------------------------------------------------------------
    def run(self, ctx: CompilationContext) -> CompilationContext:
        dump_after = set(ctx.options.dump_ir_after or ())
        # Each boundary size is measured once and carried forward: pass N's
        # size_after is pass N+1's size_before (nothing runs in between).
        size_before = _ir_size(ctx.program)
        for pass_ in self.passes:
            started = time.perf_counter()
            pass_.run(ctx)
            elapsed = time.perf_counter() - started
            size_after = _ir_size(ctx.program)
            ctx.report.pass_timings.append(
                PassTiming(
                    name=pass_.name,
                    wall_time_s=elapsed,
                    ir_size_before=size_before,
                    ir_size_after=size_after,
                )
            )
            if pass_.name in dump_after:
                ctx.report.ir_dumps[pass_.name] = (
                    to_source(ctx.program) if ctx.program is not None else ""
                )
            size_before = size_after
        return ctx

    def __repr__(self) -> str:
        return f"PassManager({self.description!r}, passes={self.pass_names})"

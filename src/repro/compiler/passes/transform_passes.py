"""Transformation passes: loop distribution, fusion, tiling, device mapping."""

from __future__ import annotations

from repro.compiler.passes.base import Pass
from repro.compiler.passes.context import CompilationContext
from repro.tactics.patterns import KernelMatch
from repro.tactics.patterns.gemm import GemmMatch
from repro.transforms.device_map import map_kernels_to_cim
from repro.transforms.distribution import isolate_match
from repro.transforms.fusion import FusionGroup, find_fusable_groups
from repro.transforms.tiling import TilingError, tile_gemm_for_crossbar


class IsolatePass(Pass):
    """Isolate each selected kernel into its own loop nest.

    Loop distribution is attempted per kernel; kernels that cannot be
    legally isolated are dropped from the selection and their decision is
    flipped back to "kept on host" with the legality reason.
    """

    name = "isolate"
    requires = ("offload-selection",)
    provides = ("isolated-kernels",)

    def run(self, ctx: CompilationContext) -> None:
        for index, tree in enumerate(ctx.trees):
            selected = ctx.selected_for(index)
            decisions = ctx.decisions_by_scop[index]
            isolated: list[KernelMatch] = []
            for match in selected:
                if isolate_match(tree, match):
                    isolated.append(match)
                else:
                    for decision in decisions:
                        if decision.statement == match.update_stmt:
                            decision.offloaded = False
                            decision.reason = (
                                "kernel shares its loop nest with other statements "
                                "and loop distribution is not legal"
                            )
            ctx.selected_by_scop[index] = isolated


class FusionPass(Pass):
    """Group adjacent independent kernels into batched runtime calls."""

    name = "fusion"
    requires = ("isolated-kernels",)
    provides = ("fusion-groups",)
    # After device mapping the kernels are already runtime calls: fusing
    # then would report groups the generated program does not batch.
    conflicts = ("device-mapping",)

    def run(self, ctx: CompilationContext) -> None:
        ctx.groups_by_scop = []
        for index, scop in enumerate(ctx.scops):
            selected = ctx.selected_for(index)
            groups: list[FusionGroup] = []
            if ctx.options.enable_fusion and len(selected) > 1:
                groups = find_fusable_groups(
                    scop,
                    selected,
                    require_shared_input=ctx.options.fusion_requires_shared_input,
                )
                for group in groups:
                    names = [m.update_stmt for m in group.matches]
                    ctx.report.fusion_groups.append(names)
                    for decision in ctx.report.decisions:
                        if decision.statement in names:
                            decision.fused_with = [
                                n for n in names if n != decision.statement
                            ]
            ctx.groups_by_scop.append(groups)


class TilingPass(Pass):
    """Apply the Listing 3 crossbar-aware tiling to oversized GEMMs."""

    name = "tiling"
    requires = ("isolated-kernels",)
    provides = ("tiled-kernels",)
    # Tiling rewrites the kernels' band chains; once device mapping has
    # replaced those subtrees with runtime calls there is nothing to tile.
    conflicts = ("device-mapping",)

    def run(self, ctx: CompilationContext) -> None:
        if not ctx.options.enable_tiling:
            return
        for index, tree in enumerate(ctx.trees):
            for match in ctx.selected_for(index):
                if isinstance(match, GemmMatch):
                    try:
                        tile_gemm_for_crossbar(
                            tree,
                            match,
                            ctx.options.crossbar_rows,
                            ctx.options.crossbar_cols,
                        )
                        ctx.report.tiled_kernels.append(match.update_stmt)
                    except TilingError:
                        # Imperfect nests (init statement inside) are left
                        # untiled; the micro-engine still tiles internally.
                        pass


class DeviceMapPass(Pass):
    """Rewrite the selected kernels into CIM runtime calls in the trees."""

    name = "device-map"
    requires = ("isolated-kernels",)
    provides = ("device-mapping",)

    def run(self, ctx: CompilationContext) -> None:
        for index, tree in enumerate(ctx.trees):
            selected = ctx.selected_for(index)
            if not selected:
                continue
            mapping = map_kernels_to_cim(tree, selected, ctx.groups_for(index))
            ctx.mappings.append(mapping)
            ctx.anything_offloaded = ctx.anything_offloaded or mapping.any_offloaded
            ctx.report.runtime_calls_emitted.extend(
                m.call_name for m in mapping.mappings
            )

"""The pass-manager subsystem of the TDO-CIM compiler.

The Figure 4 flow is decomposed into small, composable passes threaded over
one :class:`CompilationContext`, mirroring the LLVM/Polly pass-manager
architecture the paper builds on:

``parse`` → ``normalize-reductions`` → ``detect-scops`` →
``build-schedule-trees`` → ``match-kernels`` → ``select-offload`` →
``isolate`` → ``fusion`` → ``tiling`` → ``device-map`` → ``lower``

The :class:`PassManager` validates pass ordering at construction, records
per-pass wall time and IR deltas into ``CompilationReport.pass_timings``,
and honours ``CompileOptions.dump_ir_after``.  Pipelines are selected
declaratively via ``CompileOptions.pipeline`` — a name from
:data:`NAMED_PIPELINES` or an explicit pass list — and offload selection is
a swappable :class:`OffloadPolicy` strategy.  See ``docs/compiler.md``.
"""

from repro.compiler.passes.analysis_passes import MatchKernelsPass, SelectOffloadPass
from repro.compiler.passes.base import Pass, PipelineError
from repro.compiler.passes.context import CompilationContext
from repro.compiler.passes.frontend_passes import (
    BuildScheduleTreesPass,
    DetectScopsPass,
    NormalizeReductionsPass,
    ParsePass,
)
from repro.compiler.passes.lower_passes import LowerPass
from repro.compiler.passes.manager import PassManager
from repro.compiler.passes.pipelines import (
    NAMED_PIPELINES,
    PASS_REGISTRY,
    build_pipeline,
    resolve_pass_names,
    validate_pipeline,
)
from repro.compiler.passes.policy import (
    POLICY_REGISTRY,
    AlwaysOffload,
    NeverOffload,
    OffloadPolicy,
    ThresholdPolicy,
    estimated_intensity,
    resolve_policy,
)
from repro.compiler.passes.transform_passes import (
    DeviceMapPass,
    FusionPass,
    IsolatePass,
    TilingPass,
)

__all__ = [
    "Pass",
    "PipelineError",
    "PassManager",
    "CompilationContext",
    "ParsePass",
    "NormalizeReductionsPass",
    "DetectScopsPass",
    "BuildScheduleTreesPass",
    "MatchKernelsPass",
    "SelectOffloadPass",
    "IsolatePass",
    "FusionPass",
    "TilingPass",
    "DeviceMapPass",
    "LowerPass",
    "OffloadPolicy",
    "ThresholdPolicy",
    "AlwaysOffload",
    "NeverOffload",
    "estimated_intensity",
    "resolve_policy",
    "POLICY_REGISTRY",
    "PASS_REGISTRY",
    "NAMED_PIPELINES",
    "build_pipeline",
    "resolve_pass_names",
    "validate_pipeline",
]

"""The TDO-CIM compiler driver (the paper's primary contribution).

:class:`TdoCimCompiler` chains the whole Figure 4 pipeline: mini-C front-end
→ SCoP detection → schedule-tree construction → Loop Tactics pattern
matching → kernel fusion → (optional) crossbar-aware tiling → device mapping
→ AST regeneration → program reassembly.  The output is a compiled program
whose offloaded kernels have been replaced by CIM runtime calls, plus a
report describing every decision the compiler made.

Because the pipeline is pure, repeated invocations are memoised by the
content-addressed :class:`~repro.compiler.cache.KernelCompileCache`
(:mod:`repro.compiler.cache`): an in-memory LRU keyed by a hash of the
source, the :class:`CompileOptions` and the size hint, with optional
on-disk persistence for cross-process workload sweeps.
"""

from repro.compiler.options import CompileOptions
from repro.compiler.report import CompilationReport, KernelDecision
from repro.compiler.cache import (
    KernelCompileCache,
    clear_compile_cache,
    compile_fingerprint,
    get_default_cache,
)
from repro.compiler.driver import TdoCimCompiler, CompilationResult, compile_source

__all__ = [
    "CompileOptions",
    "CompilationReport",
    "KernelDecision",
    "TdoCimCompiler",
    "CompilationResult",
    "compile_source",
    "KernelCompileCache",
    "compile_fingerprint",
    "get_default_cache",
    "clear_compile_cache",
]

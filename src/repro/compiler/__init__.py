"""The TDO-CIM compiler driver (the paper's primary contribution).

:class:`TdoCimCompiler` runs the whole Figure 4 pipeline: mini-C front-end
→ SCoP detection → schedule-tree construction → Loop Tactics pattern
matching → kernel fusion → (optional) crossbar-aware tiling → device mapping
→ AST regeneration → program reassembly.  The output is a compiled program
whose offloaded kernels have been replaced by CIM runtime calls, plus a
report describing every decision the compiler made.

The pipeline is a pass-manager subsystem (:mod:`repro.compiler.passes`):
composable :class:`Pass` stages over one :class:`CompilationContext`,
ordering validated at assembly, per-pass wall-time/IR-delta timings in
``CompilationReport.pass_timings``, swappable :class:`OffloadPolicy`
selection strategies, and named pipelines (``"default"``, ``"no-fusion"``,
``"detect-only"``) selectable via ``CompileOptions.pipeline``.

Because the pipeline is pure, repeated invocations are memoised by the
content-addressed :class:`~repro.compiler.cache.KernelCompileCache`
(:mod:`repro.compiler.cache`): an in-memory LRU keyed by a hash of the
source, the :class:`CompileOptions` and the size hint, with optional
on-disk persistence for cross-process workload sweeps.
"""

from repro.compiler.options import CompileOptions
from repro.compiler.report import CompilationReport, KernelDecision, PassTiming
from repro.compiler.cache import (
    KernelCompileCache,
    clear_compile_cache,
    compile_fingerprint,
    get_default_cache,
)
from repro.compiler.driver import TdoCimCompiler, CompilationResult, compile_source
from repro.compiler.passes import (
    NAMED_PIPELINES,
    AlwaysOffload,
    CompilationContext,
    NeverOffload,
    OffloadPolicy,
    Pass,
    PassManager,
    PipelineError,
    ThresholdPolicy,
    build_pipeline,
    resolve_pass_names,
)

__all__ = [
    "CompileOptions",
    "CompilationReport",
    "KernelDecision",
    "PassTiming",
    "TdoCimCompiler",
    "CompilationResult",
    "compile_source",
    "KernelCompileCache",
    "compile_fingerprint",
    "get_default_cache",
    "clear_compile_cache",
    "Pass",
    "PassManager",
    "PipelineError",
    "CompilationContext",
    "OffloadPolicy",
    "ThresholdPolicy",
    "AlwaysOffload",
    "NeverOffload",
    "NAMED_PIPELINES",
    "build_pipeline",
    "resolve_pass_names",
]

"""The TDO-CIM compiler driver (the paper's primary contribution).

:class:`TdoCimCompiler` chains the whole Figure 4 pipeline: mini-C front-end
→ SCoP detection → schedule-tree construction → Loop Tactics pattern
matching → kernel fusion → (optional) crossbar-aware tiling → device mapping
→ AST regeneration → program reassembly.  The output is a compiled program
whose offloaded kernels have been replaced by CIM runtime calls, plus a
report describing every decision the compiler made.
"""

from repro.compiler.options import CompileOptions
from repro.compiler.report import CompilationReport, KernelDecision
from repro.compiler.driver import TdoCimCompiler, CompilationResult, compile_source

__all__ = [
    "CompileOptions",
    "CompilationReport",
    "KernelDecision",
    "TdoCimCompiler",
    "CompilationResult",
    "compile_source",
]

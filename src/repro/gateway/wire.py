"""Typed request/response schema of the wall-clock gateway.

Requests and responses are dataclasses with a JSON wire format — one
object per message, array payloads carried as base64 bytes with a sha256
content hash, exactly the encoding of the trace layer
(:func:`repro.trace.schema.encode_array` / :func:`~repro.trace.schema.decode_array`).
The shared encoding is deliberate: a recorded trace's ``submit`` events
*are* valid gateway request bodies, which is what lets the load generator
replay recordings and the differential drive the same bytes through both
serving modes.

The wire format crosses a process boundary (gateway process → pool
worker → gateway process), so decoding is defensive: malformed messages
raise :class:`WireFormatError` — a worker never crashes on a bad frame,
it answers with a failed response — and every array payload is verified
against its content hash on both sides of the pipe.

``GatewayRequest.fault`` is the gateway's deterministic fault-injection
seam (the wall-clock analogue of the fleet's seeded
:class:`~repro.fleet.faults.FaultPlan`): a marker that makes the worker
process die at a precise point of the request's service.  The pool
strips the marker when it retries the request on a surviving worker, so
one marker means exactly one worker death.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.trace.schema import TraceFormatError, decode_array, encode_array

#: Fault markers a request may carry (see module docstring).
#:
#: * ``die-before-dispatch`` — the worker process exits before any work
#:   happens (a kill while the request sat at the head of its queue);
#: * ``die-mid-request`` — the worker performs the full dispatch (the
#:   device physically works) and exits before the response leaves the
#:   process (a kill mid-request: the computed outputs are lost);
#: * ``hang`` — the worker wedges before any work happens and never
#:   answers (the shape the gateway's hang watchdog must catch);
#: * ``slow`` / ``slow:<seconds>`` — the worker stalls for
#:   :data:`SLOW_FAULT_DELAY_S` (or the given delay) and then serves the
#:   request normally (deadline pressure without losing work);
#: * ``corrupt-frame`` — the worker serves the request and then ships a
#:   deliberately mangled response frame (undecodable JSON), the
#:   byzantine shape the gateway's defensive collector must absorb.
FAULT_MARKERS = (
    "die-before-dispatch",
    "die-mid-request",
    "hang",
    "slow",
    "corrupt-frame",
)

#: Default stall of a plain ``slow`` fault marker (seconds).
SLOW_FAULT_DELAY_S = 0.25


def validate_fault_marker(fault: Optional[str]) -> None:
    """Raise :class:`WireFormatError` for an unknown fault marker
    (``None``, a known marker, or ``slow:<seconds>`` are accepted)."""
    if fault is None or fault in FAULT_MARKERS:
        return
    if fault.startswith("slow:"):
        try:
            delay_s = float(fault[len("slow:"):])
        except ValueError:
            delay_s = -1.0
        if delay_s >= 0.0:
            return
    raise WireFormatError(
        f"request: unknown fault marker {fault!r} (known: {FAULT_MARKERS}, "
        "or 'slow:<seconds>')"
    )


def slow_fault_delay_s(fault: Optional[str]) -> Optional[float]:
    """The stall a ``slow`` fault marker requests, or ``None`` for other
    markers."""
    if fault == "slow":
        return SLOW_FAULT_DELAY_S
    if fault is not None and fault.startswith("slow:"):
        return float(fault[len("slow:"):])
    return None

#: Exit code a worker uses for injected deaths (mirrors SIGKILL's 128+9).
FAULT_EXIT_CODE = 137


class WireFormatError(RuntimeError):
    """A gateway wire message violates the schema: missing fields, a
    payload whose bytes do not match their recorded sha256, an unknown
    status or fault marker.  Raised by the decoders before any state is
    touched — a bad frame is rejected whole."""


def _require(mapping: Mapping, key: str, where: str):
    try:
        return mapping[key]
    except KeyError:
        raise WireFormatError(f"{where}: missing field {key!r}") from None


def _decode_payloads(payloads, where: str) -> dict[str, np.ndarray]:
    if not isinstance(payloads, dict):
        raise WireFormatError(f"{where}: array payloads must be an object")
    try:
        return {
            name: decode_array(payload, where=f"{where} array {name!r}")
            for name, payload in payloads.items()
        }
    except TraceFormatError as exc:
        raise WireFormatError(str(exc)) from exc


# ----------------------------------------------------------------------
@dataclass
class GatewayRequest:
    """One offload request on the wire (gateway → worker)."""

    request_id: int
    tenant: str
    source: str                        # mini-C kernel source
    params: dict[str, float] = field(default_factory=dict)
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    #: Execution attempt (1 = first dispatch; bumped by pool retries).
    attempt: int = 1
    #: Deterministic fault-injection marker (see :data:`FAULT_MARKERS`).
    fault: Optional[str] = None
    #: Absolute gateway-clock deadline (seconds on the gateway's
    #: ``WallClock``; ``None`` = no deadline).  The gateway sheds the
    #: request if the deadline passes before dispatch and fails it with
    #: status ``deadline-exceeded`` if it expires in flight.
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise WireFormatError("request: tenant name must be non-empty")
        if not isinstance(self.source, str) or not self.source.strip():
            raise WireFormatError("request: kernel source must be a non-empty string")
        validate_fault_marker(self.fault)
        if self.deadline_s is not None:
            deadline_s = float(self.deadline_s)
            if not math.isfinite(deadline_s):
                raise WireFormatError(
                    f"request: deadline_s must be finite, got {self.deadline_s!r}"
                )
            self.deadline_s = deadline_s

    # -- wire codec -----------------------------------------------------
    def to_wire(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "source": self.source,
            "params": {key: _plain(value) for key, value in self.params.items()},
            "arrays": {
                name: encode_array(np.asarray(value))
                for name, value in self.arrays.items()
            },
            "attempt": self.attempt,
            "fault": self.fault,
            "deadline_s": self.deadline_s,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_wire(), separators=(",", ":"))

    @classmethod
    def from_wire(cls, wire: Mapping) -> "GatewayRequest":
        if not isinstance(wire, Mapping):
            raise WireFormatError("request: wire frame is not an object")
        return cls(
            request_id=int(_require(wire, "request_id", "request")),
            tenant=_require(wire, "tenant", "request"),
            source=_require(wire, "source", "request"),
            params=dict(_require(wire, "params", "request")),
            arrays=_decode_payloads(_require(wire, "arrays", "request"), "request"),
            attempt=int(wire.get("attempt", 1)),
            fault=wire.get("fault"),
            deadline_s=wire.get("deadline_s"),
        )

    @classmethod
    def from_json(cls, text: str) -> "GatewayRequest":
        try:
            wire = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WireFormatError(f"request: corrupt JSON frame ({exc.msg})") from exc
        return cls.from_wire(wire)


# ----------------------------------------------------------------------
#: Terminal statuses a response may carry: the serving tier's vocabulary
#: plus ``deadline-exceeded`` (the request's deadline passed before
#: dispatch, or expired while it was in flight).
RESPONSE_STATUSES = ("completed", "failed", "rejected", "deadline-exceeded")

#: Per-request measured-usage counters shipped back over the wire.  These
#: are exactly the billing fields of
#: :class:`~repro.serve.accounting.RequestUsage` that are a pure function
#: of the request (independent of clock mode), which is what the
#: wall-clock vs VirtualClock differential compares bit-for-bit.
USAGE_FIELDS = (
    "service_s",
    "host_energy_j",
    "offload_energy_j",
    "accelerator_energy_j",
    "crossbar_cell_writes",
    "crossbar_write_ops",
    "gemv_count",
    "macs",
    "dma_bytes",
)


@dataclass
class GatewayResponse:
    """One served request on the wire (worker → gateway)."""

    request_id: int
    tenant: str
    status: str                        # "completed" | "failed" | "rejected"
    worker_id: int
    attempt: int = 1
    reason: Optional[str] = None       # failure/rejection reason
    #: Full result arrays of a completed request (bit-identity currency).
    result: dict[str, np.ndarray] = field(default_factory=dict)
    #: Measured billing counters of the dispatch (see :data:`USAGE_FIELDS`).
    usage: dict[str, float] = field(default_factory=dict)
    #: Host energy of the lease-buffer releases (ledger housekeeping).
    housekeeping_energy_j: list[float] = field(default_factory=list)
    #: Worker-cumulative physical accelerator totals *after* this request
    #: (the partition-check currency; survives the worker's death).
    physical: dict[str, float] = field(default_factory=dict)
    #: Shared compile-cache deltas of this request (hits, misses).
    compile_hits: int = 0
    compile_misses: int = 0
    #: Wall-clock milestones, filled in by the gateway (not the worker).
    submitted_s: Optional[float] = None
    dispatched_s: Optional[float] = None
    completed_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise WireFormatError(
                f"response: unknown status {self.status!r} "
                f"(known: {RESPONSE_STATUSES})"
            )

    @property
    def latency_s(self) -> Optional[float]:
        """Real (wall-clock) submit-to-completion latency."""
        if self.completed_s is None or self.submitted_s is None:
            return None
        return self.completed_s - self.submitted_s

    # -- wire codec -----------------------------------------------------
    def to_wire(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "status": self.status,
            "worker_id": self.worker_id,
            "attempt": self.attempt,
            "reason": self.reason,
            "result": {
                name: encode_array(np.asarray(value))
                for name, value in self.result.items()
            },
            "usage": dict(self.usage),
            "housekeeping_energy_j": list(self.housekeeping_energy_j),
            "physical": dict(self.physical),
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_wire(), separators=(",", ":"))

    @classmethod
    def from_wire(cls, wire: Mapping) -> "GatewayResponse":
        if not isinstance(wire, Mapping):
            raise WireFormatError("response: wire frame is not an object")
        return cls(
            request_id=int(_require(wire, "request_id", "response")),
            tenant=_require(wire, "tenant", "response"),
            status=_require(wire, "status", "response"),
            worker_id=int(_require(wire, "worker_id", "response")),
            attempt=int(wire.get("attempt", 1)),
            reason=wire.get("reason"),
            result=_decode_payloads(wire.get("result", {}), "response"),
            usage=dict(wire.get("usage", {})),
            housekeeping_energy_j=list(wire.get("housekeeping_energy_j", [])),
            physical=dict(wire.get("physical", {})),
            compile_hits=int(wire.get("compile_hits", 0)),
            compile_misses=int(wire.get("compile_misses", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "GatewayResponse":
        try:
            wire = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WireFormatError(f"response: corrupt JSON frame ({exc.msg})") from exc
        return cls.from_wire(wire)


def _plain(value):
    """Coerce numpy scalars to JSON-native Python numbers."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value

"""The gateway's headline correctness gate: wall-clock vs ``VirtualClock``.

The same recorded trace is driven through both serving modes —

* the **reference**: a fresh simulated :class:`~repro.serve.server.CimServer`
  on a ``VirtualClock``, rebuilt from the trace header but with
  ``max_batch_size=1`` (the gateway's pool parallelises across processes
  and never batches inside a device, so the accounting-comparable
  reference is the unbatched one) and admission quotas disabled
  (rejections are load-dependent by design: they depend on *when*
  requests arrive relative to dispatch, which is exactly what wall-clock
  mode changes — so the differential disables them in both modes and
  covers the completed/failed paths);
* the **gateway**: the wall-clock process pool of
  :class:`~repro.gateway.server.AsyncGateway`, fed the same submissions
  in the same order.

and the runs must agree **bit-for-bit**: per-request status, failure
reason and result array bytes; per-request measured usage (every billing
counter, floats by exact ``==`` — the JSON wire round-trips doubles
exactly); per-tenant bills (``fsum`` energies by exact equality — fsum
is correctly rounded and therefore independent of completion order); and
the aggregate accounting partition on both sides.  This holds because a
request's usage is a pure function of the request: leases are scrubbed,
device buffers are released between requests (deterministic CMA address
reuse), and — the keystone — both modes serve every request through the
same :func:`~repro.gateway.worker.serve_one` path under *measurement
isolation* (stats ledgers and buffer-handle numbering reset per request),
so the measured deltas are exact values rather than differences against
a cumulative float ledger.  *Which* worker serves a request, and *when*,
therefore cannot change what it computes or bills.

As a third leg, completed gateway results are cross-checked against the
recording's own response events (batching never changes values — the PR 4
server invariant), tying the differential back to the original run.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.gateway.server import AsyncGateway, GatewayConfig
from repro.gateway.wire import USAGE_FIELDS, GatewayRequest, GatewayResponse
from repro.trace.schema import (
    Trace,
    TraceFormatError,
    decode_array,
    decode_compile_options,
)

#: Sections the differential compares, in report order.
DIFF_SECTIONS = (
    "responses",
    "usage",
    "tenant_bills",
    "accounting",
    "recorded_responses",
)

#: Tenant-bill fields compared between the two modes (integer counters by
#: ``==``, fsum energies by exact float equality).
BILL_FIELDS = (
    "completed",
    "rejected",
    "wear_bytes",
    "crossbar_write_ops",
    "gemv_count",
    "macs",
    "dma_bytes",
    "energy_j",
    "accelerator_energy_j",
    "service_s",
)


@dataclass
class GatewayDiff:
    """Every way the two modes disagree, by section; empty == pass."""

    mismatches: dict[str, list[str]] = field(
        default_factory=lambda: {section: [] for section in DIFF_SECTIONS}
    )

    @property
    def identical(self) -> bool:
        return not any(self.mismatches.values())

    def add(self, section: str, message: str) -> None:
        self.mismatches.setdefault(section, []).append(message)

    def count(self) -> int:
        return sum(len(entries) for entries in self.mismatches.values())

    def summary(self) -> str:
        if self.identical:
            return (
                "wall-clock and VirtualClock modes are identical "
                "(bit-for-bit responses and accounting)"
            )
        lines = [f"serving modes differ: {self.count()} mismatch(es)"]
        for section in self.mismatches:
            for message in self.mismatches[section]:
                lines.append(f"  [{section}] {message}")
        return "\n".join(lines)


@dataclass
class ModeRun:
    """One serving mode's observable outcome, keyed by request id."""

    responses: dict[int, dict]        # status / reason / result arrays
    usage: dict[int, dict]            # USAGE_FIELDS per billed request
    tenant_bills: dict[str, dict]
    partition: dict[str, bool]        # that mode's own accounting check
    totals: dict[str, float]          # pool/device aggregate accounting
    snapshot: dict


@dataclass
class DifferentialResult:
    """Outcome of one wall-clock vs VirtualClock differential."""

    diff: GatewayDiff
    num_requests: int
    reference: ModeRun
    gateway: ModeRun

    @property
    def identical(self) -> bool:
        return self.diff.identical


def _require_serve_trace(trace: Trace) -> None:
    if trace.kind != "serve":
        raise TraceFormatError(
            f"the gateway differential needs a 'serve' trace, got "
            f"{trace.kind!r} (fleet traces have per-device schedules the "
            "pool does not reproduce)"
        )


def _bills(ledger) -> dict[str, dict]:
    bills = {}
    for tenant in sorted(ledger.tenants):
        account = ledger.tenants[tenant]
        bills[tenant] = {
            "completed": account.completed,
            "rejected": account.rejected,
            "wear_bytes": int(account.wear_bytes),
            "crossbar_write_ops": int(account.crossbar_write_ops),
            "gemv_count": int(account.gemv_count),
            "macs": int(account.macs),
            "dma_bytes": int(account.dma_bytes),
            "energy_j": account.energy_j,
            "accelerator_energy_j": account.accelerator_energy_j,
            "service_s": account.service_s,
        }
    return bills


def _totals(ledger) -> dict[str, float]:
    return {
        "wear_bytes": int(ledger.device_wear_bytes),
        "write_ops": int(ledger.device_crossbar_write_ops),
        "gemv_count": int(ledger.device_gemv_count),
        "macs": int(ledger.device_macs),
        "accelerator_energy_j": ledger.device_accelerator_energy_j,
        "energy_j": ledger.device_energy_j,
        "housekeeping_energy_j": ledger.housekeeping_energy_j,
    }


# ----------------------------------------------------------------------
# The two runs
# ----------------------------------------------------------------------
def reference_run(trace: Trace) -> ModeRun:
    """Drive the trace through ``VirtualClock`` mode: one in-process
    unbatched :class:`~repro.serve.server.CimServer` on the simulated
    clock, serving the recorded submissions strictly in order through the
    *same* :func:`~repro.gateway.worker.serve_one` per-request path the
    pool workers run — no processes, no wall clock, fully deterministic.
    The accounting bar is the worker bar too: billed usage must
    reconcile with the device's folded physical totals."""
    from repro.gateway.server import partition_checks
    from repro.gateway.worker import _PhysicalTotals, build_worker_server, serve_one

    _require_serve_trace(trace)
    wire = gateway_config_from_trace(trace, num_workers=1).worker_wire()
    server = build_worker_server(wire)
    physical = _PhysicalTotals()
    responses: dict[int, dict] = {}
    usage: dict[int, dict] = {}
    try:
        for event in trace.submissions():
            request = GatewayRequest(
                request_id=int(event["request_id"]),
                tenant=event["tenant"],
                source=event["source"],
                params=dict(event["params"]),
                arrays={
                    name: decode_array(payload, where=f"submit array {name!r}")
                    for name, payload in event["arrays"].items()
                },
            )
            response = serve_one(server, request, worker_id=0)
            physical.fold(server.system.accelerator)
            responses[request.request_id] = {
                "status": response.status,
                "reason": response.reason,
                "result": response.result,
            }
            if response.usage:
                usage[request.request_id] = dict(response.usage)
        return ModeRun(
            responses=responses,
            usage=usage,
            tenant_bills=_bills(server.ledger),
            partition=partition_checks(
                server.ledger, {0: physical.authoritative()}
            ),
            totals=_totals(server.ledger),
            snapshot=server.metrics.snapshot(),
        )
    finally:
        server.shutdown()


def gateway_config_from_trace(
    trace: Trace,
    num_workers: int = 2,
    cache_dir: Optional[str] = None,
) -> GatewayConfig:
    """A pool configuration matching the trace's recorded device."""
    _require_serve_trace(trace)
    config = trace.config
    return GatewayConfig(
        num_workers=num_workers,
        num_tiles=int(config.get("num_tiles", 1)),
        crossbar_rows=config.get("crossbar_rows"),
        crossbar_cols=config.get("crossbar_cols"),
        crossbar_mode=config.get("crossbar_mode", "ideal"),
        compile_options=decode_compile_options(config["compile_options"]),
        cache_dir=cache_dir,
        max_pending=None,  # quotas/backpressure off, like the reference
        # The resilience layer stays ENABLED under the differential: with
        # no faults injected the watchdog never fires and no slot ever
        # respawns, and the diff proves exactly that — resilience changes
        # nothing when nothing goes wrong.
        hang_timeout_s=30.0,
        max_respawns=2,
        scrub_leases=bool(config.get("scrub_leases", True)),
    )


async def gateway_run_async(
    trace: Trace,
    num_workers: int = 2,
    cache_dir: Optional[str] = None,
) -> ModeRun:
    """Drive the trace's submissions through a live wall-clock pool."""
    gateway = AsyncGateway(gateway_config_from_trace(trace, num_workers, cache_dir))
    async with gateway:
        futures = []
        for event in trace.submissions():
            futures.append(
                gateway.submit_nowait(
                    event["tenant"],
                    event["source"],
                    params=event["params"],
                    arrays={
                        name: decode_array(payload, where=f"submit array {name!r}")
                        for name, payload in event["arrays"].items()
                    },
                )
            )
        responses_list: list[GatewayResponse] = await asyncio.gather(*futures)
        await gateway.drain()
    responses = {
        response.request_id: {
            "status": response.status,
            "reason": response.reason,
            "result": response.result,
        }
        for response in responses_list
    }
    usage = {
        record.request_id: {name: getattr(record, name) for name in USAGE_FIELDS}
        for record in gateway.ledger.all_usages()
    }
    return ModeRun(
        responses=responses,
        usage=usage,
        tenant_bills=_bills(gateway.ledger),
        partition=gateway.verify_partition(),
        totals=_totals(gateway.ledger),
        snapshot=gateway.snapshot(),
    )


def gateway_run(
    trace: Trace, num_workers: int = 2, cache_dir: Optional[str] = None
) -> ModeRun:
    return asyncio.run(gateway_run_async(trace, num_workers, cache_dir))


# ----------------------------------------------------------------------
# The diff
# ----------------------------------------------------------------------
def diff_runs(trace: Trace, reference: ModeRun, gateway: ModeRun) -> GatewayDiff:
    diff = GatewayDiff()
    _diff_responses(diff, reference, gateway)
    _diff_usage(diff, reference, gateway)
    _diff_bills(diff, reference, gateway)
    _diff_accounting(diff, reference, gateway)
    _diff_recorded(diff, trace, gateway)
    return diff


def _diff_responses(diff, reference: ModeRun, gateway: ModeRun) -> None:
    for rid in sorted(set(reference.responses) | set(gateway.responses)):
        ref = reference.responses.get(rid)
        gwy = gateway.responses.get(rid)
        if ref is None or gwy is None:
            diff.add(
                "responses",
                f"request {rid} present only in "
                f"{'reference' if gwy is None else 'gateway'} mode",
            )
            continue
        if ref["status"] != gwy["status"]:
            diff.add(
                "responses",
                f"request {rid}: status {ref['status']!r} (VirtualClock) "
                f"vs {gwy['status']!r} (wall-clock)",
            )
            continue
        if ref["reason"] != gwy["reason"]:
            diff.add(
                "responses",
                f"request {rid}: reason {ref['reason']!r} vs {gwy['reason']!r}",
            )
        for name in sorted(set(ref["result"]) | set(gwy["result"])):
            left = ref["result"].get(name)
            right = gwy["result"].get(name)
            if left is None or right is None:
                diff.add("responses", f"request {rid}: result array {name!r} missing")
            elif (
                left.dtype != right.dtype
                or left.shape != right.shape
                or np.asarray(left).tobytes() != np.asarray(right).tobytes()
            ):
                diff.add(
                    "responses",
                    f"request {rid}: result array {name!r} bytes differ",
                )


def _diff_usage(diff, reference: ModeRun, gateway: ModeRun) -> None:
    for rid in sorted(set(reference.usage) | set(gateway.usage)):
        ref = reference.usage.get(rid)
        gwy = gateway.usage.get(rid)
        if ref is None or gwy is None:
            diff.add(
                "usage",
                f"request {rid} billed only in "
                f"{'reference' if gwy is None else 'gateway'} mode",
            )
            continue
        for name in USAGE_FIELDS:
            if ref[name] != gwy[name]:
                diff.add(
                    "usage",
                    f"request {rid}: {name} {ref[name]!r} (VirtualClock) "
                    f"vs {gwy[name]!r} (wall-clock)",
                )


def _diff_bills(diff, reference: ModeRun, gateway: ModeRun) -> None:
    for tenant in sorted(set(reference.tenant_bills) | set(gateway.tenant_bills)):
        ref = reference.tenant_bills.get(tenant)
        gwy = gateway.tenant_bills.get(tenant)
        if ref is None or gwy is None:
            diff.add(
                "tenant_bills",
                f"tenant {tenant!r} billed only in "
                f"{'reference' if gwy is None else 'gateway'} mode",
            )
            continue
        for name in BILL_FIELDS:
            if ref[name] != gwy[name]:
                diff.add(
                    "tenant_bills",
                    f"tenant {tenant!r}: {name} {ref[name]!r} vs {gwy[name]!r}",
                )


def _diff_accounting(diff, reference: ModeRun, gateway: ModeRun) -> None:
    for name, passed in reference.partition.items():
        if not passed:
            diff.add("accounting", f"reference partition check failed: {name}")
    for name, passed in gateway.partition.items():
        if not passed:
            diff.add("accounting", f"gateway partition check failed: {name}")
    for name in ("wear_bytes", "write_ops", "gemv_count", "macs"):
        if reference.totals[name] != gateway.totals[name]:
            diff.add(
                "accounting",
                f"aggregate {name}: {reference.totals[name]!r} vs "
                f"{gateway.totals[name]!r}",
            )
    for name in ("accelerator_energy_j", "energy_j", "housekeeping_energy_j"):
        # fsum over the identical per-request record multiset: exact.
        if reference.totals[name] != gateway.totals[name]:
            diff.add(
                "accounting",
                f"aggregate {name}: {reference.totals[name]!r} vs "
                f"{gateway.totals[name]!r}",
            )


def _diff_recorded(diff, trace: Trace, gateway: ModeRun) -> None:
    """Completed gateway results vs the recording's own responses: the
    original (batched, quota'd) run must agree on every result it
    completed — batching and admission change scheduling, never values."""
    import hashlib

    for rid, recorded in sorted(trace.responses().items()):
        if recorded["status"] != "completed":
            continue
        gwy = gateway.responses.get(rid)
        if gwy is None or gwy["status"] != "completed":
            diff.add(
                "recorded_responses",
                f"request {rid}: completed in the recording but "
                f"{gwy['status'] if gwy else 'missing'} at the gateway",
            )
            continue
        for name, payload in recorded["result"].items():
            value = gwy["result"].get(name)
            if value is None:
                diff.add(
                    "recorded_responses",
                    f"request {rid}: result array {name!r} missing at the gateway",
                )
                continue
            digest = hashlib.sha256(
                np.ascontiguousarray(value).tobytes()
            ).hexdigest()
            if digest != payload["sha256"]:
                diff.add(
                    "recorded_responses",
                    f"request {rid}: result array {name!r} bytes differ "
                    "from the recording",
                )


def run_differential(
    trace: Trace,
    num_workers: int = 2,
    cache_dir: Optional[str] = None,
) -> DifferentialResult:
    """The full gate: both runs plus the section-by-section diff."""
    reference = reference_run(trace)
    gateway = gateway_run(trace, num_workers=num_workers, cache_dir=cache_dir)
    diff = diff_runs(trace, reference, gateway)
    return DifferentialResult(
        diff=diff,
        num_requests=len(trace.submissions()),
        reference=reference,
        gateway=gateway,
    )

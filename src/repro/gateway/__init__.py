"""Wall-clock serving gateway: real concurrency over the emulated stack.

The repo's other serving tiers are deterministic discrete-event
simulations on a :class:`~repro.serve.clock.VirtualClock`; this package
is the wall-clock mode — an ``asyncio`` gateway
(:class:`~repro.gateway.server.AsyncGateway`) dispatching typed JSON
requests (:mod:`repro.gateway.wire`) to a pool of worker *processes*
(:mod:`repro.gateway.worker`), each owning a private emulated CIM device
and sharing one flock-guarded on-disk compile cache.  An open-loop load
generator (:mod:`repro.gateway.loadgen`) replays Poisson or
trace-resampled arrivals (:mod:`repro.trace.arrivals`) and measures real
p50/p99 latency and per-worker utilization; worker crashes are recovered
with exactly-once billing; and the headline correctness gate
(:mod:`repro.gateway.differential`) proves that the same recorded trace
produces **bit-identical responses and accounting** through wall-clock
and ``VirtualClock`` modes.  See ``docs/gateway.md``.
"""

from repro.gateway.chaos import (
    ChaosReport,
    ChaosSpec,
    chaos_schedule,
    chaos_workload,
    run_chaos,
    run_chaos_async,
)
from repro.gateway.differential import (
    DifferentialResult,
    GatewayDiff,
    ModeRun,
    diff_runs,
    gateway_config_from_trace,
    gateway_run,
    reference_run,
    run_differential,
)
from repro.gateway.loadgen import (
    LoadReport,
    WorkItem,
    run_open_loop,
    synthetic_gemv_workload,
    trace_workload,
)
from repro.gateway.server import AsyncGateway, GatewayConfig, GatewayError
from repro.gateway.wire import (
    FAULT_MARKERS,
    GatewayRequest,
    GatewayResponse,
    WireFormatError,
)

__all__ = [
    "AsyncGateway",
    "ChaosReport",
    "ChaosSpec",
    "DifferentialResult",
    "FAULT_MARKERS",
    "GatewayConfig",
    "GatewayDiff",
    "GatewayError",
    "GatewayRequest",
    "GatewayResponse",
    "LoadReport",
    "ModeRun",
    "WireFormatError",
    "WorkItem",
    "chaos_schedule",
    "chaos_workload",
    "diff_runs",
    "gateway_config_from_trace",
    "gateway_run",
    "reference_run",
    "run_chaos",
    "run_chaos_async",
    "run_differential",
    "run_open_loop",
    "synthetic_gemv_workload",
    "trace_workload",
]

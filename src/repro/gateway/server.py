"""The wall-clock serving gateway: asyncio front-end, process-pool back-end.

:class:`AsyncGateway` is the repo's first *real-concurrency* serving mode.
The simulated tiers (:class:`~repro.serve.server.CimServer`,
:class:`~repro.fleet.server.FleetServer`) advance a ``VirtualClock``
through a deterministic event loop; the gateway instead accepts typed
requests on an ``asyncio`` loop under a :class:`~repro.serve.clock.WallClock`
and dispatches them to a pool of worker *processes*
(:mod:`repro.gateway.worker`), each owning a private emulated device and
sharing one flock-guarded on-disk
:class:`~repro.compiler.cache.KernelCompileCache`.

Pool architecture (deliberately not ``concurrent.futures`` — a
``ProcessPoolExecutor`` declares the whole pool broken when one worker
dies, and surviving a worker death is this subsystem's headline fault
model):

* one request ``multiprocessing.Queue`` per worker plus one shared
  response queue;
* a collector thread blocks on the response queue and trampolines every
  frame onto the asyncio loop (``call_soon_threadsafe``), so all gateway
  state is mutated from the loop thread only;
* an async monitor task polls worker liveness; a dead worker's in-flight
  request is compensated (:class:`~repro.serve.accounting.FaultCompensation`)
  and retried on a surviving worker with its fault marker stripped —
  exactly-once billing, at-least-once execution;
* at most one request is in flight per worker, so a dead worker strands
  at most one request and its queue is empty by construction.

The resilience layer turns every stall into a bounded, compensated,
retried event:

* **Deadlines** — a request may carry an absolute gateway-clock
  ``deadline_s``; the gateway sheds it with status ``deadline-exceeded``
  if the deadline passes before dispatch, and fails it at expiry if it
  is in flight (the worker's eventual late work is absorbed as a
  measured :class:`~repro.serve.accounting.FaultCompensation`, never
  billed).
* **Hang detection** — a per-flight watchdog declares a worker wedged
  once it exceeds ``hang_timeout_s`` on one request, SIGKILLs it,
  compensates the lost attempt and retries on a survivor — exactly the
  crash contract, extended to silence.
* **Self-healing pool** — dead or killed workers are respawned (each
  respawn is a *new* worker id, so every incarnation keeps its own
  partition-checked ledger) up to a per-slot budget with capped
  exponential backoff; a crash-looping slot is quarantined (the fleet
  tier's vocabulary); optional hot spares pre-spawn so capacity recovery
  is immediate.  With a respawn pending, "no surviving workers" is a
  transient state, not a reason to fail traffic.
* **Wall-clock admission** — per-tenant
  :class:`~repro.serve.admission.TenantQuota` (queue depth, wear and
  energy budgets against the gateway ledger) plus the global
  ``max_pending`` queue-depth shed.
* **Defensive collection** — an undecodable response frame fails only
  its own request with a typed reason; the byzantine worker is killed
  (its unaccounted work dies with it, keeping the partition exact on its
  last good snapshot) and its slot respawns.

Accounting mirrors the simulated tiers: every response carries the
measured per-request usage, which the gateway records into an
:class:`~repro.serve.accounting.AccountingLedger` keyed by worker id
(= device id), and :meth:`AsyncGateway.verify_partition` reconciles the
bills against each worker's physical accelerator totals — the drain-time
authoritative totals for workers that survived, the last cumulative
snapshot a worker shipped for workers that died (its doomed attempt
shipped neither usage nor snapshot, so the partition stays exact).
"""

from __future__ import annotations

import asyncio
import math
import queue as queue_mod
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.compiler.options import CompileOptions
from repro.gateway.wire import GatewayRequest, GatewayResponse, WireFormatError
from repro.gateway.worker import (
    DRAIN_FRAME,
    DRAINED_FRAME,
    REQUEST_FRAME,
    RESPONSE_FRAME,
    worker_main,
)
from repro.serve.accounting import AccountingLedger, FaultCompensation
from repro.serve.admission import TenantQuota
from repro.serve.clock import WallClock
from repro.serve.metrics import MetricsRegistry
from repro.trace.schema import encode_compile_options

#: Physical-totals keys shipped by workers (see worker._PhysicalTotals).
_PHYSICAL_ZERO = {
    "energy_j": 0.0,
    "latency_s": 0.0,
    "cell_writes": 0,
    "write_ops": 0,
    "gemv_count": 0,
    "macs": 0,
    "dma_bytes": 0,
}

#: How long drain() waits for a worker's authoritative totals (and for
#: stuck in-flight work) before escalating to a kill.
_DRAIN_TIMEOUT_S = 30.0


class GatewayError(RuntimeError):
    """Misuse of the gateway lifecycle (submit before start, after drain,
    or with an invalid configuration)."""


def partition_checks(
    ledger: AccountingLedger, totals_by_worker: Mapping[int, Mapping[str, float]]
) -> dict[str, bool]:
    """Exactly-once reconciliation of *ledger* against per-worker physical
    accelerator totals (the :class:`~repro.gateway.worker._PhysicalTotals`
    snapshot shape).  Integer counters compare by ``==``; energies via
    order-independent ``fsum`` to float precision — the same bar as
    :meth:`~repro.serve.accounting.AccountingLedger.verify_fleet_partition`."""
    checks: dict[str, bool] = {}
    for worker_id in sorted(totals_by_worker):
        totals = totals_by_worker[worker_id]
        usages = ledger.device_usages(worker_id)
        comps = ledger.device_compensations(worker_id)
        prefix = f"worker{worker_id}"
        checks[f"{prefix}.cell_writes"] = (
            sum(u.wear_bytes for u in usages) + sum(c.wear_bytes for c in comps)
            == totals["cell_writes"]
        )
        checks[f"{prefix}.write_ops"] = (
            sum(u.crossbar_write_ops for u in usages)
            + sum(c.crossbar_write_ops for c in comps)
            == totals["write_ops"]
        )
        checks[f"{prefix}.gemv_count"] = (
            sum(u.gemv_count for u in usages)
            + sum(c.gemv_count for c in comps)
            == totals["gemv_count"]
        )
        checks[f"{prefix}.macs"] = (
            sum(u.macs for u in usages) + sum(c.macs for c in comps)
            == totals["macs"]
        )
        checks[f"{prefix}.energy"] = math.isclose(
            math.fsum(
                [u.accelerator_energy_j for u in usages]
                + [c.accelerator_energy_j for c in comps]
            ),
            totals["energy_j"],
            rel_tol=1e-9,
            abs_tol=1e-18,
        )
    known = set(totals_by_worker)
    checks["no_orphan_records"] = all(
        u.device_id in known for u in ledger.all_usages()
    ) and all(c.device_id in known for c in ledger.compensations)
    checks["pool_wear_total"] = ledger.device_wear_bytes == sum(
        totals["cell_writes"] for totals in totals_by_worker.values()
    )
    checks["pool_energy_total"] = math.isclose(
        ledger.device_accelerator_energy_j,
        math.fsum(totals["energy_j"] for totals in totals_by_worker.values()),
        rel_tol=1e-9,
        abs_tol=1e-18,
    )
    return checks


@dataclass
class GatewayConfig:
    """Tuning knobs of one :class:`AsyncGateway`."""

    #: Worker processes (each one private emulated device).
    num_workers: int = 2
    #: CIM tiles inside each worker's device.
    num_tiles: int = 1
    #: Crossbar geometry/mode of the worker devices (None = Table I).
    crossbar_rows: Optional[int] = None
    crossbar_cols: Optional[int] = None
    crossbar_mode: str = "ideal"
    #: Compiler options of the worker compilers.
    compile_options: CompileOptions = field(default_factory=CompileOptions)
    #: Shared on-disk compile-cache directory (None = per-worker memory
    #: caches only; with a directory, workers share compilations).
    cache_dir: Optional[str] = None
    #: Admission backpressure: reject submissions once this many requests
    #: are queued (None = unbounded, the differential's configuration —
    #: rejections are load-dependent, so the diff runs without them).
    max_pending: Optional[int] = None
    #: Per-tenant admission quota for tenants without an explicit
    #: :meth:`AsyncGateway.set_quota` (None = per-tenant admission off).
    default_quota: Optional[TenantQuota] = None
    #: Execution attempts per request across worker deaths.
    max_attempts: int = 3
    #: Hang watchdog: a worker that spends longer than this on one
    #: request is declared wedged, SIGKILLed, compensated and its request
    #: retried on a survivor (None = watchdog off).
    hang_timeout_s: Optional[float] = None
    #: Self-healing: respawns allowed per worker slot (0 = off; a dead
    #: worker then shrinks the pool permanently, the pre-resilience
    #: behavior).  A slot that exhausts its budget is quarantined.
    max_respawns: int = 0
    #: Capped exponential respawn backoff: min(base * 2**(n-1), max).
    respawn_backoff_base_s: float = 0.05
    respawn_backoff_max_s: float = 1.0
    #: Hot spares: extra workers pre-spawned at start that idle outside
    #: the dispatch rotation and are promoted the moment an active
    #: worker dies — capacity recovery without waiting out a backoff.
    hot_spares: int = 0
    #: ``multiprocessing`` start method (None = fork where available).
    start_method: Optional[str] = None
    #: Scrub crossbar residency between requests inside each worker.
    scrub_leases: bool = True

    def worker_wire(self) -> dict:
        """The worker-process config as a plain picklable dict."""
        return {
            "num_tiles": self.num_tiles,
            "crossbar_rows": self.crossbar_rows,
            "crossbar_cols": self.crossbar_cols,
            "crossbar_mode": self.crossbar_mode,
            "compile_options": encode_compile_options(self.compile_options),
            "cache_dir": self.cache_dir,
            "scrub_leases": self.scrub_leases,
        }


@dataclass
class _Flight:
    """One submitted request in flight through the gateway."""

    request: GatewayRequest
    future: asyncio.Future
    submitted_s: float
    dispatched_s: Optional[float] = None
    worker_id: Optional[int] = None
    #: The deadline expired while the request was in flight: its future
    #: already resolved ``deadline-exceeded``; the worker's eventual
    #: response is absorbed as a compensation, never billed.
    abandoned: bool = False

    def deadline_passed(self, now_s: float) -> bool:
        deadline_s = self.request.deadline_s
        return deadline_s is not None and now_s >= deadline_s


@dataclass
class _Slot:
    """Self-healing state of one position in the active pool.

    A slot outlives the worker processes that occupy it: every death of
    its current worker burns respawn budget, and a slot that crash-loops
    through its whole budget is quarantined — the fleet tier's
    backoff/quarantine vocabulary, applied to pool positions."""

    slot_id: int
    worker_id: int
    respawns: int = 0
    pending_respawn_s: Optional[float] = None
    #: The replacement goes to the spare pool (a spare was promoted into
    #: this slot already) instead of straight into the dispatch rotation.
    respawn_to_spare: bool = False
    quarantined: bool = False


class _Worker:
    """Gateway-side bookkeeping of one pool worker (one incarnation —
    a respawned slot gets a fresh ``_Worker`` with a fresh id)."""

    def __init__(self, worker_id: int, process, request_queue, slot_id=None,
                 spare: bool = False):
        self.worker_id = worker_id
        self.process = process
        self.request_queue = request_queue
        #: Active-pool slot this worker occupies (None while a spare).
        self.slot_id: Optional[int] = slot_id
        self.spare = spare
        self.dead = False
        self.served = 0
        self.busy_s = 0.0
        #: Last cumulative physical snapshot this worker shipped (the
        #: accounting currency that survives its death).
        self.last_physical: dict[str, float] = dict(_PHYSICAL_ZERO)
        #: Authoritative totals shipped on graceful drain (fsum-exact).
        self.drained_totals: Optional[dict[str, float]] = None
        self.drained_event: Optional[asyncio.Event] = None


class AsyncGateway:
    """Wall-clock serving gateway over a self-healing pool of device
    workers."""

    def __init__(self, config: Optional[GatewayConfig] = None):
        self.config = config or GatewayConfig()
        if self.config.num_workers < 1:
            raise GatewayError("gateway needs at least one worker")
        if self.config.max_attempts < 1:
            raise GatewayError("max_attempts must be >= 1")
        if self.config.hang_timeout_s is not None and self.config.hang_timeout_s <= 0:
            raise GatewayError("hang_timeout_s must be positive (or None)")
        if self.config.max_respawns < 0 or self.config.hot_spares < 0:
            raise GatewayError("max_respawns and hot_spares cannot be negative")
        if (
            self.config.respawn_backoff_base_s < 0
            or self.config.respawn_backoff_max_s < 0
        ):
            raise GatewayError("respawn backoff times cannot be negative")
        self.clock = WallClock()
        self.metrics = MetricsRegistry()
        self.ledger = AccountingLedger(crossbar_size_bytes=0.0)
        self.dead_letters: list[str] = []
        self._workers: list[_Worker] = []
        self._slots: list[_Slot] = []
        self._spare_ids: deque[int] = deque()
        self._quotas: dict[str, TenantQuota] = {}
        self._idle: deque[int] = deque()
        self._pending: deque[_Flight] = deque()
        self._inflight: dict[int, _Flight] = {}
        self._seq = 0
        self._bill_counter = 0
        self._ctx = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._response_queue = None
        self._collector: Optional[threading.Thread] = None
        self._collector_stop = threading.Event()
        self._monitor_task: Optional[asyncio.Task] = None
        self._started = False
        self._draining = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncGateway":
        """Spawn the worker pool (actives + hot spares), the collector
        thread and the monitor."""
        if self._started:
            raise GatewayError("gateway already started")
        import multiprocessing

        method = self.config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(method)
        self._loop = asyncio.get_running_loop()
        self._response_queue = self._ctx.Queue()
        # Workers fork *before* the collector thread exists (forking a
        # multi-threaded parent is where fork goes wrong).
        for slot_id in range(self.config.num_workers):
            worker = self._spawn_worker(slot_id=slot_id)
            self._slots.append(_Slot(slot_id=slot_id, worker_id=worker.worker_id))
            self._idle.append(worker.worker_id)
        for _ in range(self.config.hot_spares):
            worker = self._spawn_worker(spare=True)
            self._spare_ids.append(worker.worker_id)
        self._collector = threading.Thread(
            target=self._collect, name="gateway-collector", daemon=True
        )
        self._collector.start()
        self._monitor_task = self._loop.create_task(self._monitor())
        self._started = True
        return self

    def _spawn_worker(
        self, slot_id: Optional[int] = None, spare: bool = False
    ) -> _Worker:
        """Spawn one worker process on a fresh worker/device id and
        register its bookkeeping (shared by pool start and respawns)."""
        worker_id = len(self._workers)
        request_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.config.worker_wire(), request_queue,
                  self._response_queue),
            daemon=True,
            name=f"gateway-worker-{worker_id}",
        )
        process.start()
        worker = _Worker(worker_id, process, request_queue, slot_id=slot_id,
                         spare=spare)
        worker.drained_event = asyncio.Event()
        self._workers.append(worker)
        self.metrics.observe_device_state(worker_id, "spare" if spare else "up")
        return worker

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            await self.drain()

    @property
    def alive_workers(self) -> list[int]:
        return [w.worker_id for w in self._workers if not w.dead]

    def _respawn_pending(self) -> bool:
        return any(slot.pending_respawn_s is not None for slot in self._slots)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Per-tenant wall-clock admission quota (same
        :class:`~repro.serve.admission.TenantQuota` vocabulary as the
        ``VirtualClock`` tiers)."""
        self._quotas[tenant] = quota

    def quota(self, tenant: str) -> Optional[TenantQuota]:
        return self._quotas.get(tenant, self.config.default_quota)

    def _tenant_pending(self, tenant: str) -> int:
        return sum(
            1 for flight in self._pending if flight.request.tenant == tenant
        )

    def _admission_reason(self, tenant: str) -> Optional[str]:
        """Why this submission must be rejected, or None to admit it."""
        if (
            self.config.max_pending is not None
            and len(self._pending) >= self.config.max_pending
        ):
            return (
                f"gateway backpressure: {len(self._pending)} requests "
                f"pending (max_pending={self.config.max_pending})"
            )
        quota = self.quota(tenant)
        if quota is None:
            return None
        depth = self._tenant_pending(tenant)
        if depth >= quota.max_queue_depth:
            return (
                f"tenant queue full ({depth}/{quota.max_queue_depth} "
                "requests pending)"
            )
        account = self.ledger.account(tenant)
        if (
            quota.wear_budget_bytes is not None
            and account.wear_bytes >= quota.wear_budget_bytes
        ):
            return (
                f"wear quota exhausted ({account.wear_bytes} B written "
                f">= budget {quota.wear_budget_bytes:.0f} B)"
            )
        if (
            quota.energy_budget_j is not None
            and account.energy_j >= quota.energy_budget_j
        ):
            return (
                f"energy quota exhausted ({account.energy_j:.3e} J "
                f">= budget {quota.energy_budget_j:.3e} J)"
            )
        return None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(
        self,
        tenant: str,
        source: str,
        params: Optional[Mapping[str, float]] = None,
        arrays: Optional[Mapping[str, np.ndarray]] = None,
        fault: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> "asyncio.Future[GatewayResponse]":
        """Queue one request; returns a future resolving to its
        :class:`~repro.gateway.wire.GatewayResponse`.  Never raises for
        per-request problems — backpressure and quota breaches resolve
        the future with a ``rejected`` response, execution problems with
        a ``failed`` one, a missed ``deadline_s`` (absolute gateway-clock
        seconds) with a ``deadline-exceeded`` one."""
        if not self._started:
            raise GatewayError("gateway not started")
        if self._draining or self._closed:
            raise GatewayError("gateway is draining; admission is closed")
        self._seq += 1
        request = GatewayRequest(
            request_id=self._seq,
            tenant=tenant,
            source=source,
            params=dict(params or {}),
            arrays={name: np.asarray(value) for name, value in (arrays or {}).items()},
            fault=fault,
            deadline_s=deadline_s,
        )
        future = self._loop.create_future()
        self.metrics.observe_submit()
        now_s = self.clock.now_s
        reason = self._admission_reason(tenant)
        if reason is not None:
            self.metrics.observe_admission(False)
            self.ledger.record_rejection(tenant)
            response = GatewayResponse(
                request_id=request.request_id,
                tenant=tenant,
                status="rejected",
                worker_id=-1,
                reason=reason,
            )
            response.submitted_s = response.completed_s = now_s
            future.set_result(response)
            return future
        self.metrics.observe_admission(True)
        flight = _Flight(request, future, submitted_s=now_s)
        if not self.alive_workers and not self._respawn_pending():
            # The pool is gone for good: answer now instead of queueing a
            # request no worker will ever serve.
            self._resolve_failed(flight, "no surviving gateway workers")
            return future
        self._pending.append(flight)
        self._dispatch()
        return future

    async def submit(self, *args, **kwargs) -> GatewayResponse:
        return await self.submit_nowait(*args, **kwargs)

    # ------------------------------------------------------------------
    # Dispatch / collection (loop thread only)
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        now_s = self.clock.now_s
        while self._pending and self._idle:
            worker_id = self._idle.popleft()
            worker = self._workers[worker_id]
            if worker.dead:
                continue
            flight = self._pending.popleft()
            if flight.deadline_passed(now_s):
                # Shed before dispatch: the deadline has already passed,
                # so running the request would only waste a worker.
                self._idle.appendleft(worker_id)
                self._resolve_deadline(flight, shed=True)
                continue
            flight.worker_id = worker_id
            flight.dispatched_s = now_s
            self._inflight[worker_id] = flight
            worker.request_queue.put((REQUEST_FRAME, flight.request.to_json()))

    def _collect(self) -> None:
        """Collector thread: response queue -> asyncio loop."""
        while not self._collector_stop.is_set():
            try:
                frame = self._response_queue.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            except (EOFError, OSError):
                break
            self._loop.call_soon_threadsafe(self._on_frame, frame)

    def _on_frame(self, frame: tuple) -> None:
        kind = frame[0]
        if kind == RESPONSE_FRAME:
            self._on_response(frame[1], frame[2])
        elif kind == DRAINED_FRAME:
            worker = self._workers[frame[1]]
            worker.drained_totals = dict(frame[2])
            worker.drained_event.set()
        else:  # dead letter: an undecodable frame with no request to answer
            self.dead_letters.append(str(frame[2]))
            worker = self._workers[frame[1]]
            if not worker.dead:
                self._idle.append(frame[1])
                self._dispatch()

    def _on_response(self, worker_id: int, payload: str) -> None:
        worker = self._workers[worker_id]
        if worker.dead:
            # Monitor/collector race: the worker put this frame on the
            # queue and then died (or was killed) before we processed it.
            # Its death already compensated and retried the flight, and
            # its accounting currency is the last snapshot it shipped
            # *before* we declared it dead — absorbing this late frame
            # (usage or physical totals) would double-count the work.
            self.metrics.observe_late_frame()
            return
        try:
            response = GatewayResponse.from_json(payload)
        except WireFormatError as exc:
            self._on_corrupt_frame(worker, exc)
            return
        worker.last_physical = dict(response.physical)
        flight = self._inflight.pop(worker_id, None)
        if flight is None:
            return  # stale frame (should not happen: one in flight per worker)
        now_s = self.clock.now_s
        response.submitted_s = flight.submitted_s
        response.dispatched_s = flight.dispatched_s
        response.completed_s = now_s
        worker.served += 1
        worker.busy_s += now_s - flight.dispatched_s
        if not worker.dead:
            self._idle.append(worker_id)
        self.metrics.observe_compile(response.compile_hits, response.compile_misses)
        if flight.abandoned:
            # The deadline expired mid-flight and the future already
            # resolved deadline-exceeded; the worker's late work is real
            # physical activity that must land on the fault side of the
            # ledger, never on the tenant's bill.
            self._compensate_abandoned(flight, response, now_s)
            self._dispatch()
            return
        if response.status == "completed":
            self.metrics.observe_completion(
                response.tenant,
                latency_s=now_s - flight.submitted_s,
                queueing_delay_s=flight.dispatched_s - flight.submitted_s,
            )
            if flight.request.attempt > 1:
                self.metrics.observe_recovery()
        else:
            self.metrics.observe_failure()
        self._record_billing(flight, response, now_s)
        if not flight.future.done():
            flight.future.set_result(response)
        self._dispatch()

    def _on_corrupt_frame(self, worker: _Worker, exc: WireFormatError) -> None:
        """A worker shipped an undecodable response frame: fail only its
        in-flight request (typed reason), kill the byzantine process —
        its in-process ledgers hold work no decodable snapshot will ever
        account for, so its accounting currency must stay the last good
        snapshot — and let the slot respawn."""
        self.metrics.observe_corrupt_frame()
        flight = self._inflight.get(worker.worker_id)
        if flight is not None and not flight.future.done():
            self._resolve_failed(
                flight,
                f"corrupt response frame from worker {worker.worker_id}: "
                f"{exc}",
            )
        self._fenced_kill(worker.process)
        self._on_worker_death(worker, cause="corrupt-frame")

    def _fenced_kill(self, process, terminate: bool = False) -> None:
        """SIGKILL (or SIGTERM) a worker without poisoning the shared
        response queue.

        A worker's queue feeder thread holds the queue's *cross-process*
        write lock while it streams a frame; a kill landing in that
        window leaves the lock permanently held, and every surviving
        worker wedges on its next ``put`` — the whole pool deadlocks.
        Briefly holding the lock ourselves fences the victim out of the
        critical section for the instant of the kill (kill before
        release: a pending SIGKILL means the feeder can never re-enter
        userspace to take the lock once we let go of it).
        """
        wlock = getattr(self._response_queue, "_wlock", None)
        acquired = wlock.acquire(timeout=1.0) if wlock is not None else False
        try:
            if terminate:
                process.terminate()
            else:
                process.kill()
        finally:
            if acquired:
                wlock.release()

    def _record_billing(
        self, flight: _Flight, response: GatewayResponse, now_s: float
    ) -> None:
        """Fold the worker-measured usage into the gateway ledger, keyed
        by worker id (= device id): the wall-clock analogue of the
        simulated server's per-tenant accounting."""
        from repro.serve.accounting import RequestUsage

        for energy_j in response.housekeeping_energy_j:
            self.ledger.record_housekeeping(energy_j, device_id=response.worker_id)
        if not response.usage:
            return
        self._bill_counter += 1
        self.ledger.record(
            RequestUsage(
                request_id=response.request_id,
                tenant=response.tenant,
                batch_id=self._bill_counter,
                arrival_s=flight.submitted_s,
                completed_s=now_s,
                service_s=response.usage["service_s"],
                latency_s=now_s - flight.submitted_s,
                host_energy_j=response.usage["host_energy_j"],
                offload_energy_j=response.usage["offload_energy_j"],
                accelerator_energy_j=response.usage["accelerator_energy_j"],
                crossbar_cell_writes=int(response.usage["crossbar_cell_writes"]),
                crossbar_write_ops=int(response.usage["crossbar_write_ops"]),
                gemv_count=int(response.usage["gemv_count"]),
                macs=int(response.usage["macs"]),
                dma_bytes=int(response.usage["dma_bytes"]),
                device_id=response.worker_id,
            )
        )

    def _compensate_abandoned(
        self, flight: _Flight, response: GatewayResponse, now_s: float
    ) -> None:
        """Absorb a deadline-abandoned request's measured work as a
        compensation: the physical deltas are real (they are in the
        worker's shipped snapshot) but no response was delivered, so the
        tenant is never billed for them."""
        for energy_j in response.housekeeping_energy_j:
            self.ledger.record_housekeeping(energy_j, device_id=response.worker_id)
        if not response.usage:
            return
        self._bill_counter += 1
        self.ledger.record_compensation(
            FaultCompensation(
                request_id=response.request_id,
                tenant=response.tenant,
                device_id=response.worker_id,
                batch_id=self._bill_counter,
                at_s=now_s,
                reason=(
                    f"request {response.request_id} exceeded its deadline "
                    f"in flight; the late result was discarded"
                ),
                op="deadline-exceeded",
                offload_energy_j=response.usage["offload_energy_j"],
                accelerator_energy_j=response.usage["accelerator_energy_j"],
                crossbar_cell_writes=int(response.usage["crossbar_cell_writes"]),
                crossbar_write_ops=int(response.usage["crossbar_write_ops"]),
                gemv_count=int(response.usage["gemv_count"]),
                macs=int(response.usage["macs"]),
                dma_bytes=int(response.usage["dma_bytes"]),
            )
        )

    # ------------------------------------------------------------------
    # Monitor: liveness, watchdog, deadlines, respawns
    # ------------------------------------------------------------------
    async def _monitor(self) -> None:
        """Poll worker liveness, run the hang watchdog, enforce
        deadlines and execute scheduled respawns."""
        while not self._closed:
            now_s = self.clock.now_s
            for worker in list(self._workers):
                if not worker.dead and not worker.process.is_alive():
                    self._on_worker_death(worker)
            self._check_hangs(now_s)
            self._enforce_deadlines(now_s)
            self._run_respawns(now_s)
            await asyncio.sleep(0.05)

    def _check_hangs(self, now_s: float) -> None:
        timeout_s = self.config.hang_timeout_s
        if timeout_s is None:
            return
        for worker_id, flight in list(self._inflight.items()):
            worker = self._workers[worker_id]
            if worker.dead:
                continue
            if now_s - flight.dispatched_s <= timeout_s:
                continue
            # Wedged: the process is alive but has sat on one request
            # longer than any legitimate dispatch can take.  SIGKILL it
            # and run the exact crash contract — compensate, retry on a
            # survivor, respawn the slot.
            self.metrics.observe_hang_detected()
            self._fenced_kill(worker.process)
            self._on_worker_death(
                worker,
                cause="worker-hang",
                detail=(
                    f"exceeded hang_timeout_s={timeout_s:g} on request "
                    f"{flight.request.request_id}; SIGKILLed by the watchdog"
                ),
            )

    def _enforce_deadlines(self, now_s: float) -> None:
        expired = [f for f in self._pending if f.deadline_passed(now_s)]
        if expired:
            self._pending = deque(
                f for f in self._pending if not f.deadline_passed(now_s)
            )
            for flight in expired:
                self._resolve_deadline(flight, shed=True)
        for flight in self._inflight.values():
            if not flight.abandoned and flight.deadline_passed(now_s):
                flight.abandoned = True
                self._resolve_deadline(flight, shed=False)

    def _resolve_deadline(self, flight: _Flight, shed: bool) -> None:
        """Answer a request whose deadline has passed: ``shed`` before
        dispatch (no work ever happened) or at expiry in flight (the
        worker's late work will be compensated when its frame lands)."""
        if shed:
            self.metrics.observe_deadline_shed()
            reason = (
                f"deadline {flight.request.deadline_s:.3f}s passed before "
                "dispatch; request shed"
            )
        else:
            self.metrics.observe_deadline_expired()
            reason = (
                f"deadline {flight.request.deadline_s:.3f}s expired in "
                "flight; result discarded"
            )
        if flight.future.done():
            return
        response = GatewayResponse(
            request_id=flight.request.request_id,
            tenant=flight.request.tenant,
            status="deadline-exceeded",
            worker_id=flight.worker_id if flight.worker_id is not None else -1,
            attempt=flight.request.attempt,
            reason=reason,
        )
        response.submitted_s = flight.submitted_s
        response.dispatched_s = flight.dispatched_s
        response.completed_s = self.clock.now_s
        flight.future.set_result(response)

    def _run_respawns(self, now_s: float) -> None:
        for slot in self._slots:
            if slot.pending_respawn_s is None or slot.pending_respawn_s > now_s:
                continue
            slot.pending_respawn_s = None
            if self._closed:
                continue
            if slot.respawn_to_spare:
                worker = self._spawn_worker(spare=True)
                self._spare_ids.append(worker.worker_id)
            else:
                worker = self._spawn_worker(slot_id=slot.slot_id)
                slot.worker_id = worker.worker_id
                self._idle.append(worker.worker_id)
            slot.respawn_to_spare = False
            self.metrics.observe_respawn()
            self._dispatch()

    # ------------------------------------------------------------------
    # Worker-loss recovery
    # ------------------------------------------------------------------
    def _on_worker_death(
        self,
        worker: _Worker,
        cause: str = "worker-crash",
        detail: Optional[str] = None,
    ) -> None:
        worker.dead = True
        worker_id = worker.worker_id
        self.metrics.observe_device_state(worker_id, "down")
        try:
            self._idle.remove(worker_id)
        except ValueError:
            pass
        if worker.spare:
            try:
                self._spare_ids.remove(worker_id)
            except ValueError:
                pass
        flight = self._inflight.pop(worker_id, None)
        self.metrics.observe_fault(cause)
        if flight is not None:
            # The attempt's physical work (if any) died with the process:
            # its device state is gone, and it shipped neither a usage
            # record nor a physical snapshot, so the partition stays exact.
            # The compensation record carries zero measured deltas and
            # exists as the audit trail of the lost attempt.
            self._bill_counter += 1
            self.ledger.record_compensation(
                FaultCompensation(
                    request_id=flight.request.request_id,
                    tenant=flight.request.tenant,
                    device_id=worker_id,
                    batch_id=self._bill_counter,
                    at_s=self.clock.now_s,
                    reason=detail
                    or (
                        f"worker {worker_id} died serving request "
                        f"{flight.request.request_id} "
                        f"(exitcode={worker.process.exitcode})"
                    ),
                    op=cause,
                    offload_energy_j=0.0,
                    accelerator_energy_j=0.0,
                    crossbar_cell_writes=0,
                    crossbar_write_ops=0,
                    gemv_count=0,
                    macs=0,
                    dma_bytes=0,
                )
            )
            if not flight.future.done():
                self._retry(flight)
        self._recover_capacity(worker)
        if not self.alive_workers and not self._respawn_pending():
            self._fail_all("no surviving gateway workers")

    def _recover_capacity(self, worker: _Worker) -> None:
        """Self-healing: promote a hot spare into the dead worker's slot
        immediately, schedule a backed-off respawn within the slot's
        budget, or quarantine a crash-looping slot."""
        if worker.slot_id is None:
            return  # a spare died; nothing occupied its capacity
        slot = self._slots[worker.slot_id]
        promoted = False
        if self._spare_ids:
            spare = self._workers[self._spare_ids.popleft()]
            spare.spare = False
            spare.slot_id = slot.slot_id
            slot.worker_id = spare.worker_id
            self._idle.append(spare.worker_id)
            self.metrics.observe_spare_promoted()
            self.metrics.observe_device_state(spare.worker_id, "up")
            promoted = True
            self._dispatch()
        if self.config.max_respawns <= 0:
            return  # self-healing off: the pool shrinks permanently
        if slot.respawns < self.config.max_respawns and not self._closed:
            slot.respawns += 1
            backoff_s = min(
                self.config.respawn_backoff_base_s * 2 ** (slot.respawns - 1),
                self.config.respawn_backoff_max_s,
            )
            slot.pending_respawn_s = self.clock.now_s + backoff_s
            slot.respawn_to_spare = promoted
        elif not promoted and not slot.quarantined:
            slot.quarantined = True
            self.metrics.observe_slot_quarantined()
            self.metrics.observe_device_state(worker.worker_id, "quarantined")

    def _retry(self, flight: _Flight) -> None:
        request = flight.request
        if request.attempt >= self.config.max_attempts:
            self.metrics.observe_unrecovered()
            self._resolve_failed(
                flight,
                f"request {request.request_id}: {request.attempt} attempts "
                "exhausted across worker deaths",
            )
            return
        request.attempt += 1
        # Strip the fault marker: one marker means exactly one fault, and
        # the retry must run clean on a surviving worker.
        request.fault = None
        self.metrics.observe_retry()
        self._pending.appendleft(flight)
        self._dispatch()

    def _resolve_failed(self, flight: _Flight, reason: str) -> None:
        if flight.future.done():
            return
        response = GatewayResponse(
            request_id=flight.request.request_id,
            tenant=flight.request.tenant,
            status="failed",
            worker_id=flight.worker_id if flight.worker_id is not None else -1,
            attempt=flight.request.attempt,
            reason=reason,
        )
        response.submitted_s = flight.submitted_s
        response.dispatched_s = flight.dispatched_s
        response.completed_s = self.clock.now_s
        self.metrics.observe_failure()
        flight.future.set_result(response)

    def _fail_all(self, reason: str) -> None:
        for flight in list(self._pending):
            self._resolve_failed(flight, reason)
        self._pending.clear()
        for flight in list(self._inflight.values()):
            self._resolve_failed(flight, reason)
        self._inflight.clear()

    # ------------------------------------------------------------------
    # Drain / teardown
    # ------------------------------------------------------------------
    async def drain(self) -> dict:
        """Graceful shutdown: stop admission, serve everything in flight,
        collect each worker's authoritative totals, tear the pool down.
        A worker that cannot finish draining within 30 s is killed and
        its stranded flight failed — close never hangs and never leaves
        zombies.  Returns the final metrics snapshot.  Idempotent."""
        if self._closed:
            return self.snapshot()
        self._draining = True
        stalled_s = 0.0
        while self._pending or self._inflight:
            futures = [
                f.future
                for f in list(self._pending) + list(self._inflight.values())
                if not f.future.done()
            ]
            if futures:
                stalled_s = 0.0
                await asyncio.gather(*futures, return_exceptions=True)
                continue
            # Every future is resolved but flights still sit in _inflight:
            # deadline-abandoned work whose workers have not answered yet.
            # Give them a bounded grace period, then kill the stragglers
            # (their compensations are zero-work: nothing they shipped
            # after death counts).
            if stalled_s >= _DRAIN_TIMEOUT_S:
                for worker_id in list(self._inflight):
                    worker = self._workers[worker_id]
                    if not worker.dead:
                        self._fenced_kill(worker.process)
                        self._on_worker_death(
                            worker,
                            cause="worker-hang",
                            detail=(
                                f"worker {worker_id} never answered its "
                                "abandoned flight; killed at drain"
                            ),
                        )
                self._inflight.clear()
                break
            await asyncio.sleep(0.05)
            stalled_s += 0.05
        for worker in self._workers:
            if not worker.dead:
                worker.request_queue.put((DRAIN_FRAME,))
        for worker in self._workers:
            if worker.dead:
                continue
            try:
                await asyncio.wait_for(
                    worker.drained_event.wait(), timeout=_DRAIN_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                # Wedged mid-drain: kill it and fail anything it strands
                # rather than hanging close forever.  Its accounting
                # currency falls back to the last snapshot it shipped.
                self._fenced_kill(worker.process)
                worker.dead = True
                self.metrics.observe_device_state(worker.worker_id, "down")
                self.metrics.observe_fault("worker-hang")
                flight = self._inflight.pop(worker.worker_id, None)
                if flight is not None:
                    self._resolve_failed(
                        flight,
                        f"worker {worker.worker_id} failed to drain within "
                        f"{_DRAIN_TIMEOUT_S:.0f}s and was killed",
                    )
        self._closed = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                self._fenced_kill(worker.process, terminate=True)
                worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                # terminate() did not take (blocked in an uninterruptible
                # state): escalate to SIGKILL so close never leaves a
                # zombie behind.
                self._fenced_kill(worker.process)
                worker.process.join(timeout=5.0)
            if not worker.dead:
                self.metrics.observe_device_state(worker.worker_id, "drained")
        return self.snapshot()

    # ------------------------------------------------------------------
    # Accounting / metrics
    # ------------------------------------------------------------------
    def verify_partition(self) -> dict[str, bool]:
        """Exactly-once reconciliation across the pool: on every worker
        (every incarnation — respawned slots contribute one worker per
        life), billed tenant work plus compensations must equal that
        worker's physical accelerator totals — the fsum-exact drain
        totals for survivors, the last shipped cumulative snapshot for
        the dead (whose doomed attempt shipped no usage).  Mirrors
        :meth:`~repro.serve.accounting.AccountingLedger.verify_fleet_partition`."""
        totals_by_worker = {
            worker.worker_id: (
                worker.drained_totals
                if worker.drained_totals is not None
                else worker.last_physical
            )
            for worker in self._workers
        }
        return partition_checks(self.ledger, totals_by_worker)

    def snapshot(self) -> dict:
        """MetricsRegistry-style snapshot plus the gateway's own section:
        per-worker utilization (busy wall time over elapsed wall time),
        served counts, liveness, and pool-wide throughput."""
        elapsed_s = self.clock.now_s
        snap = self.metrics.snapshot(
            {"pending": len(self._pending), "inflight": len(self._inflight)}
        )
        workers = {}
        for worker in self._workers:
            workers[str(worker.worker_id)] = {
                "alive": not worker.dead,
                "spare": worker.spare,
                "served": worker.served,
                "busy_s": worker.busy_s,
                "utilization": worker.busy_s / elapsed_s if elapsed_s > 0 else 0.0,
            }
        completed = self.metrics.completed
        snap["gateway"] = {
            "elapsed_s": elapsed_s,
            "num_workers": self.config.num_workers,
            "alive_workers": len(self.alive_workers),
            "hot_spares": len(self._spare_ids),
            "quarantined_slots": sum(1 for s in self._slots if s.quarantined),
            "throughput_rps": completed / elapsed_s if elapsed_s > 0 else 0.0,
            "workers": workers,
            "dead_letters": len(self.dead_letters),
        }
        return snap

"""The wall-clock serving gateway: asyncio front-end, process-pool back-end.

:class:`AsyncGateway` is the repo's first *real-concurrency* serving mode.
The simulated tiers (:class:`~repro.serve.server.CimServer`,
:class:`~repro.fleet.server.FleetServer`) advance a ``VirtualClock``
through a deterministic event loop; the gateway instead accepts typed
requests on an ``asyncio`` loop under a :class:`~repro.serve.clock.WallClock`
and dispatches them to a pool of worker *processes*
(:mod:`repro.gateway.worker`), each owning a private emulated device and
sharing one flock-guarded on-disk
:class:`~repro.compiler.cache.KernelCompileCache`.

Pool architecture (deliberately not ``concurrent.futures`` — a
``ProcessPoolExecutor`` declares the whole pool broken when one worker
dies, and surviving a worker death is this subsystem's headline fault
model):

* one request ``multiprocessing.Queue`` per worker plus one shared
  response queue;
* a collector thread blocks on the response queue and trampolines every
  frame onto the asyncio loop (``call_soon_threadsafe``), so all gateway
  state is mutated from the loop thread only;
* an async monitor task polls worker liveness; a dead worker's in-flight
  request is compensated (:class:`~repro.serve.accounting.FaultCompensation`)
  and retried on a surviving worker with its fault marker stripped —
  exactly-once billing, at-least-once execution;
* at most one request is in flight per worker, so a dead worker strands
  at most one request and its queue is empty by construction.

Accounting mirrors the simulated tiers: every response carries the
measured per-request usage, which the gateway records into an
:class:`~repro.serve.accounting.AccountingLedger` keyed by worker id
(= device id), and :meth:`AsyncGateway.verify_partition` reconciles the
bills against each worker's physical accelerator totals — the drain-time
authoritative totals for workers that survived, the last cumulative
snapshot a worker shipped for workers that died (its doomed attempt
shipped neither usage nor snapshot, so the partition stays exact).
"""

from __future__ import annotations

import asyncio
import math
import queue as queue_mod
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.compiler.options import CompileOptions
from repro.gateway.wire import GatewayRequest, GatewayResponse
from repro.gateway.worker import (
    DRAIN_FRAME,
    DRAINED_FRAME,
    REQUEST_FRAME,
    RESPONSE_FRAME,
    worker_main,
)
from repro.serve.accounting import AccountingLedger, FaultCompensation
from repro.serve.clock import WallClock
from repro.serve.metrics import MetricsRegistry
from repro.trace.schema import encode_compile_options

#: Physical-totals keys shipped by workers (see worker._PhysicalTotals).
_PHYSICAL_ZERO = {
    "energy_j": 0.0,
    "latency_s": 0.0,
    "cell_writes": 0,
    "write_ops": 0,
    "gemv_count": 0,
    "macs": 0,
    "dma_bytes": 0,
}


class GatewayError(RuntimeError):
    """Misuse of the gateway lifecycle (submit before start, after drain,
    or with no surviving workers)."""


def partition_checks(
    ledger: AccountingLedger, totals_by_worker: Mapping[int, Mapping[str, float]]
) -> dict[str, bool]:
    """Exactly-once reconciliation of *ledger* against per-worker physical
    accelerator totals (the :class:`~repro.gateway.worker._PhysicalTotals`
    snapshot shape).  Integer counters compare by ``==``; energies via
    order-independent ``fsum`` to float precision — the same bar as
    :meth:`~repro.serve.accounting.AccountingLedger.verify_fleet_partition`."""
    checks: dict[str, bool] = {}
    for worker_id in sorted(totals_by_worker):
        totals = totals_by_worker[worker_id]
        usages = ledger.device_usages(worker_id)
        comps = ledger.device_compensations(worker_id)
        prefix = f"worker{worker_id}"
        checks[f"{prefix}.cell_writes"] = (
            sum(u.wear_bytes for u in usages) + sum(c.wear_bytes for c in comps)
            == totals["cell_writes"]
        )
        checks[f"{prefix}.write_ops"] = (
            sum(u.crossbar_write_ops for u in usages)
            + sum(c.crossbar_write_ops for c in comps)
            == totals["write_ops"]
        )
        checks[f"{prefix}.gemv_count"] = (
            sum(u.gemv_count for u in usages)
            + sum(c.gemv_count for c in comps)
            == totals["gemv_count"]
        )
        checks[f"{prefix}.macs"] = (
            sum(u.macs for u in usages) + sum(c.macs for c in comps)
            == totals["macs"]
        )
        checks[f"{prefix}.energy"] = math.isclose(
            math.fsum(
                [u.accelerator_energy_j for u in usages]
                + [c.accelerator_energy_j for c in comps]
            ),
            totals["energy_j"],
            rel_tol=1e-9,
            abs_tol=1e-18,
        )
    known = set(totals_by_worker)
    checks["no_orphan_records"] = all(
        u.device_id in known for u in ledger.all_usages()
    ) and all(c.device_id in known for c in ledger.compensations)
    checks["pool_wear_total"] = ledger.device_wear_bytes == sum(
        totals["cell_writes"] for totals in totals_by_worker.values()
    )
    checks["pool_energy_total"] = math.isclose(
        ledger.device_accelerator_energy_j,
        math.fsum(totals["energy_j"] for totals in totals_by_worker.values()),
        rel_tol=1e-9,
        abs_tol=1e-18,
    )
    return checks


@dataclass
class GatewayConfig:
    """Tuning knobs of one :class:`AsyncGateway`."""

    #: Worker processes (each one private emulated device).
    num_workers: int = 2
    #: CIM tiles inside each worker's device.
    num_tiles: int = 1
    #: Crossbar geometry/mode of the worker devices (None = Table I).
    crossbar_rows: Optional[int] = None
    crossbar_cols: Optional[int] = None
    crossbar_mode: str = "ideal"
    #: Compiler options of the worker compilers.
    compile_options: CompileOptions = field(default_factory=CompileOptions)
    #: Shared on-disk compile-cache directory (None = per-worker memory
    #: caches only; with a directory, workers share compilations).
    cache_dir: Optional[str] = None
    #: Admission backpressure: reject submissions once this many requests
    #: are queued (None = unbounded, the differential's configuration —
    #: rejections are load-dependent, so the diff runs without them).
    max_pending: Optional[int] = None
    #: Execution attempts per request across worker deaths.
    max_attempts: int = 3
    #: ``multiprocessing`` start method (None = fork where available).
    start_method: Optional[str] = None
    #: Scrub crossbar residency between requests inside each worker.
    scrub_leases: bool = True

    def worker_wire(self) -> dict:
        """The worker-process config as a plain picklable dict."""
        return {
            "num_tiles": self.num_tiles,
            "crossbar_rows": self.crossbar_rows,
            "crossbar_cols": self.crossbar_cols,
            "crossbar_mode": self.crossbar_mode,
            "compile_options": encode_compile_options(self.compile_options),
            "cache_dir": self.cache_dir,
            "scrub_leases": self.scrub_leases,
        }


@dataclass
class _Flight:
    """One submitted request in flight through the gateway."""

    request: GatewayRequest
    future: asyncio.Future
    submitted_s: float
    dispatched_s: Optional[float] = None
    worker_id: Optional[int] = None


class _Worker:
    """Gateway-side bookkeeping of one pool worker."""

    def __init__(self, worker_id: int, process, request_queue):
        self.worker_id = worker_id
        self.process = process
        self.request_queue = request_queue
        self.dead = False
        self.served = 0
        self.busy_s = 0.0
        #: Last cumulative physical snapshot this worker shipped (the
        #: accounting currency that survives its death).
        self.last_physical: dict[str, float] = dict(_PHYSICAL_ZERO)
        #: Authoritative totals shipped on graceful drain (fsum-exact).
        self.drained_totals: Optional[dict[str, float]] = None
        self.drained_event: Optional[asyncio.Event] = None


class AsyncGateway:
    """Wall-clock serving gateway over a pool of device workers."""

    def __init__(self, config: Optional[GatewayConfig] = None):
        self.config = config or GatewayConfig()
        if self.config.num_workers < 1:
            raise GatewayError("gateway needs at least one worker")
        if self.config.max_attempts < 1:
            raise GatewayError("max_attempts must be >= 1")
        self.clock = WallClock()
        self.metrics = MetricsRegistry()
        self.ledger = AccountingLedger(crossbar_size_bytes=0.0)
        self.dead_letters: list[str] = []
        self._workers: list[_Worker] = []
        self._idle: deque[int] = deque()
        self._pending: deque[_Flight] = deque()
        self._inflight: dict[int, _Flight] = {}
        self._seq = 0
        self._bill_counter = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._response_queue = None
        self._collector: Optional[threading.Thread] = None
        self._collector_stop = threading.Event()
        self._monitor_task: Optional[asyncio.Task] = None
        self._started = False
        self._draining = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncGateway":
        """Spawn the worker pool, the collector thread and the monitor."""
        if self._started:
            raise GatewayError("gateway already started")
        import multiprocessing

        method = self.config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        ctx = multiprocessing.get_context(method)
        self._loop = asyncio.get_running_loop()
        self._response_queue = ctx.Queue()
        wire = self.config.worker_wire()
        # Workers fork *before* the collector thread exists (forking a
        # multi-threaded parent is where fork goes wrong).
        for worker_id in range(self.config.num_workers):
            request_queue = ctx.Queue()
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, wire, request_queue, self._response_queue),
                daemon=True,
                name=f"gateway-worker-{worker_id}",
            )
            process.start()
            worker = _Worker(worker_id, process, request_queue)
            worker.drained_event = asyncio.Event()
            self._workers.append(worker)
            self._idle.append(worker_id)
            self.metrics.observe_device_state(worker_id, "up")
        self._collector = threading.Thread(
            target=self._collect, name="gateway-collector", daemon=True
        )
        self._collector.start()
        self._monitor_task = self._loop.create_task(self._monitor())
        self._started = True
        return self

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            await self.drain()

    @property
    def alive_workers(self) -> list[int]:
        return [w.worker_id for w in self._workers if not w.dead]

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(
        self,
        tenant: str,
        source: str,
        params: Optional[Mapping[str, float]] = None,
        arrays: Optional[Mapping[str, np.ndarray]] = None,
        fault: Optional[str] = None,
    ) -> "asyncio.Future[GatewayResponse]":
        """Queue one request; returns a future resolving to its
        :class:`~repro.gateway.wire.GatewayResponse`.  Never raises for
        per-request problems — backpressure resolves the future with a
        ``rejected`` response, execution problems with a ``failed`` one."""
        if not self._started:
            raise GatewayError("gateway not started")
        if self._draining or self._closed:
            raise GatewayError("gateway is draining; admission is closed")
        self._seq += 1
        request = GatewayRequest(
            request_id=self._seq,
            tenant=tenant,
            source=source,
            params=dict(params or {}),
            arrays={name: np.asarray(value) for name, value in (arrays or {}).items()},
            fault=fault,
        )
        future = self._loop.create_future()
        self.metrics.observe_submit()
        now_s = self.clock.now_s
        if (
            self.config.max_pending is not None
            and len(self._pending) >= self.config.max_pending
        ):
            self.metrics.observe_admission(False)
            self.ledger.record_rejection(tenant)
            response = GatewayResponse(
                request_id=request.request_id,
                tenant=tenant,
                status="rejected",
                worker_id=-1,
                reason=(
                    f"gateway backpressure: {len(self._pending)} requests "
                    f"pending (max_pending={self.config.max_pending})"
                ),
            )
            response.submitted_s = response.completed_s = now_s
            future.set_result(response)
            return future
        self.metrics.observe_admission(True)
        self._pending.append(_Flight(request, future, submitted_s=now_s))
        self._dispatch()
        return future

    async def submit(self, *args, **kwargs) -> GatewayResponse:
        return await self.submit_nowait(*args, **kwargs)

    # ------------------------------------------------------------------
    # Dispatch / collection (loop thread only)
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        while self._pending and self._idle:
            worker_id = self._idle.popleft()
            worker = self._workers[worker_id]
            if worker.dead:
                continue
            flight = self._pending.popleft()
            flight.worker_id = worker_id
            flight.dispatched_s = self.clock.now_s
            self._inflight[worker_id] = flight
            worker.request_queue.put((REQUEST_FRAME, flight.request.to_json()))

    def _collect(self) -> None:
        """Collector thread: response queue -> asyncio loop."""
        while not self._collector_stop.is_set():
            try:
                frame = self._response_queue.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            except (EOFError, OSError):
                break
            self._loop.call_soon_threadsafe(self._on_frame, frame)

    def _on_frame(self, frame: tuple) -> None:
        kind = frame[0]
        if kind == RESPONSE_FRAME:
            self._on_response(frame[1], frame[2])
        elif kind == DRAINED_FRAME:
            worker = self._workers[frame[1]]
            worker.drained_totals = dict(frame[2])
            worker.drained_event.set()
        else:  # dead letter: an undecodable frame with no request to answer
            self.dead_letters.append(str(frame[2]))
            worker = self._workers[frame[1]]
            if not worker.dead:
                self._idle.append(frame[1])
                self._dispatch()

    def _on_response(self, worker_id: int, payload: str) -> None:
        response = GatewayResponse.from_json(payload)
        flight = self._inflight.pop(worker_id, None)
        worker = self._workers[worker_id]
        worker.last_physical = dict(response.physical)
        if flight is None:
            return  # stale frame (should not happen: one in flight per worker)
        now_s = self.clock.now_s
        response.submitted_s = flight.submitted_s
        response.dispatched_s = flight.dispatched_s
        response.completed_s = now_s
        worker.served += 1
        worker.busy_s += now_s - flight.dispatched_s
        if not worker.dead:
            self._idle.append(worker_id)
        self.metrics.observe_compile(response.compile_hits, response.compile_misses)
        if response.status == "completed":
            self.metrics.observe_completion(
                response.tenant,
                latency_s=now_s - flight.submitted_s,
                queueing_delay_s=flight.dispatched_s - flight.submitted_s,
            )
            if flight.request.attempt > 1:
                self.metrics.observe_recovery()
        else:
            self.metrics.observe_failure()
        self._record_billing(flight, response, now_s)
        if not flight.future.done():
            flight.future.set_result(response)
        self._dispatch()

    def _record_billing(
        self, flight: _Flight, response: GatewayResponse, now_s: float
    ) -> None:
        """Fold the worker-measured usage into the gateway ledger, keyed
        by worker id (= device id): the wall-clock analogue of the
        simulated server's per-tenant accounting."""
        from repro.serve.accounting import RequestUsage

        for energy_j in response.housekeeping_energy_j:
            self.ledger.record_housekeeping(energy_j, device_id=response.worker_id)
        if not response.usage:
            return
        self._bill_counter += 1
        self.ledger.record(
            RequestUsage(
                request_id=response.request_id,
                tenant=response.tenant,
                batch_id=self._bill_counter,
                arrival_s=flight.submitted_s,
                completed_s=now_s,
                service_s=response.usage["service_s"],
                latency_s=now_s - flight.submitted_s,
                host_energy_j=response.usage["host_energy_j"],
                offload_energy_j=response.usage["offload_energy_j"],
                accelerator_energy_j=response.usage["accelerator_energy_j"],
                crossbar_cell_writes=int(response.usage["crossbar_cell_writes"]),
                crossbar_write_ops=int(response.usage["crossbar_write_ops"]),
                gemv_count=int(response.usage["gemv_count"]),
                macs=int(response.usage["macs"]),
                dma_bytes=int(response.usage["dma_bytes"]),
                device_id=response.worker_id,
            )
        )

    # ------------------------------------------------------------------
    # Worker-crash recovery
    # ------------------------------------------------------------------
    async def _monitor(self) -> None:
        """Poll worker liveness; recover in-flight work from the dead."""
        while not self._closed:
            for worker in self._workers:
                if not worker.dead and not worker.process.is_alive():
                    self._on_worker_death(worker)
            await asyncio.sleep(0.05)

    def _on_worker_death(self, worker: _Worker) -> None:
        worker.dead = True
        worker_id = worker.worker_id
        self.metrics.observe_device_state(worker_id, "down")
        try:
            self._idle.remove(worker_id)
        except ValueError:
            pass
        flight = self._inflight.pop(worker_id, None)
        self.metrics.observe_fault("worker-crash")
        if flight is not None:
            # The attempt's physical work (if any) died with the process:
            # its device state is gone, and it shipped neither a usage
            # record nor a physical snapshot, so the partition stays exact.
            # The compensation record carries zero measured deltas and
            # exists as the audit trail of the lost attempt.
            self.ledger.record_compensation(
                FaultCompensation(
                    request_id=flight.request.request_id,
                    tenant=flight.request.tenant,
                    device_id=worker_id,
                    batch_id=0,
                    at_s=self.clock.now_s,
                    reason=(
                        f"worker {worker_id} died serving request "
                        f"{flight.request.request_id} "
                        f"(exitcode={worker.process.exitcode})"
                    ),
                    op="worker-crash",
                    offload_energy_j=0.0,
                    accelerator_energy_j=0.0,
                    crossbar_cell_writes=0,
                    crossbar_write_ops=0,
                    gemv_count=0,
                    macs=0,
                    dma_bytes=0,
                )
            )
            self._retry(flight)
        if not self.alive_workers:
            self._fail_all("no surviving gateway workers")

    def _retry(self, flight: _Flight) -> None:
        request = flight.request
        if request.attempt >= self.config.max_attempts:
            self.metrics.observe_unrecovered()
            self._resolve_failed(
                flight,
                f"request {request.request_id}: {request.attempt} attempts "
                "exhausted across worker deaths",
            )
            return
        request.attempt += 1
        # Strip the fault marker: one marker means exactly one death, and
        # the retry must run clean on a surviving worker.
        request.fault = None
        self.metrics.observe_retry()
        self._pending.appendleft(flight)
        self._dispatch()

    def _resolve_failed(self, flight: _Flight, reason: str) -> None:
        if flight.future.done():
            return
        response = GatewayResponse(
            request_id=flight.request.request_id,
            tenant=flight.request.tenant,
            status="failed",
            worker_id=flight.worker_id if flight.worker_id is not None else -1,
            attempt=flight.request.attempt,
            reason=reason,
        )
        response.submitted_s = flight.submitted_s
        response.dispatched_s = flight.dispatched_s
        response.completed_s = self.clock.now_s
        self.metrics.observe_failure()
        flight.future.set_result(response)

    def _fail_all(self, reason: str) -> None:
        for flight in list(self._pending):
            self._resolve_failed(flight, reason)
        self._pending.clear()
        for flight in list(self._inflight.values()):
            self._resolve_failed(flight, reason)
        self._inflight.clear()

    # ------------------------------------------------------------------
    # Drain / teardown
    # ------------------------------------------------------------------
    async def drain(self) -> dict:
        """Graceful shutdown: stop admission, serve everything in flight,
        collect each worker's authoritative totals, tear the pool down.
        Returns the final metrics snapshot.  Idempotent."""
        if self._closed:
            return self.snapshot()
        self._draining = True
        while self._pending or self._inflight:
            futures = [f.future for f in self._pending] + [
                f.future for f in self._inflight.values()
            ]
            await asyncio.gather(*futures, return_exceptions=True)
        for worker in self._workers:
            if not worker.dead:
                worker.request_queue.put((DRAIN_FRAME,))
        for worker in self._workers:
            if not worker.dead:
                try:
                    await asyncio.wait_for(worker.drained_event.wait(), timeout=30.0)
                except asyncio.TimeoutError:
                    pass
        self._closed = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            if not worker.dead:
                self.metrics.observe_device_state(worker.worker_id, "drained")
        return self.snapshot()

    # ------------------------------------------------------------------
    # Accounting / metrics
    # ------------------------------------------------------------------
    def verify_partition(self) -> dict[str, bool]:
        """Exactly-once reconciliation across the pool: on every worker,
        billed tenant work must equal that worker's physical accelerator
        totals — the fsum-exact drain totals for survivors, the last
        shipped cumulative snapshot for the dead (whose doomed attempt
        shipped no usage).  Mirrors
        :meth:`~repro.serve.accounting.AccountingLedger.verify_fleet_partition`."""
        totals_by_worker = {
            worker.worker_id: (
                worker.drained_totals
                if worker.drained_totals is not None
                else worker.last_physical
            )
            for worker in self._workers
        }
        return partition_checks(self.ledger, totals_by_worker)

    def snapshot(self) -> dict:
        """MetricsRegistry-style snapshot plus the gateway's own section:
        per-worker utilization (busy wall time over elapsed wall time),
        served counts, liveness, and pool-wide throughput."""
        elapsed_s = self.clock.now_s
        snap = self.metrics.snapshot(
            {"pending": len(self._pending), "inflight": len(self._inflight)}
        )
        workers = {}
        for worker in self._workers:
            workers[str(worker.worker_id)] = {
                "alive": not worker.dead,
                "served": worker.served,
                "busy_s": worker.busy_s,
                "utilization": worker.busy_s / elapsed_s if elapsed_s > 0 else 0.0,
            }
        completed = self.metrics.completed
        snap["gateway"] = {
            "elapsed_s": elapsed_s,
            "num_workers": self.config.num_workers,
            "alive_workers": len(self.alive_workers),
            "throughput_rps": completed / elapsed_s if elapsed_s > 0 else 0.0,
            "workers": workers,
            "dead_letters": len(self.dead_letters),
        }
        return snap

"""Open-loop load generator for the wall-clock gateway.

Drives an :class:`~repro.gateway.server.AsyncGateway` with an
:class:`~repro.trace.arrivals.ArrivalPlan` (Poisson or trace-resampled —
see :mod:`repro.trace.arrivals`): requests fire at their scheduled wall
times whether or not earlier ones completed, which is what makes the
measured p50/p99 honest — a closed-loop generator would let a slow pool
throttle its own offered load.  When the generator falls behind its
schedule (offered rate above pool capacity) it fires immediately and the
backlog shows up where it should: in the latency distribution.

Workloads supply the request *bodies* paired with the plan's fire
*times*: :func:`synthetic_gemv_workload` cycles a small bank of
per-tenant GEMV operand sets (the paper's kernel, compile-cache friendly
by design), :func:`trace_workload` cycles a recorded trace's actual
submissions — source, params and array payloads byte-for-byte.

The :class:`LoadReport` is the benchmark currency: offered/served
counts, real wall-clock latency percentiles, achieved throughput and the
gateway's final snapshot (per-worker utilization included).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

import numpy as np

from repro.gateway.server import AsyncGateway
from repro.gateway.wire import GatewayResponse
from repro.serve.metrics import percentile
from repro.trace.arrivals import ArrivalPlan
from repro.trace.schema import Trace, TraceFormatError

#: A workload maps a request index to its body.
Workload = Callable[[int], "WorkItem"]

#: The paper's offload kernel (16x16 GEMV), the synthetic workload body.
GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
}
"""


@dataclass(frozen=True)
class WorkItem:
    """One request body the load generator submits."""

    tenant: str
    source: str
    params: Mapping[str, float]
    arrays: Mapping[str, np.ndarray]
    #: Deterministic fault marker to inject with this request (see
    #: :data:`repro.gateway.wire.FAULT_MARKERS`; the chaos harness's seam).
    fault: Optional[str] = None
    #: Deadline budget in seconds *from submission* (the generator turns
    #: it into an absolute gateway-clock ``deadline_s`` at fire time).
    deadline_budget_s: Optional[float] = None


def synthetic_gemv_workload(
    num_tenants: int = 4, m: int = 16, n: int = 16, seed: int = 0
) -> Workload:
    """Per-tenant GEMV operand banks, cycled round-robin by index.

    Operands are integer-valued float32 (exact across machines) and
    fixed per tenant, so every request is deterministic and the compile
    cache sees one kernel — the workload stresses the serving path, not
    the compiler.
    """
    if num_tenants < 1:
        raise ValueError("num_tenants must be >= 1")
    rng = np.random.default_rng(seed)
    banks = []
    for index in range(num_tenants):
        banks.append(
            WorkItem(
                tenant=f"tenant-{index}",
                source=GEMV_SOURCE,
                params={"M": m, "N": n},
                arrays={
                    "A": rng.integers(0, 8, size=(m, n)).astype(np.float32),
                    "x": rng.integers(0, 8, size=(n,)).astype(np.float32),
                    "y": np.zeros(m, dtype=np.float32),
                },
            )
        )
    return lambda index: banks[index % num_tenants]


def trace_workload(trace: Trace) -> Workload:
    """A recorded trace's submissions, cycled by index (source, params
    and arrays byte-for-byte — the replay-driven workload of ROADMAP
    item 5)."""
    from repro.trace.schema import decode_array

    submissions = trace.submissions()
    if not submissions:
        raise TraceFormatError("trace records no submissions to replay")
    items = [
        WorkItem(
            tenant=event["tenant"],
            source=event["source"],
            params=dict(event["params"]),
            arrays={
                name: decode_array(payload, where=f"submit array {name!r}")
                for name, payload in event["arrays"].items()
            },
        )
        for event in submissions
    ]
    return lambda index: items[index % len(items)]


@dataclass
class LoadReport:
    """Measured outcome of one open-loop run."""

    plan_kind: str
    offered: int
    completed: int
    failed: int
    rejected: int
    deadline_exceeded: int
    duration_s: float
    offered_rate_rps: float
    throughput_rps: float
    latency_p50_s: float
    latency_p99_s: float
    latency_mean_s: float
    latency_max_s: float
    #: How far behind schedule the generator fell at its worst (0.0 when
    #: the pool kept up with the offered rate).
    max_schedule_lag_s: float
    snapshot: dict = field(default_factory=dict)
    #: Full per-request responses, captured only when the caller asked
    #: for them (``return_responses=True``) — the chaos harness's
    #: bit-identity currency.  Never serialized (see :meth:`to_dict`).
    responses: Optional[list] = field(default=None, repr=False)

    @property
    def served_fraction(self) -> float:
        """Requests that produced a terminal response (any status)."""
        total = (
            self.completed + self.failed + self.rejected
            + self.deadline_exceeded
        )
        return total / self.offered if self.offered else 0.0

    def to_dict(self) -> dict:
        return {
            "plan_kind": self.plan_kind,
            "offered": self.offered,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "duration_s": self.duration_s,
            "offered_rate_rps": self.offered_rate_rps,
            "throughput_rps": self.throughput_rps,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "latency_mean_s": self.latency_mean_s,
            "latency_max_s": self.latency_max_s,
            "max_schedule_lag_s": self.max_schedule_lag_s,
            "served_fraction": self.served_fraction,
            "snapshot": self.snapshot,
        }


async def run_open_loop(
    gateway: AsyncGateway,
    plan: ArrivalPlan,
    workload: Workload,
    progress: Optional[Callable[[int, int], None]] = None,
    stop: Optional[asyncio.Event] = None,
    return_responses: bool = False,
) -> LoadReport:
    """Fire *plan* through *gateway*, await every response, measure.

    The gateway must be started; it is left running (the caller decides
    when to drain — a benchmark typically runs several plans through one
    pool before draining it for the authoritative accounting check).

    *stop* closes admission early: once set, no further requests fire,
    but every request already offered is still awaited — the graceful
    half of a SIGINT drain (the caller drains the gateway for the other
    half, flushing the bills).
    """
    clock = gateway.clock
    start_s = clock.now_s
    futures: list[asyncio.Future] = []
    max_lag_s = 0.0
    for index, offset_s in enumerate(plan.times_s):
        if stop is not None and stop.is_set():
            break
        target_s = start_s + offset_s
        delay_s = target_s - clock.now_s
        if delay_s > 0:
            if stop is None:
                await asyncio.sleep(delay_s)
            else:
                # Sleep interruptibly so a stop request closes admission
                # now, not after the next scheduled arrival.
                try:
                    await asyncio.wait_for(stop.wait(), timeout=delay_s)
                    break
                except asyncio.TimeoutError:
                    pass
        else:
            max_lag_s = max(max_lag_s, -delay_s)
            if index % 64 == 0:
                # Behind schedule: still yield periodically so collector
                # callbacks (responses, retries) keep flowing.
                await asyncio.sleep(0)
        item = workload(index)
        deadline_s = (
            clock.now_s + item.deadline_budget_s
            if item.deadline_budget_s is not None
            else None
        )
        futures.append(
            gateway.submit_nowait(
                item.tenant,
                item.source,
                item.params,
                item.arrays,
                fault=item.fault,
                deadline_s=deadline_s,
            )
        )
        if progress is not None and (index + 1) % 1000 == 0:
            progress(index + 1, len(plan))
    responses: list[GatewayResponse] = await asyncio.gather(*futures)
    duration_s = clock.now_s - start_s
    completed = [r for r in responses if r.status == "completed"]
    failed = sum(1 for r in responses if r.status == "failed")
    rejected = sum(1 for r in responses if r.status == "rejected")
    deadline_exceeded = sum(
        1 for r in responses if r.status == "deadline-exceeded"
    )
    latencies = [r.latency_s for r in completed if r.latency_s is not None]
    return LoadReport(
        plan_kind=plan.kind,
        offered=len(futures),
        completed=len(completed),
        failed=failed,
        rejected=rejected,
        deadline_exceeded=deadline_exceeded,
        duration_s=duration_s,
        offered_rate_rps=plan.mean_rate_rps,
        throughput_rps=len(completed) / duration_s if duration_s > 0 else 0.0,
        latency_p50_s=percentile(latencies, 50) if latencies else 0.0,
        latency_p99_s=percentile(latencies, 99) if latencies else 0.0,
        latency_mean_s=sum(latencies) / len(latencies) if latencies else 0.0,
        latency_max_s=max(latencies) if latencies else 0.0,
        max_schedule_lag_s=max_lag_s,
        snapshot=gateway.snapshot(),
        responses=responses if return_responses else None,
    )

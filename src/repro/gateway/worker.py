"""The gateway's pool worker: one process, one private emulated device.

Each worker owns a complete private serving stack — a
:class:`~repro.system.system.CimSystem`, an
:class:`~repro.codegen.executor.OffloadExecutor`, a compiler bound to the
**shared on-disk** :class:`~repro.compiler.cache.KernelCompileCache`
(flock-guarded, so concurrent workers race safely), and a
:class:`~repro.serve.server.CimServer` configured with
``max_batch_size=1`` — and serves each request as a batch of one through
:class:`~repro.serve.dispatch.LeaseExecutor`.  That is *literally* the
reference server's dispatch path, which is what makes the wall-clock
gateway's responses bit-identical to the ``VirtualClock`` mode: the only
thing the process pool changes is *when* requests run, never *what* they
compute or bill.

Determinism inside one worker comes from the same invariants the serving
tests lean on: leases are scrubbed (no cross-request crossbar residency),
the runtime releases every device buffer between requests (identical
programs re-allocate at identical CMA addresses), and usage is measured
as per-request ledger deltas — so a request's usage record is a pure
function of the request, independent of which worker serves it or what
ran before.

The worker speaks the :mod:`repro.gateway.wire` JSON format over a pair
of ``multiprocessing`` queues and honours the deterministic
fault-injection markers: ``die-before-dispatch`` exits the process before
any work happens, ``die-mid-request`` performs the full dispatch and
exits before the response leaves the process (so the computed outputs and
the device's physical ledgers are genuinely lost, exactly like a machine
kill).  Crash recovery and compensation are the gateway's job
(:mod:`repro.gateway.server`).
"""

from __future__ import annotations

import math
import os
import time
from typing import Optional

from repro.gateway.wire import (
    FAULT_EXIT_CODE,
    GatewayRequest,
    GatewayResponse,
    USAGE_FIELDS,
    WireFormatError,
    slow_fault_delay_s,
)

#: Queue frames (gateway -> worker).
REQUEST_FRAME = "request"
DRAIN_FRAME = "drain"

#: Queue frames (worker -> gateway).
RESPONSE_FRAME = "response"
DRAINED_FRAME = "drained"


class _PhysicalTotals:
    """Running physical ledger of one worker's accelerator.

    The accelerator's own ``total_*()`` helpers are O(completed runs) per
    call, so the worker folds finished runs into these counters after
    every request and clears the run list — memory and snapshot cost stay
    flat no matter how many requests the worker serves.  Per-run energies
    are retained so the drain-time totals can use :func:`math.fsum`
    (order-independent, correctly rounded), matching the exactness
    contract of :meth:`~repro.serve.accounting.AccountingLedger.verify_partition`.
    """

    def __init__(self) -> None:
        self.run_energies_j: list[float] = []
        self.energy_j = 0.0           # running sum (snapshot currency)
        self.latency_s = 0.0
        self.cell_writes = 0
        self.write_ops = 0
        self.gemv_count = 0
        self.macs = 0
        self.dma_bytes = 0

    def fold(self, accelerator) -> None:
        """Absorb (and clear) the accelerator's finished runs."""
        for run in accelerator.completed_runs:
            self.run_energies_j.append(run.energy_j)
            self.energy_j += run.energy_j
            self.latency_s += run.latency_s
            self.cell_writes += run.crossbar_cell_writes
            self.write_ops += run.crossbar_write_ops
            self.gemv_count += run.gemv_count
            self.macs += run.macs
            self.dma_bytes += run.dma_bytes
        accelerator.completed_runs.clear()

    def snapshot(self) -> dict[str, float]:
        return {
            "energy_j": self.energy_j,
            "latency_s": self.latency_s,
            "cell_writes": self.cell_writes,
            "write_ops": self.write_ops,
            "gemv_count": self.gemv_count,
            "macs": self.macs,
            "dma_bytes": self.dma_bytes,
        }

    def authoritative(self) -> dict[str, float]:
        """Drain-time totals with the energy re-summed exactly."""
        totals = self.snapshot()
        totals["energy_j"] = math.fsum(self.run_energies_j)
        return totals


def build_worker_server(config: dict):
    """Build one worker's private serving stack from the gateway's wire
    config (a plain dict, so it pickles identically under ``fork`` and
    ``spawn``).  Shared between real pool workers and the in-process
    differential reference."""
    from repro.compiler.cache import KernelCompileCache
    from repro.serve.server import CimServer, ServerConfig
    from repro.trace.schema import decode_compile_options

    cache_dir = config.get("cache_dir")
    compile_cache = KernelCompileCache(disk_dir=cache_dir)
    server_config = ServerConfig(
        num_tiles=int(config.get("num_tiles", 1)),
        # Workers serve strictly one request per lease: the wall-clock
        # pool parallelises across processes, never inside one device.
        max_batch_size=1,
        batch_window_s=0.0,
        scrub_leases=bool(config.get("scrub_leases", True)),
        compile_options=decode_compile_options(
            dict(config.get("compile_options", {}))
        ),
        crossbar_rows=config.get("crossbar_rows"),
        crossbar_cols=config.get("crossbar_cols"),
        crossbar_mode=config.get("crossbar_mode", "ideal"),
    )
    return CimServer(server_config, compile_cache=compile_cache)


def serve_one(server, request: GatewayRequest, worker_id: int) -> GatewayResponse:
    """Serve one wire request on *server* as a batch of one.

    Never raises: compile errors, bad payloads and execution errors all
    resolve to a ``failed`` response (one bad request must not kill the
    worker).  Usage, lease housekeeping and compile-cache deltas are
    measured around the call so the gateway can rebuild the exact
    accounting the reference server would have produced.

    Measurement isolation: the system's stats ledgers and the runtime's
    buffer-handle numbering are reset before every request, so the
    measured deltas (and any handle quoted in an error message) are exact
    values — a pure function of the request, bit-identical no matter
    which worker serves it, in what order, or under which clock.  Without
    the reset, deltas are differences against a cumulative float ledger
    and round differently depending on how much the server served before.
    The caller must fold ``accelerator.completed_runs`` (via
    :class:`_PhysicalTotals`) *before* the next call — the reset clears
    them.
    """
    from repro.serve.request import RequestStatus

    server.system.reset_stats()
    server.system.runtime.reset_handle_counter()
    ledger = server.ledger
    housekeeping0 = len(ledger.housekeeping_energy_j_records)
    hits0 = server.compile_cache.hits
    misses0 = server.compile_cache.misses
    tenant_account = ledger.account(request.tenant)
    usages0 = len(tenant_account.usages)

    status = "failed"
    reason: Optional[str] = None
    result = {}
    try:
        handle = server.submit(
            request.tenant, request.source, request.params, request.arrays
        )
        server.drain()
        if handle.status is RequestStatus.COMPLETED:
            status = "completed"
            result = handle.result()
        elif handle.status is RequestStatus.REJECTED:
            status = "rejected"
            reason = handle.reject_reason
        else:
            reason = handle.reject_reason
    except Exception as exc:  # compile error, malformed request, ...
        reason = f"{type(exc).__name__}: {exc}"

    usage: dict[str, float] = {}
    if len(tenant_account.usages) > usages0:
        record = tenant_account.usages[-1]
        usage = {name: getattr(record, name) for name in USAGE_FIELDS}
    housekeeping = ledger.housekeeping_energy_j_records[housekeeping0:]
    return GatewayResponse(
        request_id=request.request_id,
        tenant=request.tenant,
        status=status,
        worker_id=worker_id,
        attempt=request.attempt,
        reason=reason,
        result=result,
        usage=usage,
        housekeeping_energy_j=list(housekeeping),
        compile_hits=server.compile_cache.hits - hits0,
        compile_misses=server.compile_cache.misses - misses0,
    )


def _crash(response_queue) -> None:
    """Abrupt process death for the crash fault markers — but only after
    the response queue's feeder thread has flushed.  ``os._exit`` while
    the feeder holds the queue's *shared* write lock would leave that
    cross-process lock permanently held, wedging every surviving worker's
    next ``put``; close + join guarantees the feeder is done before the
    process dies, without shipping anything new."""
    response_queue.close()
    response_queue.join_thread()
    os._exit(FAULT_EXIT_CODE)


def worker_main(worker_id: int, config: dict, request_queue, response_queue) -> None:
    """Pool worker entry point (top-level so it spawns on any platform).

    Loops on the request queue until a drain frame arrives, serving one
    request at a time and shipping each response together with the
    worker-cumulative physical snapshot (the accounting currency that
    survives the worker's death — see :mod:`repro.gateway.server`).  The
    drain frame is answered with the worker's authoritative physical
    totals, then the worker exits cleanly.
    """
    server = build_worker_server(config)
    physical = _PhysicalTotals()
    try:
        while True:
            frame = request_queue.get()
            kind = frame[0]
            if kind == DRAIN_FRAME:
                response_queue.put(
                    (DRAINED_FRAME, worker_id, physical.authoritative())
                )
                break
            try:
                request = GatewayRequest.from_json(frame[1])
            except WireFormatError as exc:
                # A frame that decodes this badly has no request id to
                # answer for; report it as a dead letter and move on.
                response_queue.put(("dead-letter", worker_id, str(exc)))
                continue
            if request.fault == "die-before-dispatch":
                _crash(response_queue)
            if request.fault == "hang":
                # Wedge forever without doing any work: the process stays
                # alive but never answers, which is exactly the shape the
                # gateway's hang watchdog must detect and SIGKILL.  No
                # work happened, so the zero-work crash compensation the
                # gateway records is physically exact.
                while True:
                    time.sleep(3600.0)
            slow_s = slow_fault_delay_s(request.fault)
            if slow_s is not None:
                # Stall, then serve normally: the request loses wall time
                # (deadline pressure) but no physical work.
                time.sleep(slow_s)
            response = serve_one(server, request, worker_id)
            physical.fold(server.system.accelerator)
            if request.fault == "die-mid-request":
                # The device physically worked (ledgers and outputs exist
                # in this process) and then the process dies before the
                # response escapes: the work is genuinely lost, which is
                # exactly the window the gateway's crash recovery and
                # FaultCompensation accounting must cover.
                _crash(response_queue)
            response.physical = physical.snapshot()
            payload = response.to_json()
            if request.fault == "corrupt-frame":
                # Byzantine worker: the device worked, but the frame that
                # leaves the process is garbage (truncated JSON).  The
                # gateway must fail only this request with a typed reason
                # and kill this process — its in-process ledgers now hold
                # work no decodable snapshot will ever account for, so
                # letting it live would break the partition.
                payload = payload[: len(payload) // 2]
            response_queue.put((RESPONSE_FRAME, worker_id, payload))
    finally:
        server.shutdown()

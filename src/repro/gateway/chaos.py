"""Seeded chaos harness for the wall-clock gateway.

Drives a reproducible fault storm through a live
:class:`~repro.gateway.server.AsyncGateway` and then *proves* the
resilience layer held, rather than merely observing that nothing crashed.
The storm is a Poisson-paced open-loop run (the honest load shape — see
:mod:`repro.gateway.loadgen`) in which a seeded schedule assigns each
request a deterministic fault marker (``hang``, ``die-before-dispatch``,
``die-mid-request``, ``corrupt-frame``, ``slow:<s>`` — see
:data:`repro.gateway.wire.FAULT_MARKERS`) and, independently, a deadline
budget.  Hot spares, budgeted respawns and the hang watchdog are all
enabled, so the pool is expected to keep healing itself for the whole
storm.

The invariant suite asserted after the drain is the subsystem's whole
contract at once:

* **zero lost requests** — every offered request resolved to a terminal
  typed response (completed, failed, rejected or deadline-exceeded);
  nothing hung, nothing vanished;
* **exact partition** — :meth:`~repro.gateway.server.AsyncGateway.verify_partition`
  passes every check: across every worker incarnation the storm spawned,
  billed usage plus fault compensations equals the physical accelerator
  totals (integer counters by ``==``, energies to fsum exactness);
* **exactly-once billing** — the multiset of billed request ids equals
  the set of completed request ids: every served request billed exactly
  once, no doomed attempt or discarded late result billed at all;
* **bit-identical results** — every completed response's result arrays
  match, byte for byte, a fault-free in-process reference run of the
  same workload item (chaos may change *whether* and *when* a request
  completes, never *what* it computes).

``repro gateway chaos`` runs this from the command line; the CI
``gateway-chaos`` job runs it at ≥1k requests.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

import numpy as np

from repro.gateway.loadgen import (
    LoadReport,
    Workload,
    run_open_loop,
    synthetic_gemv_workload,
)
from repro.gateway.server import AsyncGateway, GatewayConfig
from repro.gateway.wire import GatewayRequest, RESPONSE_STATUSES
from repro.trace.arrivals import poisson_plan

#: The invariant names, in report order.
INVARIANTS = (
    "zero_lost",
    "partition_exact",
    "exactly_once_billing",
    "bit_identical_results",
)


@dataclass(frozen=True)
class ChaosSpec:
    """One seeded storm: load shape, fault mix, resilience tuning.

    Fault rates are per-request probabilities drawn from one seeded
    stream, so the same spec always injects the same faults at the same
    request indices — a failing storm is replayable by its seed alone.
    """

    num_requests: int = 1000
    seed: int = 0
    #: Pool shape: active workers, pre-spawned hot spares, per-slot
    #: respawn budget (the storm kills workers on purpose, so the budget
    #: is generous — quarantine is for crash *loops*, not crash storms).
    num_workers: int = 3
    hot_spares: int = 1
    max_respawns: int = 16
    respawn_backoff_base_s: float = 0.02
    respawn_backoff_max_s: float = 0.25
    #: Watchdog: ``hang`` faults wedge forever, so this bounds how long
    #: each one holds a worker hostage.
    hang_timeout_s: float = 0.5
    #: Offered load (Poisson, open loop).
    rate_rps: float = 250.0
    num_tenants: int = 4
    #: Per-request fault probabilities (disjoint: one marker at most).
    hang_rate: float = 0.004
    crash_rate: float = 0.008
    corrupt_rate: float = 0.004
    slow_rate: float = 0.01
    slow_delay_s: float = 0.05
    #: Deadline pressure, independent of the fault draw: this fraction of
    #: requests carries a deadline of ``deadline_budget_s`` from submit.
    deadline_rate: float = 0.05
    deadline_budget_s: float = 0.2
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        rates = (self.hang_rate, self.crash_rate, self.corrupt_rate,
                 self.slow_rate, self.deadline_rate)
        if any(rate < 0.0 for rate in rates) or sum(rates[:4]) > 1.0:
            raise ValueError(
                "fault rates must be non-negative and the marker rates "
                "must sum to at most 1.0"
            )

    def gateway_config(self) -> GatewayConfig:
        return GatewayConfig(
            num_workers=self.num_workers,
            hot_spares=self.hot_spares,
            max_respawns=self.max_respawns,
            respawn_backoff_base_s=self.respawn_backoff_base_s,
            respawn_backoff_max_s=self.respawn_backoff_max_s,
            hang_timeout_s=self.hang_timeout_s,
            max_attempts=self.max_attempts,
        )


def chaos_schedule(
    spec: ChaosSpec,
) -> list[tuple[Optional[str], Optional[float]]]:
    """The storm's seeded per-request plan: ``(fault marker, deadline
    budget)`` for each request index.  Pure function of the spec."""
    rng = random.Random(spec.seed)
    schedule: list[tuple[Optional[str], Optional[float]]] = []
    for _ in range(spec.num_requests):
        draw = rng.random()
        fault: Optional[str] = None
        edge = spec.hang_rate
        if draw < edge:
            fault = "hang"
        elif draw < (edge := edge + spec.crash_rate):
            # Split crashes between the two kill points so both the
            # nothing-happened and the work-was-lost windows are hit.
            fault = (
                "die-before-dispatch"
                if rng.random() < 0.5
                else "die-mid-request"
            )
        elif draw < (edge := edge + spec.corrupt_rate):
            fault = "corrupt-frame"
        elif draw < edge + spec.slow_rate:
            fault = f"slow:{spec.slow_delay_s:g}"
        deadline_budget_s = (
            spec.deadline_budget_s
            if rng.random() < spec.deadline_rate
            else None
        )
        schedule.append((fault, deadline_budget_s))
    return schedule


def chaos_workload(spec: ChaosSpec) -> Workload:
    """The synthetic GEMV workload with the storm's seeded fault and
    deadline decorations applied per request index."""
    base = synthetic_gemv_workload(spec.num_tenants, seed=spec.seed)
    schedule = chaos_schedule(spec)
    def decorated(index: int):
        fault, deadline_budget_s = schedule[index % len(schedule)]
        return replace(
            base(index), fault=fault, deadline_budget_s=deadline_budget_s
        )
    return decorated


def _reference_results(spec: ChaosSpec) -> dict[str, dict[str, np.ndarray]]:
    """Fault-free reference result arrays per tenant, served in-process
    through the exact :func:`~repro.gateway.worker.serve_one` path the
    pool workers run — the bit-identity bar for every completed chaos
    response."""
    from repro.gateway.worker import build_worker_server, serve_one

    base = synthetic_gemv_workload(spec.num_tenants, seed=spec.seed)
    server = build_worker_server(spec.gateway_config().worker_wire())
    references: dict[str, dict[str, np.ndarray]] = {}
    try:
        for index in range(spec.num_tenants):
            item = base(index)
            response = serve_one(
                server,
                GatewayRequest(
                    request_id=index + 1,
                    tenant=item.tenant,
                    source=item.source,
                    params=dict(item.params),
                    arrays=dict(item.arrays),
                ),
                worker_id=0,
            )
            if response.status != "completed":
                raise RuntimeError(
                    f"chaos reference run failed for {item.tenant}: "
                    f"{response.reason}"
                )
            references[item.tenant] = dict(response.result)
    finally:
        server.shutdown()
    return references


@dataclass
class ChaosReport:
    """Outcome of one seeded storm: what was injected, what the pool did
    about it, and whether every invariant held."""

    spec: ChaosSpec
    planned_faults: dict[str, int]
    planned_deadlines: int
    load: LoadReport
    invariants: dict[str, bool]
    #: Human-readable evidence for every invariant that failed.
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(self.invariants.values())

    def to_dict(self) -> dict:
        return {
            "spec": asdict(self.spec),
            "planned_faults": dict(self.planned_faults),
            "planned_deadlines": self.planned_deadlines,
            "load": self.load.to_dict(),
            "invariants": dict(self.invariants),
            "violations": list(self.violations),
            "ok": self.ok,
        }


def _check_invariants(
    spec: ChaosSpec,
    gateway: AsyncGateway,
    report: LoadReport,
) -> tuple[dict[str, bool], list[str]]:
    violations: list[str] = []
    responses = report.responses or []

    # 1. Zero lost requests: every offered request reached a terminal
    #    typed response.
    lost = report.offered - len(responses)
    bad_status = [
        r.request_id for r in responses if r.status not in RESPONSE_STATUSES
    ]
    zero_lost = lost == 0 and not bad_status
    if lost:
        violations.append(f"{lost} offered request(s) never resolved")
    for rid in bad_status:
        violations.append(f"request {rid}: unknown terminal status")

    # 2. Exact partition across every worker incarnation.
    partition = gateway.verify_partition()
    partition_exact = all(partition.values())
    for name, passed in sorted(partition.items()):
        if not passed:
            violations.append(f"partition check failed: {name}")

    # 3. Exactly-once billing: billed ids == completed ids, one each.
    completed_ids = sorted(
        r.request_id for r in responses if r.status == "completed"
    )
    billed_ids = sorted(u.request_id for u in gateway.ledger.all_usages())
    exactly_once = billed_ids == completed_ids
    if not exactly_once:
        billed_set, completed_set = set(billed_ids), set(completed_ids)
        for rid in sorted(billed_set - completed_set):
            violations.append(f"request {rid} billed but never completed")
        for rid in sorted(completed_set - billed_set):
            violations.append(f"request {rid} completed but never billed")
        if len(billed_ids) != len(billed_set):
            violations.append("a request was billed more than once")

    # 4. Bit-identical results: chaos must not change what anything
    #    computed.
    references = _reference_results(spec)
    bit_identical = True
    for response in responses:
        if response.status != "completed":
            continue
        expected = references[response.tenant]
        for name in sorted(set(expected) | set(response.result)):
            want = expected.get(name)
            got = response.result.get(name)
            if (
                want is None
                or got is None
                or want.dtype != got.dtype
                or want.shape != got.shape
                or want.tobytes() != got.tobytes()
            ):
                bit_identical = False
                violations.append(
                    f"request {response.request_id}: result array "
                    f"{name!r} differs from the fault-free reference"
                )
    invariants = {
        "zero_lost": zero_lost,
        "partition_exact": partition_exact,
        "exactly_once_billing": exactly_once,
        "bit_identical_results": bit_identical,
    }
    return invariants, violations


async def run_chaos_async(spec: Optional[ChaosSpec] = None) -> ChaosReport:
    """Run one seeded storm end to end: spawn the pool, fire the plan,
    drain, verify every invariant."""
    spec = spec or ChaosSpec()
    schedule = chaos_schedule(spec)
    planned_faults: dict[str, int] = {}
    for fault, _ in schedule:
        if fault is not None:
            planned_faults[fault] = planned_faults.get(fault, 0) + 1
    planned_deadlines = sum(
        1 for _, deadline in schedule if deadline is not None
    )
    gateway = AsyncGateway(spec.gateway_config())
    async with gateway:
        report = await run_open_loop(
            gateway,
            poisson_plan(spec.num_requests, spec.rate_rps, seed=spec.seed),
            chaos_workload(spec),
            return_responses=True,
        )
        # Drain before verifying: the partition's authoritative totals
        # and the final resilience counters only exist post-drain.
        report.snapshot = await gateway.drain()
    invariants, violations = _check_invariants(spec, gateway, report)
    return ChaosReport(
        spec=spec,
        planned_faults=planned_faults,
        planned_deadlines=planned_deadlines,
        load=report,
        invariants=invariants,
        violations=violations,
    )


def run_chaos(spec: Optional[ChaosSpec] = None) -> ChaosReport:
    return asyncio.run(run_chaos_async(spec))

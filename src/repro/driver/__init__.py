"""Kernel-space CIM driver model (Figure 3, kernel space).

The driver mediates every interaction between user space and the
accelerator: it allocates physically-contiguous shared-memory buffers
through a CMA-style allocator, translates user virtual addresses to the
physical addresses the accelerator requires, exposes the context registers
through an ioctl interface, flushes the host caches before triggering the
accelerator (shared-memory coherence), and polls the status register for
completion.  Every driver entry charges host instructions so the evaluation
captures the offload overhead the paper attributes to the host.
"""

from repro.driver.cma import CMAAllocator, CMAError
from repro.driver.address_translation import PageTable, TranslationError
from repro.driver.ioctl import IoctlCommand
from repro.driver.driver import CimDriver, DriverError

__all__ = [
    "CMAAllocator",
    "CMAError",
    "PageTable",
    "TranslationError",
    "IoctlCommand",
    "CimDriver",
    "DriverError",
]

"""ioctl command codes understood by the CIM driver."""

from __future__ import annotations

import enum


class IoctlCommand(enum.IntEnum):
    """Commands of the ``/dev/cim`` character device.

    The numbering mimics Linux ``_IO``-style encodings with an arbitrary
    magic number; the values only need to be stable within the simulation.
    """

    CIM_ALLOC = 0xC1A0_0001       # allocate a contiguous shared buffer
    CIM_FREE = 0xC1A0_0002        # release a buffer
    CIM_WRITE_REG = 0xC1A0_0003   # write one context register
    CIM_READ_REG = 0xC1A0_0004    # read one context register
    CIM_SUBMIT = 0xC1A0_0005      # write a whole kernel descriptor + start
    CIM_WAIT = 0xC1A0_0006        # block until the accelerator is done
    CIM_FLUSH = 0xC1A0_0007       # flush host caches for a buffer range
    CIM_RESET = 0xC1A0_0008       # reset accelerator state
    CIM_QUERY = 0xC1A0_0009       # query device info (tiles, crossbar geometry)

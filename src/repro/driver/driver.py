"""The kernel-space CIM driver.

Responsibilities (Section II-E and Figure 3 of the paper):

* allocate/release physically-contiguous shared-memory buffers via CMA;
* translate user virtual addresses to physical addresses for the device;
* expose the accelerator's context registers through an ioctl interface;
* enforce shared-memory coherence by flushing the host caches before the
  accelerator is started (the accelerator itself uses un-cacheable
  accesses);
* let the host wait for completion by polling the status register.

Every entry point charges host-side instructions to the system's host
energy/time ledger, because the paper explicitly counts the driver overhead
as part of the CIM configuration's energy ("the energy numbers incorporate
the energy spent on the driver (host side) and in the accelerator").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.driver.address_translation import PageTable
from repro.driver.cma import CMAAllocator, CMABlock
from repro.driver.ioctl import IoctlCommand
from repro.hw.accelerator import CIMAccelerator
from repro.hw.context_regs import Command, Register, Status
from repro.hw.energy import HostEnergyModel
from repro.hw.stats import EnergyLedger, StatCounter


class DriverError(RuntimeError):
    """Invalid driver usage (bad handle, device busy, ...)."""


@dataclass
class HostOverheadLedger:
    """Host-side instructions, energy and time charged by the driver/runtime."""

    model: HostEnergyModel = field(default_factory=HostEnergyModel)
    instructions: float = 0.0
    energy_j: float = 0.0
    time_s: float = 0.0

    def charge_instructions(self, instructions: float) -> None:
        if instructions < 0:
            raise ValueError("cannot charge negative instructions")
        self.instructions += instructions
        self.energy_j += self.model.instruction_energy(instructions)
        self.time_s += self.model.instruction_time(instructions)

    def charge_wait(self, wall_time_s: float, poll_interval_s: float = 1e-6) -> None:
        """Charge the periodic status polling during an accelerator run.

        The host is assumed to sleep/do other work between polls (the paper
        notes it "can either wait on spinlock or continue with other tasks");
        only the poll instructions are charged, but the wall-clock time of
        the wait still elapses on the host timeline.
        """
        if wall_time_s < 0:
            raise ValueError("negative wait time")
        polls = max(1, int(wall_time_s / poll_interval_s))
        instructions = polls * self.model.spin_poll_instructions
        self.instructions += instructions
        self.energy_j += self.model.instruction_energy(instructions)
        self.time_s += wall_time_s

    def reset(self) -> None:
        self.instructions = 0.0
        self.energy_j = 0.0
        self.time_s = 0.0


class CimDriver:
    """Kernel-side driver for the CIM accelerator."""

    def __init__(
        self,
        accelerator: CIMAccelerator,
        memory,
        host_model: Optional[HostEnergyModel] = None,
        overhead: Optional[HostOverheadLedger] = None,
    ):
        self.accelerator = accelerator
        self.memory = memory
        self.host_model = host_model or HostEnergyModel()
        self.overhead = overhead or HostOverheadLedger(self.host_model)
        cma_region = memory.cma_region
        self.cma = CMAAllocator(cma_region.base, cma_region.size)
        self.page_table = PageTable()
        self.counters = StatCounter()
        # virtual base -> CMABlock
        self._buffers: dict[int, CMABlock] = {}
        self.initialised = False

    # ------------------------------------------------------------------
    # Device management
    # ------------------------------------------------------------------
    def open(self) -> None:
        """Open the device node (module load / first open)."""
        self.overhead.charge_instructions(self.host_model.ioctl_instructions)
        self.counters.add("driver.open")
        self.initialised = True

    def _require_open(self) -> None:
        if not self.initialised:
            raise DriverError("CIM driver used before open()")

    # ------------------------------------------------------------------
    # Buffer management (CIM_ALLOC / CIM_FREE)
    # ------------------------------------------------------------------
    def alloc(self, size: int) -> tuple[int, int]:
        """Allocate a contiguous buffer; returns (virtual, physical) bases."""
        self._require_open()
        self.overhead.charge_instructions(self.host_model.cma_alloc_instructions)
        self.counters.add("driver.ioctl", 1)
        self.counters.add("driver.alloc", 1)
        block = self.cma.alloc(size)
        virtual = self.page_table.map(block.address, block.size)
        self._buffers[virtual] = block
        return virtual, block.address

    def free(self, virtual: int) -> None:
        self._require_open()
        self.overhead.charge_instructions(self.host_model.ioctl_instructions)
        self.counters.add("driver.ioctl", 1)
        block = self._buffers.pop(virtual, None)
        if block is None:
            raise DriverError(f"free of unknown CIM buffer 0x{virtual:x}")
        self.page_table.unmap(virtual)
        self.cma.free(block.address)

    def translate(self, virtual: int, size: int = 1) -> int:
        """Virtual-to-physical translation used when programming registers."""
        return self.page_table.translate(virtual, size)

    def buffer_size(self, virtual: int) -> int:
        block = self._buffers.get(virtual)
        if block is None:
            raise DriverError(f"unknown CIM buffer 0x{virtual:x}")
        return block.size

    # ------------------------------------------------------------------
    # Register access and kernel submission
    # ------------------------------------------------------------------
    def write_register(self, register: Register, value: int) -> None:
        self._require_open()
        self.counters.add("driver.reg_write", 1)
        self.accelerator.mmio_write(register, value)

    def read_register(self, register: Register) -> int:
        self._require_open()
        self.counters.add("driver.reg_read", 1)
        return self.accelerator.mmio_read(register)

    def submit(self, registers: dict[Register, int], flush_bytes: int) -> None:
        """Program a kernel descriptor and start the accelerator.

        ``flush_bytes`` is the total size of the shared buffers involved; the
        driver flushes the corresponding cache lines before triggering so the
        accelerator's un-cacheable reads observe the host's writes.
        """
        self._require_open()
        if self.accelerator.registers.status() is Status.BUSY:
            raise DriverError("CIM accelerator is busy")
        # One ioctl round trip carries the whole descriptor.
        self.overhead.charge_instructions(self.host_model.ioctl_instructions)
        self.counters.add("driver.ioctl", 1)
        self.counters.add("driver.submit", 1)
        self._flush_caches(flush_bytes)
        for register, value in registers.items():
            self.write_register(register, value)
        self.write_register(Register.COMMAND, int(Command.START))

    def query_info(self) -> dict:
        """CIM_QUERY ioctl: structural information about the device.

        The runtime uses this to size shard-aware workloads without
        hard-coding the accelerator build (tile count, crossbar geometry).
        """
        self._require_open()
        self.overhead.charge_instructions(self.host_model.ioctl_instructions)
        self.counters.add("driver.ioctl", 1)
        self.counters.add("driver.query", 1)
        tile = self.accelerator.tile
        return {
            "num_tiles": self.accelerator.num_tiles,
            "crossbar_rows": tile.rows,
            "crossbar_cols": tile.cols,
            "cell_bits": tile.crossbar.config.cell_bits,
        }

    def wait(self) -> Status:
        """Poll the status register until the accelerator leaves BUSY."""
        self._require_open()
        self.overhead.charge_instructions(self.host_model.ioctl_instructions)
        self.counters.add("driver.ioctl", 1)
        status = self.accelerator.registers.status()
        # The functional model completes synchronously inside START, so the
        # status is already DONE/ERROR; charge the polling that would have
        # happened during the accelerator's latency.
        last_run = self.accelerator.last_run
        wall_time = last_run.latency_s if last_run is not None else 0.0
        self.overhead.charge_wait(wall_time)
        self.counters.add("driver.wait", 1)
        if status is Status.ERROR:
            raise DriverError("CIM accelerator reported an error")
        return status

    # ------------------------------------------------------------------
    def _flush_caches(self, flush_bytes: int) -> None:
        """Charge the cache-maintenance cost of flushing *flush_bytes*."""
        if flush_bytes <= 0:
            return
        lines = (flush_bytes + self.host_model.cache_line_bytes - 1) // (
            self.host_model.cache_line_bytes
        )
        instructions = lines * self.host_model.flush_instructions_per_line
        self.overhead.charge_instructions(instructions)
        self.counters.add("driver.flush_lines", lines)

    # ------------------------------------------------------------------
    def ioctl(self, command: IoctlCommand, **kwargs):
        """Generic ioctl dispatcher (thin veneer over the typed methods)."""
        if command is IoctlCommand.CIM_ALLOC:
            return self.alloc(kwargs["size"])
        if command is IoctlCommand.CIM_FREE:
            return self.free(kwargs["virtual"])
        if command is IoctlCommand.CIM_WRITE_REG:
            self.overhead.charge_instructions(self.host_model.ioctl_instructions)
            return self.write_register(kwargs["register"], kwargs["value"])
        if command is IoctlCommand.CIM_READ_REG:
            self.overhead.charge_instructions(self.host_model.ioctl_instructions)
            return self.read_register(kwargs["register"])
        if command is IoctlCommand.CIM_SUBMIT:
            return self.submit(kwargs["registers"], kwargs.get("flush_bytes", 0))
        if command is IoctlCommand.CIM_WAIT:
            return self.wait()
        if command is IoctlCommand.CIM_FLUSH:
            return self._flush_caches(kwargs["size"])
        if command is IoctlCommand.CIM_RESET:
            self.accelerator.reset_stats()
            return None
        if command is IoctlCommand.CIM_QUERY:
            return self.query_info()
        raise DriverError(f"unknown ioctl command {command!r}")

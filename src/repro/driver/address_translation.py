"""Virtual-to-physical address translation in the CIM driver.

The accelerator only understands physical addresses, while the user-space
runtime works with virtual addresses (Section II-E).  The driver keeps a
page-granular mapping of the CMA buffers it handed out and translates the
virtual addresses of runtime calls before writing them into the context
registers.  Contiguity is guaranteed by the CMA allocator, so a single
(base, size) mapping per buffer suffices — but translation is still modelled
page by page so misuse (crossing an unmapped page) is caught.
"""

from __future__ import annotations

from dataclasses import dataclass


class TranslationError(RuntimeError):
    """Virtual address not mapped (or range crosses an unmapped page)."""


@dataclass(frozen=True)
class Mapping:
    virtual_base: int
    physical_base: int
    size: int

    def contains(self, virtual: int, size: int = 1) -> bool:
        return self.virtual_base <= virtual and virtual + size <= self.virtual_base + self.size


class PageTable:
    """Simple region-based virtual address space for CIM buffers."""

    #: Virtual addresses of CIM buffers start here (an arbitrary window that
    #: cannot collide with physical addresses used in the simulation).
    VIRTUAL_BASE = 0x1_0000_0000

    def __init__(self, page_size: int = 4096):
        if page_size <= 0 or (page_size & (page_size - 1)) != 0:
            raise ValueError("page size must be a positive power of two")
        self.page_size = page_size
        self._mappings: list[Mapping] = []
        self._next_virtual = self.VIRTUAL_BASE
        self.translations = 0

    # ------------------------------------------------------------------
    def map(self, physical_base: int, size: int) -> int:
        """Create a new virtual mapping for a physical range; returns the
        virtual base address."""
        if size <= 0:
            raise ValueError("mapping size must be positive")
        pages = (size + self.page_size - 1) // self.page_size
        mapped_size = pages * self.page_size
        virtual_base = self._next_virtual
        self._next_virtual += mapped_size + self.page_size  # guard page
        mapping = Mapping(virtual_base, physical_base, mapped_size)
        self._mappings.append(mapping)
        return virtual_base

    def unmap(self, virtual_base: int) -> None:
        for index, mapping in enumerate(self._mappings):
            if mapping.virtual_base == virtual_base:
                del self._mappings[index]
                return
        raise TranslationError(f"unmap of unknown virtual address 0x{virtual_base:x}")

    def translate(self, virtual: int, size: int = 1) -> int:
        """Translate a virtual address (checking the whole range is mapped)."""
        self.translations += 1
        for mapping in self._mappings:
            if mapping.contains(virtual, size):
                return mapping.physical_base + (virtual - mapping.virtual_base)
        raise TranslationError(
            f"virtual address 0x{virtual:x} (+{size} B) is not mapped"
        )

    def is_mapped(self, virtual: int, size: int = 1) -> bool:
        return any(m.contains(virtual, size) for m in self._mappings)

    @property
    def live_mappings(self) -> int:
        return len(self._mappings)

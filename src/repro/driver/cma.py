"""Contiguous memory allocator (CMA) model.

The paper's runtime allocates accelerator buffers through the Linux CMA
APIs: allocations are physically contiguous, not limited to page-sized
chunks, and need no per-buffer management in the driver's fast path.  This
module implements a first-fit allocator with coalescing frees over the CMA
region of the simulated physical memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class CMAError(RuntimeError):
    """Allocation failure or invalid free."""


@dataclass(frozen=True)
class CMABlock:
    """One allocated block."""

    address: int
    size: int


class CMAAllocator:
    """First-fit allocator over a contiguous physical range."""

    def __init__(self, base: int, size: int, alignment: int = 64):
        if size <= 0:
            raise ValueError("CMA region size must be positive")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError("alignment must be a positive power of two")
        self.base = base
        self.size = size
        self.alignment = alignment
        # Free list of (address, size), sorted by address, non-overlapping.
        self._free: list[tuple[int, int]] = [(base, size)]
        self._allocated: dict[int, int] = {}
        self.peak_usage = 0
        self.total_allocations = 0
        self.failed_allocations = 0

    # ------------------------------------------------------------------
    def _align_up(self, value: int) -> int:
        mask = self.alignment - 1
        return (value + mask) & ~mask

    def alloc(self, size: int) -> CMABlock:
        """Allocate a physically-contiguous block of at least *size* bytes."""
        if size <= 0:
            raise CMAError("allocation size must be positive")
        size = self._align_up(size)
        for index, (addr, free_size) in enumerate(self._free):
            aligned = self._align_up(addr)
            padding = aligned - addr
            if free_size - padding >= size:
                # Carve the block out of this free range.
                remaining_front = padding
                remaining_back = free_size - padding - size
                replacement: list[tuple[int, int]] = []
                if remaining_front > 0:
                    replacement.append((addr, remaining_front))
                if remaining_back > 0:
                    replacement.append((aligned + size, remaining_back))
                self._free[index : index + 1] = replacement
                self._allocated[aligned] = size
                self.total_allocations += 1
                self.peak_usage = max(self.peak_usage, self.used_bytes)
                return CMABlock(aligned, size)
        self.failed_allocations += 1
        raise CMAError(
            f"cannot allocate {size} B from CMA region "
            f"({self.free_bytes} B free, fragmented into {len(self._free)} ranges)"
        )

    def free(self, address: int) -> None:
        """Release a previously allocated block (coalescing neighbours)."""
        size = self._allocated.pop(address, None)
        if size is None:
            raise CMAError(f"free of unallocated CMA address 0x{address:x}")
        self._free.append((address, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for addr, block_size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == addr:
                prev_addr, prev_size = merged[-1]
                merged[-1] = (prev_addr, prev_size + block_size)
            else:
                merged.append((addr, block_size))
        self._free = merged

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def live_allocations(self) -> int:
        return len(self._allocated)

    def owns(self, address: int) -> bool:
        return address in self._allocated

    def allocation_size(self, address: int) -> int:
        if address not in self._allocated:
            raise CMAError(f"unknown CMA allocation 0x{address:x}")
        return self._allocated[address]

"""PolyBench/C workloads used by the paper's evaluation.

Each kernel is expressed in the mini-C subset the front-end accepts; the
loop nests and access patterns are those of PolyBench/C 4.2.  Dataset-size
presets (``MINI``/``SMALL``/``MEDIUM``/``LARGE``) and NumPy initialisers are
provided so tests, examples and the benchmark harness share one definition
of every workload.
"""

from repro.workloads.polybench import (
    PolybenchKernel,
    DATASETS,
    KERNELS,
    PAPER_KERNELS,
    get_kernel,
    kernel_names,
)

__all__ = [
    "PolybenchKernel",
    "DATASETS",
    "KERNELS",
    "PAPER_KERNELS",
    "get_kernel",
    "kernel_names",
]

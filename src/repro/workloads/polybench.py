"""PolyBench/C kernel definitions.

The evaluated set follows the paper: GEMM-like kernels (``2mm``, ``3mm``,
``gemm``, ``conv``) and GEMV-like kernels (``gesummv``, ``bicg``, ``mvt``);
``atax`` is included as an extra GEMV-like workload to exercise the
loop-distribution path.  Sources are written in the mini-C subset; loop
structure and access patterns match PolyBench/C 4.2 (scaled dataset sizes —
the simulator is a Python model, not a silicon testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

DATASETS = ("MINI", "SMALL", "MEDIUM", "LARGE")


@dataclass(frozen=True)
class PolybenchKernel:
    """One workload: source, dataset presets, initialisers, reference."""

    name: str
    category: str  # "gemm-like" or "gemv-like"
    description: str
    source: str
    datasets: Mapping[str, Mapping[str, float]]
    init_arrays: Callable[[Mapping[str, float], int], dict[str, np.ndarray]]
    numpy_reference: Callable[
        [Mapping[str, float], Mapping[str, np.ndarray]], dict[str, np.ndarray]
    ]
    output_arrays: tuple[str, ...]

    def params(self, dataset: str = "SMALL") -> dict[str, float]:
        if dataset not in self.datasets:
            raise KeyError(
                f"kernel {self.name!r} has no dataset {dataset!r}; "
                f"available: {sorted(self.datasets)}"
            )
        return dict(self.datasets[dataset])

    def arrays(self, dataset: str = "SMALL", seed: int = 0) -> dict[str, np.ndarray]:
        return self.init_arrays(self.params(dataset), seed)

    @property
    def is_gemm_like(self) -> bool:
        return self.category == "gemm-like"


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# gemm
# ----------------------------------------------------------------------
_GEMM_SOURCE = """
void gemm(int NI, int NJ, int NK, float alpha, float beta,
          float C[NI][NJ], float A[NI][NK], float B[NK][NJ]) {
  for (int i = 0; i < NI; i++)
    for (int j = 0; j < NJ; j++) {
      C[i][j] = beta * C[i][j];
      for (int k = 0; k < NK; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
    }
}
"""


def _gemm_init(params, seed):
    rng = _rng(seed)
    ni, nj, nk = int(params["NI"]), int(params["NJ"]), int(params["NK"])
    return {
        "A": rng.random((ni, nk), dtype=np.float32),
        "B": rng.random((nk, nj), dtype=np.float32),
        "C": rng.random((ni, nj), dtype=np.float32),
    }


def _gemm_ref(params, arrays):
    a = arrays["A"].astype(np.float64)
    b = arrays["B"].astype(np.float64)
    c = arrays["C"].astype(np.float64)
    out = params["beta"] * c + params["alpha"] * (a @ b)
    return {"C": out}


# ----------------------------------------------------------------------
# 2mm
# ----------------------------------------------------------------------
_2MM_SOURCE = """
void k2mm(int NI, int NJ, int NK, int NL, float alpha, float beta,
          float tmp[NI][NJ], float A[NI][NK], float B[NK][NJ],
          float C[NJ][NL], float D[NI][NL]) {
  for (int i = 0; i < NI; i++)
    for (int j = 0; j < NJ; j++) {
      tmp[i][j] = 0.0;
      for (int k = 0; k < NK; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  for (int i = 0; i < NI; i++)
    for (int j = 0; j < NL; j++) {
      D[i][j] = D[i][j] * beta;
      for (int k = 0; k < NJ; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}
"""


def _2mm_init(params, seed):
    rng = _rng(seed)
    ni, nj, nk, nl = (int(params[p]) for p in ("NI", "NJ", "NK", "NL"))
    return {
        "tmp": np.zeros((ni, nj), dtype=np.float32),
        "A": rng.random((ni, nk), dtype=np.float32),
        "B": rng.random((nk, nj), dtype=np.float32),
        "C": rng.random((nj, nl), dtype=np.float32),
        "D": rng.random((ni, nl), dtype=np.float32),
    }


def _2mm_ref(params, arrays):
    a, b = arrays["A"].astype(np.float64), arrays["B"].astype(np.float64)
    c, d = arrays["C"].astype(np.float64), arrays["D"].astype(np.float64)
    tmp = params["alpha"] * (a @ b)
    out = params["beta"] * d + tmp @ c
    return {"tmp": tmp, "D": out}


# ----------------------------------------------------------------------
# 3mm
# ----------------------------------------------------------------------
_3MM_SOURCE = """
void k3mm(int NI, int NJ, int NK, int NL, int NM,
          float E[NI][NJ], float A[NI][NK], float B[NK][NJ],
          float F[NJ][NL], float C[NJ][NM], float D[NM][NL],
          float G[NI][NL]) {
  for (int i = 0; i < NI; i++)
    for (int j = 0; j < NJ; j++) {
      E[i][j] = 0.0;
      for (int k = 0; k < NK; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
  for (int i = 0; i < NJ; i++)
    for (int j = 0; j < NL; j++) {
      F[i][j] = 0.0;
      for (int k = 0; k < NM; k++)
        F[i][j] += C[i][k] * D[k][j];
    }
  for (int i = 0; i < NI; i++)
    for (int j = 0; j < NL; j++) {
      G[i][j] = 0.0;
      for (int k = 0; k < NJ; k++)
        G[i][j] += E[i][k] * F[k][j];
    }
}
"""


def _3mm_init(params, seed):
    rng = _rng(seed)
    ni, nj, nk, nl, nm = (int(params[p]) for p in ("NI", "NJ", "NK", "NL", "NM"))
    return {
        "E": np.zeros((ni, nj), dtype=np.float32),
        "A": rng.random((ni, nk), dtype=np.float32),
        "B": rng.random((nk, nj), dtype=np.float32),
        "F": np.zeros((nj, nl), dtype=np.float32),
        "C": rng.random((nj, nm), dtype=np.float32),
        "D": rng.random((nm, nl), dtype=np.float32),
        "G": np.zeros((ni, nl), dtype=np.float32),
    }


def _3mm_ref(params, arrays):
    a, b = arrays["A"].astype(np.float64), arrays["B"].astype(np.float64)
    c, d = arrays["C"].astype(np.float64), arrays["D"].astype(np.float64)
    e = a @ b
    f = c @ d
    g = e @ f
    return {"E": e, "F": f, "G": g}


# ----------------------------------------------------------------------
# conv (2D convolution, valid padding, unit stride)
# ----------------------------------------------------------------------
_CONV_SOURCE = """
void conv2d(int OH, int OW, int KH, int KW, float alpha,
            float out[OH][OW], float img[OH + KH - 1][OW + KW - 1],
            float W[KH][KW]) {
  for (int i = 0; i < OH; i++)
    for (int j = 0; j < OW; j++) {
      out[i][j] = 0.0;
      for (int p = 0; p < KH; p++)
        for (int q = 0; q < KW; q++)
          out[i][j] += alpha * W[p][q] * img[i + p][j + q];
    }
}
"""


def _conv_init(params, seed):
    rng = _rng(seed)
    oh, ow = int(params["OH"]), int(params["OW"])
    kh, kw = int(params["KH"]), int(params["KW"])
    return {
        "out": np.zeros((oh, ow), dtype=np.float32),
        "img": rng.random((oh + kh - 1, ow + kw - 1), dtype=np.float32),
        "W": rng.random((kh, kw), dtype=np.float32),
    }


def _conv_ref(params, arrays):
    img = arrays["img"].astype(np.float64)
    weights = arrays["W"].astype(np.float64)
    oh, ow = int(params["OH"]), int(params["OW"])
    kh, kw = int(params["KH"]), int(params["KW"])
    out = np.zeros((oh, ow))
    for p in range(kh):
        for q in range(kw):
            out += weights[p, q] * img[p : p + oh, q : q + ow]
    return {"out": params["alpha"] * out}


# ----------------------------------------------------------------------
# gesummv
# ----------------------------------------------------------------------
_GESUMMV_SOURCE = """
void gesummv(int N, float alpha, float beta,
             float A[N][N], float B[N][N], float tmp[N], float x[N], float y[N]) {
  for (int i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < N; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
}
"""


def _gesummv_init(params, seed):
    rng = _rng(seed)
    n = int(params["N"])
    return {
        "A": rng.random((n, n), dtype=np.float32),
        "B": rng.random((n, n), dtype=np.float32),
        "tmp": np.zeros(n, dtype=np.float32),
        "x": rng.random(n, dtype=np.float32),
        "y": np.zeros(n, dtype=np.float32),
    }


def _gesummv_ref(params, arrays):
    a, b = arrays["A"].astype(np.float64), arrays["B"].astype(np.float64)
    x = arrays["x"].astype(np.float64)
    tmp = a @ x
    y = params["alpha"] * tmp + params["beta"] * (b @ x)
    return {"tmp": tmp, "y": y}


# ----------------------------------------------------------------------
# bicg
# ----------------------------------------------------------------------
_BICG_SOURCE = """
void bicg(int N, int M, float A[N][M], float s[M], float q[N],
          float p[M], float r[N]) {
  for (int i = 0; i < M; i++)
    s[i] = 0.0;
  for (int i = 0; i < N; i++) {
    q[i] = 0.0;
    for (int j = 0; j < M; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}
"""


def _bicg_init(params, seed):
    rng = _rng(seed)
    n, m = int(params["N"]), int(params["M"])
    return {
        "A": rng.random((n, m), dtype=np.float32),
        "s": np.zeros(m, dtype=np.float32),
        "q": np.zeros(n, dtype=np.float32),
        "p": rng.random(m, dtype=np.float32),
        "r": rng.random(n, dtype=np.float32),
    }


def _bicg_ref(params, arrays):
    a = arrays["A"].astype(np.float64)
    p = arrays["p"].astype(np.float64)
    r = arrays["r"].astype(np.float64)
    return {"s": a.T @ r, "q": a @ p}


# ----------------------------------------------------------------------
# mvt
# ----------------------------------------------------------------------
_MVT_SOURCE = """
void mvt(int N, float x1[N], float x2[N], float y1[N], float y2[N],
         float A[N][N]) {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      x1[i] = x1[i] + A[i][j] * y1[j];
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
}
"""


def _mvt_init(params, seed):
    rng = _rng(seed)
    n = int(params["N"])
    return {
        "x1": rng.random(n, dtype=np.float32),
        "x2": rng.random(n, dtype=np.float32),
        "y1": rng.random(n, dtype=np.float32),
        "y2": rng.random(n, dtype=np.float32),
        "A": rng.random((n, n), dtype=np.float32),
    }


def _mvt_ref(params, arrays):
    a = arrays["A"].astype(np.float64)
    return {
        "x1": arrays["x1"].astype(np.float64) + a @ arrays["y1"].astype(np.float64),
        "x2": arrays["x2"].astype(np.float64) + a.T @ arrays["y2"].astype(np.float64),
    }


# ----------------------------------------------------------------------
# atax
# ----------------------------------------------------------------------
_ATAX_SOURCE = """
void atax(int M, int N, float A[M][N], float x[N], float y[N], float tmp[M]) {
  for (int i = 0; i < N; i++)
    y[i] = 0.0;
  for (int i = 0; i < M; i++) {
    tmp[i] = 0.0;
    for (int j = 0; j < N; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
    for (int j = 0; j < N; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
  }
}
"""


def _atax_init(params, seed):
    rng = _rng(seed)
    m, n = int(params["M"]), int(params["N"])
    return {
        "A": rng.random((m, n), dtype=np.float32),
        "x": rng.random(n, dtype=np.float32),
        "y": np.zeros(n, dtype=np.float32),
        "tmp": np.zeros(m, dtype=np.float32),
    }


def _atax_ref(params, arrays):
    a = arrays["A"].astype(np.float64)
    x = arrays["x"].astype(np.float64)
    tmp = a @ x
    return {"tmp": tmp, "y": a.T @ tmp}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
KERNELS: dict[str, PolybenchKernel] = {
    "gemm": PolybenchKernel(
        name="gemm",
        category="gemm-like",
        description="C = alpha*A*B + beta*C",
        source=_GEMM_SOURCE,
        datasets={
            "MINI": {"NI": 12, "NJ": 14, "NK": 16, "alpha": 1.5, "beta": 1.2},
            "SMALL": {"NI": 40, "NJ": 44, "NK": 48, "alpha": 1.5, "beta": 1.2},
            "MEDIUM": {"NI": 128, "NJ": 128, "NK": 128, "alpha": 1.5, "beta": 1.2},
            "LARGE": {"NI": 200, "NJ": 220, "NK": 240, "alpha": 1.5, "beta": 1.2},
        },
        init_arrays=_gemm_init,
        numpy_reference=_gemm_ref,
        output_arrays=("C",),
    ),
    "2mm": PolybenchKernel(
        name="2mm",
        category="gemm-like",
        description="D = alpha*A*B*C + beta*D (two chained GEMMs)",
        source=_2MM_SOURCE,
        datasets={
            "MINI": {"NI": 10, "NJ": 12, "NK": 14, "NL": 16, "alpha": 1.5, "beta": 1.2},
            "SMALL": {"NI": 36, "NJ": 40, "NK": 44, "NL": 48, "alpha": 1.5, "beta": 1.2},
            "MEDIUM": {"NI": 112, "NJ": 120, "NK": 128, "NL": 128, "alpha": 1.5, "beta": 1.2},
            "LARGE": {"NI": 180, "NJ": 190, "NK": 210, "NL": 220, "alpha": 1.5, "beta": 1.2},
        },
        init_arrays=_2mm_init,
        numpy_reference=_2mm_ref,
        output_arrays=("D",),
    ),
    "3mm": PolybenchKernel(
        name="3mm",
        category="gemm-like",
        description="G = (A*B)*(C*D) (three GEMMs, first two independent)",
        source=_3MM_SOURCE,
        datasets={
            "MINI": {"NI": 10, "NJ": 12, "NK": 14, "NL": 16, "NM": 18},
            "SMALL": {"NI": 36, "NJ": 40, "NK": 44, "NL": 48, "NM": 52},
            "MEDIUM": {"NI": 112, "NJ": 120, "NK": 128, "NL": 128, "NM": 136},
            "LARGE": {"NI": 180, "NJ": 190, "NK": 200, "NL": 210, "NM": 220},
        },
        init_arrays=_3mm_init,
        numpy_reference=_3mm_ref,
        output_arrays=("G",),
    ),
    "conv": PolybenchKernel(
        name="conv",
        category="gemm-like",
        description="2D convolution (filter stationary on the crossbar)",
        source=_CONV_SOURCE,
        datasets={
            "MINI": {"OH": 8, "OW": 10, "KH": 3, "KW": 3, "alpha": 1.0},
            "SMALL": {"OH": 30, "OW": 32, "KH": 3, "KW": 3, "alpha": 1.0},
            "MEDIUM": {"OH": 120, "OW": 128, "KH": 5, "KW": 5, "alpha": 1.0},
            "LARGE": {"OH": 180, "OW": 192, "KH": 5, "KW": 5, "alpha": 1.0},
        },
        init_arrays=_conv_init,
        numpy_reference=_conv_ref,
        output_arrays=("out",),
    ),
    "gesummv": PolybenchKernel(
        name="gesummv",
        category="gemv-like",
        description="y = alpha*A*x + beta*B*x",
        source=_GESUMMV_SOURCE,
        datasets={
            "MINI": {"N": 16, "alpha": 1.5, "beta": 1.2},
            "SMALL": {"N": 56, "alpha": 1.5, "beta": 1.2},
            "MEDIUM": {"N": 160, "alpha": 1.5, "beta": 1.2},
            "LARGE": {"N": 320, "alpha": 1.5, "beta": 1.2},
        },
        init_arrays=_gesummv_init,
        numpy_reference=_gesummv_ref,
        output_arrays=("y",),
    ),
    "bicg": PolybenchKernel(
        name="bicg",
        category="gemv-like",
        description="s = A^T r ; q = A p",
        source=_BICG_SOURCE,
        datasets={
            "MINI": {"N": 14, "M": 16},
            "SMALL": {"N": 52, "M": 56},
            "MEDIUM": {"N": 152, "M": 160},
            "LARGE": {"N": 300, "M": 320},
        },
        init_arrays=_bicg_init,
        numpy_reference=_bicg_ref,
        output_arrays=("s", "q"),
    ),
    "mvt": PolybenchKernel(
        name="mvt",
        category="gemv-like",
        description="x1 += A y1 ; x2 += A^T y2",
        source=_MVT_SOURCE,
        datasets={
            "MINI": {"N": 16},
            "SMALL": {"N": 56},
            "MEDIUM": {"N": 160},
            "LARGE": {"N": 320},
        },
        init_arrays=_mvt_init,
        numpy_reference=_mvt_ref,
        output_arrays=("x1", "x2"),
    ),
    "atax": PolybenchKernel(
        name="atax",
        category="gemv-like",
        description="y = A^T (A x)",
        source=_ATAX_SOURCE,
        datasets={
            "MINI": {"M": 14, "N": 16},
            "SMALL": {"M": 52, "N": 56},
            "MEDIUM": {"M": 152, "N": 160},
            "LARGE": {"M": 300, "N": 320},
        },
        init_arrays=_atax_init,
        numpy_reference=_atax_ref,
        output_arrays=("y",),
    ),
}

#: The seven kernels evaluated in the paper's Figure 6, in figure order.
PAPER_KERNELS = ("2mm", "3mm", "gemm", "conv", "gesummv", "bicg", "mvt")


def get_kernel(name: str) -> PolybenchKernel:
    if name not in KERNELS:
        raise KeyError(f"unknown PolyBench kernel {name!r}; available: {sorted(KERNELS)}")
    return KERNELS[name]


def kernel_names() -> list[str]:
    return sorted(KERNELS)

"""The versioned record/replay trace format.

A *trace* is everything that crossed the serving boundary during one
:class:`~repro.serve.server.CimServer` or
:class:`~repro.fleet.server.FleetServer` run, serialized as JSON lines —
one event per line, human-greppable, append-only while recording:

* a ``header`` (always the first line) carrying the ``schema_version``,
  the server kind (``"serve"`` or ``"fleet"``) and the full server
  configuration needed to rebuild an identical fresh server (compile
  options, quotas, crossbar geometry, placement, retry policy and the
  seeded :class:`~repro.fleet.faults.FaultPlan`);
* ``quota`` and ``submit`` events in submission order — a submission
  records the tenant, the mini-C kernel source, the runtime parameters
  and every payload array (base64 bytes + dtype/shape + sha256 content
  hash), so replay re-drives byte-identical inputs; since schema v2,
  repeated payloads are stored once and referenced by content hash;
* observational ``attempt`` / ``commit`` / ``fault`` events emitted from
  the :class:`~repro.serve.dispatch.LeaseExecutor` hook seam (device id,
  device-clock timestamp, attempt number, faulted op);
* terminal ``response`` events per request (status, schedule facts —
  batch, device, attempts, migrations, simulated timestamps — and the
  full result arrays of completed requests);
* ``tenant_bill`` / ``device_bill`` ledger roll-ups (integer wear and
  work counters, ``fsum`` energies, compensations, partition verdicts)
  and one ``metrics`` snapshot;
* an ``end`` footer whose event count seals the file — a trace without
  its footer is truncated and is rejected as a whole.

Loading is all-or-nothing: :func:`load_trace` / :func:`loads_trace`
validate every line (JSON well-formedness, known event kinds, header
version, footer count, payload hash integrity) before returning, and any
problem raises a typed :class:`TraceFormatError` — there is no partial
replay of a corrupt trace, mirroring the compile cache's corrupt-pickle
quarantine semantics.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Iterable, Optional, Union

import numpy as np

from repro.compiler.options import CompileOptions
from repro.serve.admission import TenantQuota

#: Version of the on-disk trace format.  Bump on any incompatible change
#: to the event schema; readers reject every version they do not know.
#:
#: * v1 — every array payload carries its bytes in full.
#: * v2 — payloads are deduplicated by content hash: the first occurrence
#:   of a sha256 carries the bytes, later occurrences record only
#:   ``dtype``/``shape``/``sha256`` and resolve against the earlier
#:   payload.  Readers accept both versions; the semantic views of
#:   :class:`Trace` rehydrate references transparently, so consumers are
#:   version-agnostic.
SCHEMA_VERSION = 2

#: Schema versions this reader understands.
SUPPORTED_VERSIONS = frozenset({1, 2})

#: Every event kind a trace may contain (unchanged between v1 and v2).
EVENT_KINDS = frozenset(
    {
        "header",
        "quota",
        "submit",
        "attempt",
        "commit",
        "fault",
        "response",
        "tenant_bill",
        "device_bill",
        "metrics",
        "end",
    }
)

#: Server kinds a header may declare.
TRACE_KINDS = ("serve", "fleet")


class TraceFormatError(RuntimeError):
    """A trace file violates the format: unknown schema version, corrupt
    or truncated JSONL, unknown event kind, or a payload whose bytes do
    not match their recorded content hash.  Raised by the loader before
    any replay state is built — a bad trace is rejected whole."""


# ----------------------------------------------------------------------
# Array payloads
# ----------------------------------------------------------------------
def encode_array(array: np.ndarray) -> dict:
    """One array as a JSON-able payload: dtype + shape + base64 bytes +
    sha256 content hash (the bit-identity currency of the diff)."""
    data = np.ascontiguousarray(array)
    raw = data.tobytes()
    return {
        "dtype": data.dtype.str,
        "shape": list(data.shape),
        "sha256": hashlib.sha256(raw).hexdigest(),
        "data": base64.b64encode(raw).decode("ascii"),
    }


def decode_array(payload: dict, where: str = "payload") -> np.ndarray:
    """Rebuild an array from its payload, verifying the content hash."""
    try:
        dtype = np.dtype(payload["dtype"])
        shape = tuple(int(dim) for dim in payload["shape"])
        raw = base64.b64decode(payload["data"].encode("ascii"), validate=True)
        recorded_hash = payload["sha256"]
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"{where}: malformed array payload ({exc})") from exc
    expected = dtype.itemsize * math.prod(shape)
    if len(raw) != expected:
        raise TraceFormatError(
            f"{where}: array payload has {len(raw)} bytes, "
            f"dtype/shape require {expected}"
        )
    if hashlib.sha256(raw).hexdigest() != recorded_hash:
        raise TraceFormatError(
            f"{where}: array payload bytes do not match their recorded "
            f"sha256 — the trace is corrupt"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def dedupe_payload(payload: dict, seen: set[str]) -> dict:
    """Schema-v2 payload dedup: the first payload with a given content
    hash keeps its bytes; later ones become references (no ``data``)."""
    sha = payload["sha256"]
    if sha in seen:
        return {
            "dtype": payload["dtype"],
            "shape": payload["shape"],
            "sha256": sha,
        }
    seen.add(sha)
    return payload


def resolve_payload(payload: dict, data_index: dict[str, str]) -> dict:
    """Rehydrate a v2 payload reference from *data_index* (sha256 →
    base64 bytes).  Full payloads pass through (and are indexed)."""
    if "data" in payload:
        data_index.setdefault(payload["sha256"], payload["data"])
        return payload
    try:
        data = data_index[payload["sha256"]]
    except KeyError:
        raise TraceFormatError(
            f"deduplicated payload references unknown sha256 "
            f"{payload.get('sha256')!r}"
        ) from None
    return {**payload, "data": data}


def _validate_payload(
    payload: dict,
    where: str,
    data_index: Optional[dict[str, str]] = None,
    allow_refs: bool = False,
) -> None:
    if not isinstance(payload, dict):
        raise TraceFormatError(f"{where}: array payload is not an object")
    if "data" not in payload:
        if not allow_refs:
            raise TraceFormatError(
                f"{where}: array payload missing data (schema v1 records "
                "every payload in full)"
            )
        try:
            payload = resolve_payload(payload, data_index or {})
        except TraceFormatError as exc:
            raise TraceFormatError(f"{where}: {exc}") from None
        decode_array(payload, where=where)
        return
    decode_array(payload, where=where)  # raises TraceFormatError on any problem
    if data_index is not None:
        data_index.setdefault(payload["sha256"], payload["data"])


# ----------------------------------------------------------------------
# Config encoding (enough to rebuild an identical fresh server)
# ----------------------------------------------------------------------
def encode_compile_options(options: CompileOptions) -> dict:
    encoded = asdict(options)
    for key in ("offload_kinds", "dump_ir_after", "pipeline"):
        if isinstance(encoded[key], tuple):
            encoded[key] = list(encoded[key])
    return encoded


def decode_compile_options(encoded: dict) -> CompileOptions:
    known = {field.name for field in fields(CompileOptions)}
    unknown = set(encoded) - known
    if unknown:
        raise TraceFormatError(
            f"header: unknown compile option(s) {sorted(unknown)}"
        )
    kwargs = dict(encoded)
    for key in ("offload_kinds", "dump_ir_after"):
        if key in kwargs and isinstance(kwargs[key], list):
            kwargs[key] = tuple(kwargs[key])
    try:
        return CompileOptions(**kwargs)
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"header: bad compile options ({exc})") from exc


def encode_quota(quota: TenantQuota) -> dict:
    return {
        "max_queue_depth": quota.max_queue_depth,
        "weight": quota.weight,
        "wear_budget_bytes": quota.wear_budget_bytes,
        "energy_budget_j": quota.energy_budget_j,
    }


def decode_quota(encoded: dict) -> TenantQuota:
    try:
        return TenantQuota(**encoded)
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"bad tenant quota ({exc})") from exc


def encode_fault_plan(plan) -> Optional[dict]:
    if plan is None:
        return None
    return {
        "kills": [
            {"device_id": kill.device_id, "at_s": kill.at_s}
            for kill in plan.kills
        ],
        "degrades": [
            {
                "device_id": degrade.device_id,
                "at_s": degrade.at_s,
                "factor": degrade.factor,
            }
            for degrade in plan.degrades
        ],
        "op_rules": [
            {
                "op": rule.op,
                "probability": rule.probability,
                "device_id": rule.device_id,
                "max_faults": rule.max_faults,
            }
            for rule in plan.op_rules
        ],
        "seed": plan.seed,
    }


def decode_fault_plan(encoded: Optional[dict]):
    if encoded is None:
        return None
    from repro.fleet.faults import CapacityDegrade, DeviceKill, FaultPlan, OpFaultRule

    try:
        return FaultPlan(
            kills=[DeviceKill(**kill) for kill in encoded.get("kills", [])],
            degrades=[
                CapacityDegrade(**degrade)
                for degrade in encoded.get("degrades", [])
            ],
            op_rules=[OpFaultRule(**rule) for rule in encoded.get("op_rules", [])],
            seed=encoded.get("seed", 0),
        )
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"header: bad fault plan ({exc})") from exc


# ----------------------------------------------------------------------
# The trace container
# ----------------------------------------------------------------------
@dataclass
class Trace:
    """One fully-validated trace: the parsed event list, header first,
    ``end`` footer last.

    :attr:`events` holds the trace exactly as stored on disk — in a v2
    trace that includes deduplicated payload references.  The semantic
    views (:meth:`body`, :meth:`submissions`, :meth:`responses`, …)
    rehydrate references transparently, so consumers always see full
    payloads regardless of schema version; :meth:`dumps` serializes the
    raw events, preserving the dedup on round-trip."""

    events: list[dict]
    #: Lazily-built rehydrated view of the interior events.
    _body_cache: Optional[list[dict]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- structural views ----------------------------------------------
    @property
    def header(self) -> dict:
        return self.events[0]

    @property
    def schema_version(self) -> int:
        return self.header["schema_version"]

    @property
    def kind(self) -> str:
        """``"serve"`` (single device) or ``"fleet"``."""
        return self.header["kind"]

    @property
    def config(self) -> dict:
        return self.header["config"]

    def body(self) -> list[dict]:
        """Every event between the header and the ``end`` footer, with
        deduplicated payload references rehydrated to full payloads."""
        if self._body_cache is None:
            data_index: dict[str, str] = {}
            self._body_cache = [
                _rehydrate_event(event, data_index)
                for event in self.events[1:-1]
            ]
        return self._body_cache

    def of_kind(self, kind: str) -> list[dict]:
        return [event for event in self.body() if event["event"] == kind]

    # -- semantic views -------------------------------------------------
    def submissions(self) -> list[dict]:
        return self.of_kind("submit")

    def responses(self) -> dict[int, dict]:
        return {event["request_id"]: event for event in self.of_kind("response")}

    def tenant_bills(self) -> dict[str, dict]:
        return {event["tenant"]: event for event in self.of_kind("tenant_bill")}

    def device_bills(self) -> dict[int, dict]:
        return {event["device_id"]: event for event in self.of_kind("device_bill")}

    def metrics(self) -> Optional[dict]:
        events = self.of_kind("metrics")
        return events[0] if events else None

    # -- serialization --------------------------------------------------
    def dumps(self) -> str:
        return "".join(
            json.dumps(event, separators=(",", ":")) + "\n"
            for event in self.events
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path


def _rehydrate_event(event: dict, data_index: dict[str, str]) -> dict:
    """Return *event* with payload references resolved (copy-on-write:
    events without references are returned as-is)."""
    for key in ("arrays", "result"):
        payloads = event.get(key)
        if not isinstance(payloads, dict):
            continue
        resolved = {
            name: resolve_payload(payload, data_index)
            for name, payload in payloads.items()
        }
        if any(
            resolved[name] is not payloads[name] for name in payloads
        ):
            event = {**event, key: resolved}
    return event


def build_trace(events: Iterable[dict]) -> Trace:
    """Seal a recorded event stream into a :class:`Trace` by appending
    the ``end`` footer, then re-validate the result (a recorder bug must
    fail at build time, not at some future load)."""
    sealed = list(events)
    sealed.append({"event": "end", "events": len(sealed)})
    return _validate_events(sealed)


# ----------------------------------------------------------------------
# Loading (all-or-nothing)
# ----------------------------------------------------------------------
def loads_trace(text: str) -> Trace:
    """Parse and validate a JSONL trace from a string."""
    lines = text.splitlines()
    events: list[dict] = []
    for line_no, line in enumerate(lines, 1):
        if not line.strip():
            raise TraceFormatError(f"line {line_no}: blank line inside a trace")
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"line {line_no}: corrupt JSONL line ({exc.msg})"
            ) from exc
        if not isinstance(event, dict):
            raise TraceFormatError(
                f"line {line_no}: expected a JSON object, got "
                f"{type(event).__name__}"
            )
        events.append(event)
    return _validate_events(events)


def load_trace(path: Union[str, Path]) -> Trace:
    """Load and validate a JSONL trace file (see :func:`loads_trace`)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}") from exc
    return loads_trace(text)


#: Keys a submission event must carry to be replayable.
_SUBMIT_REQUIRED = ("request_id", "tenant", "source", "params", "arrays", "arrival_s")


def _validate_events(events: list[dict]) -> Trace:
    if not events:
        raise TraceFormatError("empty trace (no header)")
    for index, event in enumerate(events, 1):
        kind = event.get("event")
        if kind not in EVENT_KINDS:
            raise TraceFormatError(
                f"line {index}: unknown event kind {kind!r} "
                f"(known: {sorted(EVENT_KINDS)})"
            )
    header = events[0]
    if header["event"] != "header":
        raise TraceFormatError(
            f"line 1: trace must start with a header event, got "
            f"{header['event']!r}"
        )
    version = header.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise TraceFormatError("header: schema_version missing or not an integer")
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError(
            f"unsupported schema_version {version} (this reader understands "
            f"versions {sorted(SUPPORTED_VERSIONS)}); re-record the trace "
            "or upgrade"
        )
    if header.get("kind") not in TRACE_KINDS:
        raise TraceFormatError(
            f"header: kind must be one of {TRACE_KINDS}, got "
            f"{header.get('kind')!r}"
        )
    if not isinstance(header.get("config"), dict):
        raise TraceFormatError("header: missing config object")
    footer = events[-1]
    if footer["event"] != "end":
        raise TraceFormatError(
            "trace is truncated: the final line is not the 'end' footer"
        )
    declared = footer.get("events")
    if declared != len(events) - 1:
        raise TraceFormatError(
            f"trace is truncated or spliced: footer declares {declared} "
            f"events, file carries {len(events) - 1}"
        )
    for stray in events[1:-1]:
        if stray["event"] in ("header", "end"):
            raise TraceFormatError(
                f"trace carries an interior {stray['event']!r} event — "
                "two traces concatenated?"
            )
    # Payload integrity: every recorded array must decode and match its
    # content hash *now*, so a corrupt trace can never be partially
    # replayed.  In a v2 trace payloads may be deduplicated references;
    # they must resolve against an *earlier* full payload (the scan runs
    # in event order, mirroring how the recorder deduplicates).
    allow_refs = version >= 2
    data_index: dict[str, str] = {}
    for index, event in enumerate(events, 1):
        if event["event"] == "submit":
            for key in _SUBMIT_REQUIRED:
                if key not in event:
                    raise TraceFormatError(
                        f"line {index}: submit event missing {key!r}"
                    )
            arrays = event["arrays"]
            if not isinstance(arrays, dict):
                raise TraceFormatError(f"line {index}: submit arrays not a dict")
            for name, payload in arrays.items():
                _validate_payload(
                    payload,
                    f"line {index}: submit array {name!r}",
                    data_index=data_index,
                    allow_refs=allow_refs,
                )
        elif event["event"] == "response":
            for name, payload in (event.get("result") or {}).items():
                _validate_payload(
                    payload,
                    f"line {index}: result array {name!r}",
                    data_index=data_index,
                    allow_refs=allow_refs,
                )
    return Trace(events=events)

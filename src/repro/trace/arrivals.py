"""Arrival-time plans for the wall-clock gateway's open-loop load generator.

An :class:`ArrivalPlan` is a sorted sequence of wall-clock offsets (in
seconds from the start of a run) at which the load generator fires
requests *regardless of completions* — the open-loop discipline, which
measures the latency the offered load actually induces instead of the
closed-loop artefact where a slow server throttles its own load.

Two plan families:

* :func:`poisson_plan` — memoryless arrivals at a fixed rate (seeded
  exponential inter-arrival gaps), the classic open-loop workload;
* :func:`trace_plan` — arrivals resampled from a recorded trace's
  submission times (ROADMAP item 5: replay-driven load), with optional
  time **amplification** (compress or stretch the recording's timescale)
  and **jittered resampling** (seeded uniform perturbation of each
  arrival) so one recording generates a family of statistically similar
  workloads rather than a single fixed schedule.  Recorded simulated
  timescales are microsecond-ish, so amplification is also how a
  recording becomes a feasible wall-clock schedule.

Plans are deterministic given their seed: the same seed reproduces the
same schedule bit-for-bit, which the gateway tests and CI lean on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.schema import Trace, TraceFormatError


@dataclass(frozen=True)
class ArrivalPlan:
    """A sorted schedule of request fire times (seconds from run start)."""

    kind: str                      # "poisson" | "trace"
    times_s: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times_s:
            raise ValueError("an arrival plan needs at least one arrival")
        if any(t < 0 for t in self.times_s):
            raise ValueError("arrival times cannot be negative")
        if any(
            later < earlier
            for earlier, later in zip(self.times_s, self.times_s[1:])
        ):
            raise ValueError("arrival times must be sorted")

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def duration_s(self) -> float:
        return self.times_s[-1] - self.times_s[0]

    @property
    def mean_rate_rps(self) -> float:
        """Offered request rate over the plan's span."""
        if self.duration_s == 0.0:
            return float("inf")
        return (len(self.times_s) - 1) / self.duration_s


def poisson_plan(
    num_requests: int, rate_rps: float, seed: int = 0
) -> ArrivalPlan:
    """Open-loop Poisson arrivals: *num_requests* fire times with seeded
    exponential gaps at mean rate *rate_rps*."""
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=num_requests)
    gaps[0] = 0.0  # the first request fires at t=0
    return ArrivalPlan(kind="poisson", times_s=tuple(np.cumsum(gaps).tolist()))


def trace_plan(
    trace: Trace,
    num_requests: int = 0,
    amplify: float = 1.0,
    jitter_s: float = 0.0,
    seed: int = 0,
) -> ArrivalPlan:
    """Arrivals resampled from *trace*'s recorded submission times.

    The recorded arrival offsets (zeroed at the first submission) form
    the base pattern.  ``num_requests`` beyond the pattern length tiles
    the pattern end to end, each repetition shifted by the pattern span
    plus its mean inter-arrival gap (so repetitions do not collide);
    ``num_requests=0`` keeps the recorded length.  ``amplify`` > 1
    compresses time by that factor (a recording at simulated
    microseconds becomes a feasible wall schedule); ``jitter_s`` perturbs
    each arrival by a seeded uniform offset in ``[-jitter_s, +jitter_s]``
    (clamped at zero and re-sorted), turning one recording into a family
    of similar workloads.
    """
    if amplify <= 0:
        raise ValueError("amplify must be positive")
    if jitter_s < 0:
        raise ValueError("jitter_s cannot be negative")
    submissions = trace.submissions()
    if not submissions:
        raise TraceFormatError("trace records no submissions to resample")
    base = np.array(
        sorted(float(event["arrival_s"]) for event in submissions)
    )
    base -= base[0]
    if num_requests < 1:
        num_requests = len(base)
    # Tile the base pattern to the requested length, keeping its rhythm:
    # each repetition restarts one mean gap after the previous one ends.
    span = float(base[-1])
    mean_gap = span / (len(base) - 1) if len(base) > 1 else 1.0
    period = span + mean_gap if span > 0 else max(mean_gap, 1.0)
    repetitions = -(-num_requests // len(base))  # ceil division
    times = np.concatenate(
        [base + repetition * period for repetition in range(repetitions)]
    )[:num_requests]
    times = times / amplify
    if jitter_s > 0.0:
        rng = np.random.default_rng(seed)
        times = times + rng.uniform(-jitter_s, jitter_s, size=len(times))
        times = np.sort(np.clip(times, 0.0, None))
    times = times - times[0]  # the first request always fires at t=0
    return ArrivalPlan(kind="trace", times_s=tuple(times.tolist()))

"""Record/replay trace layer (ROADMAP item 5).

Everything that crosses the serving boundary — submissions, admission
decisions, leases, device/fault events, retries, migrations and final
bills — can be recorded into a versioned JSON-lines trace
(:mod:`repro.trace.schema`), replayed through a fresh server on a
virtual clock (:mod:`repro.trace.replayer`), and diffed bit-for-bit
against the recording.  See ``docs/trace.md`` for the format spec and
the golden-fixture workflow, and :mod:`repro.cli` for the ``repro``
command-line entrypoints.
"""

from repro.trace.arrivals import ArrivalPlan, poisson_plan, trace_plan
from repro.trace.recorder import TraceRecorder
from repro.trace.replayer import (
    DIFF_SECTIONS,
    ReplayResult,
    TraceDiff,
    TraceReplayer,
    diff_traces,
)
from repro.trace.scenarios import SCENARIOS, record_fleet_faultstorm, record_serve_multitenant
from repro.trace.schema import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    TRACE_KINDS,
    Trace,
    TraceFormatError,
    build_trace,
    decode_array,
    encode_array,
    load_trace,
    loads_trace,
)

__all__ = [
    "DIFF_SECTIONS",
    "EVENT_KINDS",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "TRACE_KINDS",
    "ArrivalPlan",
    "ReplayResult",
    "Trace",
    "TraceDiff",
    "TraceFormatError",
    "TraceRecorder",
    "TraceReplayer",
    "build_trace",
    "decode_array",
    "diff_traces",
    "encode_array",
    "load_trace",
    "loads_trace",
    "poisson_plan",
    "record_fleet_faultstorm",
    "record_serve_multitenant",
    "trace_plan",
]

"""Canonical workloads behind the golden trace fixtures.

The committed fixtures under ``tests/traces/`` are recordings of these
two scenarios at their pinned seeds.  Keeping the generators in the
package (rather than inside the test files) gives re-recording a single
documented entrypoint when an *intentional* behavior change lands::

    PYTHONPATH=src python -m repro.cli serve --scenario serve_multitenant \
        --record tests/traces/serve_multitenant.jsonl
    PYTHONPATH=src python -m repro.cli serve --scenario fleet_faultstorm \
        --record tests/traces/fleet_faultstorm.jsonl

Golden traces replay on whatever CI machine picks the job, so the array
payloads use small *integer-valued* float32 data (values 0–7): every
product and partial sum is exactly representable, making the GEMV
results independent of the BLAS kernel, FMA contraction and summation
association of the host — bit-identical everywhere, not just on the
machine that recorded them.
"""

from __future__ import annotations

import numpy as np

from repro.fleet.faults import DeviceKill, FaultPlan, OpFaultRule
from repro.fleet.server import FleetConfig, FleetServer
from repro.serve.admission import TenantQuota
from repro.serve.server import CimServer, ServerConfig
from repro.trace.recorder import TraceRecorder
from repro.trace.schema import Trace

GEMV_SOURCE = """
void gemv(int M, int N, float A[M][N], float x[N], float y[M]) {
  for (int i = 0; i < M; i++) {
    y[i] = 0.0;
    for (int j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}
"""

PARAMS = {"M": 16, "N": 16}


def _exact_array(rng: np.random.Generator, shape) -> np.ndarray:
    """float32 data whose GEMV arithmetic is exact on any host BLAS."""
    return rng.integers(0, 8, size=shape).astype(np.float32)


def _payload(rng: np.random.Generator, matrix: np.ndarray) -> dict:
    return {
        "A": matrix,
        "x": _exact_array(rng, 16),
        "y": np.zeros(16, dtype=np.float32),
    }


# ----------------------------------------------------------------------
def record_serve_multitenant(seed: int = 2024) -> Trace:
    """Multi-tenant single-device scenario: three tenants, a tight-quota
    tenant driven into admission rejections, and one bad-payload request
    that resolves FAILED — every terminal path of the serve tier appears
    in the trace."""
    recorder = TraceRecorder()
    server = recorder.attach(
        CimServer(
            ServerConfig(num_tiles=2, batch_window_s=1e-4, max_batch_size=4)
        )
    )
    server.set_quota("free-tier", TenantQuota(max_queue_depth=2, weight=0.5))
    server.set_quota("acme", TenantQuota(max_queue_depth=8, weight=2.0))
    rng = np.random.default_rng(seed)
    matrix = _exact_array(rng, (16, 16))
    for index in range(6):
        server.submit(
            "acme" if index % 2 == 0 else "globex",
            GEMV_SOURCE,
            PARAMS,
            _payload(rng, matrix),
            arrival_s=index * 2e-5,
        )
    # Burst past free-tier's depth-2 queue inside one batching window so
    # admission backpressure rejects the tail.
    for index in range(5):
        server.submit(
            "free-tier",
            GEMV_SOURCE,
            PARAMS,
            _payload(rng, matrix),
            arrival_s=1.5e-4 + index * 1e-6,
        )
    # A payload that cannot satisfy the kernel's declared extents: the
    # runtime rejects the undersized buffer mid-dispatch, the handle
    # resolves FAILED, and the tenant is billed for measured work.
    server.submit(
        "globex",
        GEMV_SOURCE,
        PARAMS,
        {
            "A": _exact_array(rng, (4, 4)),  # M=N=16 requires 16x16
            "x": _exact_array(rng, 16),
            "y": np.zeros(16, dtype=np.float32),
        },
        arrival_s=4e-4,
    )
    server.drain()
    return recorder.finalize()


# ----------------------------------------------------------------------
def record_fleet_faultstorm(seed: int = 31) -> Trace:
    """Fleet fault-storm scenario: three devices with heterogeneous
    pre-fleet wear, the least-worn device killed mid-lease (in-flight
    work compensated, stranded requests migrated, device quarantined and
    drained), and bounded transient dma/compile faults (retries with
    backoff) — the acceptance-gate trace for ``repro replay --diff``."""
    plan = FaultPlan(
        kills=[DeviceKill(device_id=0, at_s=1.1e-4)],
        op_rules=[
            OpFaultRule("dma", probability=0.3, max_faults=3),
            OpFaultRule("compile", probability=0.2, device_id=0, max_faults=2),
        ],
        seed=seed,
    )
    recorder = TraceRecorder()
    fleet = recorder.attach(
        FleetServer(
            FleetConfig(
                num_devices=3,
                batch_window_s=1e-4,
                max_batch_size=4,
                placement="wear-aware",
                initial_wear_bytes=(0, 6_000_000, 2_000_000),
                fault_plan=plan,
                max_attempts=4,
            )
        )
    )
    rng = np.random.default_rng(seed)
    matrix = _exact_array(rng, (16, 16))
    for index in range(12):
        fleet.submit(
            f"tenant{index % 3}",
            GEMV_SOURCE,
            PARAMS,
            _payload(rng, matrix),
            arrival_s=index * 3e-5,
        )
    fleet.drain()
    return recorder.finalize()


#: Scenario name -> recorder, the registry behind ``repro record`` and
#: the golden-fixture re-record workflow documented in docs/trace.md.
SCENARIOS = {
    "serve_multitenant": record_serve_multitenant,
    "fleet_faultstorm": record_fleet_faultstorm,
}

"""Replay a recorded trace through a fresh server and diff the runs.

:class:`TraceReplayer` rebuilds the recorded server configuration from
the trace header (compile options, quotas, crossbar geometry, placement,
retry policy and the seeded fault plan via
:meth:`~repro.fleet.faults.FaultPlan.fresh`), re-drives every ``quota``
and ``submit`` event in recorded order on a fresh
:class:`~repro.serve.clock.VirtualClock`, drains the run, and records it
with a fresh :class:`~repro.trace.recorder.TraceRecorder`.  Because the
whole stack is a deterministic discrete-event simulation, the replayed
trace must equal the recording event for event.

:func:`diff_traces` is the gate: it compares two traces section by
section — responses (bit-identical result arrays by content hash *and*
bytes), per-tenant bills (integer wear/work counters by ``==``, ``fsum``
energies by exact float equality), per-device physical/billed ledgers,
the attempt/commit/fault streams, and the metrics snapshot — and returns
a :class:`TraceDiff` listing every mismatch.  Exact equality is the
right bar: replay determinism means every float is the same IEEE double,
and JSON round-trips doubles exactly (``repr`` shortest round-trip).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.compiler.cache import KernelCompileCache
from repro.fleet.server import FleetConfig, FleetServer
from repro.serve.server import CimServer, ServerConfig
from repro.trace.recorder import TraceRecorder
from repro.trace.schema import (
    Trace,
    TraceFormatError,
    decode_array,
    decode_compile_options,
    decode_fault_plan,
    decode_quota,
)

#: Sections :func:`diff_traces` compares, in report order.
DIFF_SECTIONS = (
    "header",
    "submissions",
    "schedule",
    "responses",
    "tenant_bills",
    "device_bills",
    "metrics",
)


@dataclass
class TraceDiff:
    """Every way two traces disagree, grouped by section; empty == pass."""

    mismatches: dict[str, list[str]] = field(
        default_factory=lambda: {section: [] for section in DIFF_SECTIONS}
    )

    @property
    def identical(self) -> bool:
        return not any(self.mismatches.values())

    def add(self, section: str, message: str) -> None:
        self.mismatches.setdefault(section, []).append(message)

    def count(self) -> int:
        return sum(len(entries) for entries in self.mismatches.values())

    def summary(self) -> str:
        """Human-readable verdict, one line per mismatch."""
        if self.identical:
            return "traces are identical (bit-for-bit)"
        lines = [f"traces differ: {self.count()} mismatch(es)"]
        for section in self.mismatches:
            for message in self.mismatches[section]:
                lines.append(f"  [{section}] {message}")
        return "\n".join(lines)


@dataclass
class ReplayResult:
    """Outcome of one replay: the fresh run's trace, the server it ran
    on (ledgers and metrics still attached), and the diff vs the
    recording."""

    recorded: Trace
    replayed: Trace
    server: Union[CimServer, FleetServer]
    diff: TraceDiff

    @property
    def identical(self) -> bool:
        return self.diff.identical


class TraceReplayer:
    """Re-drive a recorded workload through a fresh server."""

    def __init__(self, trace: Trace):
        self.trace = trace

    # ------------------------------------------------------------------
    def build_server(self) -> Union[CimServer, FleetServer]:
        """A fresh server in the exact configuration of the recording.

        The compile cache is private and in-memory: replay must never
        read another run's on-disk cache state.
        """
        config = dict(self.trace.config)
        try:
            quota = decode_quota(config.pop("default_quota"))
            options = decode_compile_options(config.pop("compile_options"))
            if self.trace.kind == "fleet":
                fault_plan = decode_fault_plan(config.pop("fault_plan"))
                fleet_config = FleetConfig(
                    default_quota=quota,
                    compile_options=options,
                    fault_plan=fault_plan,
                    initial_wear_bytes=tuple(config.pop("initial_wear_bytes")),
                    **config,
                )
                return FleetServer(fleet_config)
            server_config = ServerConfig(
                default_quota=quota, compile_options=options, **config
            )
        except (KeyError, TypeError) as exc:
            raise TraceFormatError(
                f"header: config does not rebuild a {self.trace.kind} "
                f"server ({exc})"
            ) from exc
        return CimServer(
            server_config, compile_cache=KernelCompileCache(disk_dir=None)
        )

    # ------------------------------------------------------------------
    def replay(self) -> ReplayResult:
        """Record a fresh run of the recorded workload and diff it."""
        # Record at the source trace's schema version, so replaying an
        # old fixture produces a byte-comparable trace (a v1 fixture must
        # never be diffed against a v2 re-recording).
        recorder = TraceRecorder(schema_version=self.trace.schema_version)
        server = recorder.attach(self.build_server())
        for event in self.trace.body():
            if event["event"] == "quota":
                server.set_quota(event["tenant"], decode_quota(event["quota"]))
            elif event["event"] == "submit":
                server.submit(
                    event["tenant"],
                    event["source"],
                    params=event["params"],
                    arrays={
                        name: decode_array(payload, where=f"submit array {name!r}")
                        for name, payload in event["arrays"].items()
                    },
                    arrival_s=event["arrival_s"],
                )
        server.drain()
        replayed = recorder.finalize()
        diff = diff_traces(self.trace, replayed)
        return ReplayResult(
            recorded=self.trace, replayed=replayed, server=server, diff=diff
        )


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
def diff_traces(expected: Trace, actual: Trace) -> TraceDiff:
    """Compare two traces section by section; see :class:`TraceDiff`."""
    diff = TraceDiff()
    _diff_header(diff, expected, actual)
    _diff_events(
        diff,
        "submissions",
        expected.submissions(),
        actual.submissions(),
        lambda event: f"request {event['request_id']}",
    )
    _diff_events(
        diff,
        "schedule",
        [e for e in expected.body() if e["event"] in ("attempt", "commit", "fault")],
        [e for e in actual.body() if e["event"] in ("attempt", "commit", "fault")],
        lambda event: (
            f"{event['event']} of request {event['request_id']} on device "
            f"{event['device_id']}"
        ),
    )
    _diff_keyed(
        diff, "responses", expected.responses(), actual.responses(), "request"
    )
    _diff_keyed(
        diff, "tenant_bills", expected.tenant_bills(), actual.tenant_bills(), "tenant"
    )
    _diff_keyed(
        diff, "device_bills", expected.device_bills(), actual.device_bills(), "device"
    )
    if _normalize(expected.metrics()) != _normalize(actual.metrics()):
        diff.add("metrics", _describe_dict_diff(
            _normalize(expected.metrics()) or {},
            _normalize(actual.metrics()) or {},
            "metrics snapshot",
        ))
    return diff


def _diff_header(diff: TraceDiff, expected: Trace, actual: Trace) -> None:
    if expected.kind != actual.kind:
        diff.add("header", f"kind {expected.kind!r} != {actual.kind!r}")
    if expected.schema_version != actual.schema_version:
        diff.add(
            "header",
            f"schema_version {expected.schema_version} != {actual.schema_version}",
        )
    if _normalize(expected.config) != _normalize(actual.config):
        diff.add(
            "header",
            _describe_dict_diff(
                _normalize(expected.config), _normalize(actual.config), "config"
            ),
        )


def _diff_events(diff, section, expected, actual, describe) -> None:
    if len(expected) != len(actual):
        diff.add(
            section, f"{len(expected)} recorded event(s) vs {len(actual)} replayed"
        )
    for left, right in zip(expected, actual):
        left, right = _normalize(left), _normalize(right)
        if left != right:
            diff.add(
                section, _describe_dict_diff(left, right, describe(left))
            )


def _diff_keyed(diff, section, expected, actual, noun) -> None:
    for key in expected:
        if key not in actual:
            diff.add(section, f"{noun} {key!r} missing from replay")
    for key in actual:
        if key not in expected:
            diff.add(section, f"{noun} {key!r} absent from recording")
    for key in expected:
        if key not in actual:
            continue
        left, right = _normalize(expected[key]), _normalize(actual[key])
        if left != right:
            diff.add(section, _describe_dict_diff(left, right, f"{noun} {key!r}"))


def _normalize(value):
    """JSON-normalize an event so a freshly recorded trace (tuples, int
    keys) compares equal to one parsed back from JSONL (lists, str keys)."""
    import json

    if value is None:
        return None
    return json.loads(json.dumps(value, sort_keys=True))


def _describe_dict_diff(left, right, label: str) -> str:
    if not isinstance(left, dict) or not isinstance(right, dict):
        return f"{label}: {left!r} != {right!r}"
    parts = []
    for key in sorted(set(left) | set(right)):
        lval, rval = left.get(key, "<missing>"), right.get(key, "<missing>")
        if lval != rval:
            parts.append(f"{key}: {_shorten(lval)} != {_shorten(rval)}")
    return f"{label} differs ({'; '.join(parts)})"


def _shorten(value, limit: int = 80) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."

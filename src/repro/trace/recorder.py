"""Record one serving run into a replayable trace.

:class:`TraceRecorder` attaches to a live
:class:`~repro.serve.server.CimServer` or
:class:`~repro.fleet.server.FleetServer` *before* any quota or
submission, and captures everything needed to re-drive the run through a
fresh server:

* the server configuration (including the seeded fault plan) goes into
  the trace header;
* ``submit`` / ``set_quota`` calls are wrapped so every submission is
  recorded with its kernel source, parameters and full array payloads;
* the :class:`~repro.serve.dispatch.LeaseExecutor` fault-hook seam is
  wrapped (chaining to any hook already installed, e.g. the fleet's
  fault injector) so per-attempt, per-commit and per-fault events land
  in the trace with their device-clock timestamps;
* :meth:`finalize` — after the caller has drained the server — records
  every request's terminal state and result, the per-tenant bills, the
  per-device physical/billed/compensated ledgers with their partition
  verdicts, and one metrics snapshot.

Attaching is observation-only: the wrapped hooks re-raise injected
faults unchanged and never advance any clock, so a recorded run is
bit-identical to an unrecorded one.  (On the single-device server the
recorder's hook enables the executor's commit stage, which is a no-op
when nothing raises.)
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.fleet.server import FleetServer
from repro.serve.errors import DeviceFault
from repro.serve.request import RequestHandle
from repro.serve.server import CimServer
from repro.trace.schema import (
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    Trace,
    TraceFormatError,
    build_trace,
    dedupe_payload,
    encode_array,
    encode_compile_options,
    encode_fault_plan,
    encode_quota,
)


class TraceRecorder:
    """Capture one server run as a versioned, replayable event stream.

    ``schema_version`` selects the on-disk format (default: the current
    :data:`~repro.trace.schema.SCHEMA_VERSION`).  Version 2 deduplicates
    array payloads by content hash; recording at version 1 keeps every
    payload in full — the replayer uses this to re-record a replay at the
    source trace's version, so old fixtures diff cleanly forever.
    """

    def __init__(self, schema_version: int = SCHEMA_VERSION) -> None:
        if schema_version not in SUPPORTED_VERSIONS:
            raise TraceFormatError(
                f"cannot record schema_version {schema_version}; "
                f"supported: {sorted(SUPPORTED_VERSIONS)}"
            )
        self.schema_version = schema_version
        self.events: list[dict] = []
        self.handles: list[RequestHandle] = []
        self._server: Optional[Union[CimServer, FleetServer]] = None
        self._finalized = False
        self._seen_payloads: set[str] = set()

    def _encode_payload(self, value) -> dict:
        payload = encode_array(np.asarray(value))
        if self.schema_version >= 2:
            payload = dedupe_payload(payload, self._seen_payloads)
        return payload

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(
        self, server: Union[CimServer, FleetServer]
    ) -> Union[CimServer, FleetServer]:
        """Hook *server* for recording; returns the server for chaining.

        Must be called on a fresh server, before any ``set_quota`` or
        ``submit`` — the header snapshots the configuration, and only
        wrapped calls are recorded.
        """
        if self._server is not None:
            raise TraceFormatError("recorder is already attached to a server")
        if isinstance(server, FleetServer):
            kind, config = "fleet", self._encode_fleet_config(server)
            executors = [
                (device.device_id, device.lease_executor)
                for device in server.devices
            ]
        elif isinstance(server, CimServer):
            kind, config = "serve", self._encode_server_config(server)
            executors = [(0, server.lease_executor)]
        else:
            raise TraceFormatError(
                f"cannot record a {type(server).__name__}; expected "
                "CimServer or FleetServer"
            )
        if server.metrics.submitted or server.admission.quotas:
            raise TraceFormatError(
                "recorder must attach before any quota or submission"
            )
        self._server = server
        self.events.append(
            {
                "event": "header",
                "schema_version": self.schema_version,
                "kind": kind,
                "config": config,
            }
        )
        self._wrap_submit(server)
        self._wrap_set_quota(server)
        for device_id, lease_executor in executors:
            self._wrap_lease_hook(lease_executor, device_id)
        return server

    def _encode_server_config(self, server: CimServer) -> dict:
        config = server.config
        return {
            "num_tiles": config.num_tiles,
            "batch_window_s": config.batch_window_s,
            "max_batch_size": config.max_batch_size,
            "scrub_leases": config.scrub_leases,
            "crossbar_rows": config.crossbar_rows,
            "crossbar_cols": config.crossbar_cols,
            "crossbar_mode": config.crossbar_mode,
            "default_quota": encode_quota(config.default_quota),
            "compile_options": encode_compile_options(config.compile_options),
        }

    def _encode_fleet_config(self, server: FleetServer) -> dict:
        config = server.config
        if not isinstance(config.placement, str):
            raise TraceFormatError(
                "cannot record a custom PlacementPolicy instance; use one "
                "of the named placement policies for replayable runs"
            )
        return {
            "num_devices": config.num_devices,
            "num_tiles": config.num_tiles,
            "batch_window_s": config.batch_window_s,
            "max_batch_size": config.max_batch_size,
            "scrub_leases": config.scrub_leases,
            "crossbar_rows": config.crossbar_rows,
            "crossbar_cols": config.crossbar_cols,
            "crossbar_mode": config.crossbar_mode,
            "default_quota": encode_quota(config.default_quota),
            "compile_options": encode_compile_options(config.compile_options),
            "placement": config.placement,
            "initial_wear_bytes": [int(w) for w in config.initial_wear_bytes],
            "max_attempts": config.max_attempts,
            "retry_backoff_base_s": config.retry_backoff_base_s,
            "retry_backoff_max_s": config.retry_backoff_max_s,
            "tighten_admission": config.tighten_admission,
            "fault_plan": encode_fault_plan(config.fault_plan),
        }

    # ------------------------------------------------------------------
    def _wrap_submit(self, server) -> None:
        original = server.submit

        def submit(tenant, kernel, params=None, arrays=None, arrival_s=None):
            if not isinstance(kernel, str):
                raise TraceFormatError(
                    "only mini-C source kernels can be recorded (got "
                    f"{type(kernel).__name__}); pass the source string when "
                    "recording a trace"
                )
            handle = original(tenant, kernel, params, arrays, arrival_s)
            self.handles.append(handle)
            self.events.append(
                {
                    "event": "submit",
                    "request_id": handle.request_id,
                    "tenant": tenant,
                    "source": kernel,
                    "params": {
                        key: _plain(value)
                        for key, value in (params or {}).items()
                    },
                    "arrays": {
                        name: self._encode_payload(value)
                        for name, value in (arrays or {}).items()
                    },
                    "arrival_s": handle.arrival_s,
                }
            )
            return handle

        server.submit = submit

    def _wrap_set_quota(self, server) -> None:
        original = server.set_quota

        def set_quota(tenant, quota):
            original(tenant, quota)
            self.events.append(
                {
                    "event": "quota",
                    "tenant": tenant,
                    "quota": encode_quota(quota),
                }
            )

        server.set_quota = set_quota

    def _wrap_lease_hook(self, lease_executor, device_id: int) -> None:
        original = lease_executor.fault_hook

        def hook(stage, request):
            event = {
                "event": "attempt" if stage == "attempt" else "commit",
                "request_id": request.seq,
                "tenant": request.tenant,
                "device_id": device_id,
                "attempt": request.handle.attempts,
                "at_s": lease_executor.clock.now_s,
            }
            if original is not None:
                try:
                    original(stage, request)
                except DeviceFault as fault:
                    self.events.append(
                        {
                            **event,
                            "event": "fault",
                            "stage": stage,
                            "op": fault.op,
                            "fatal": fault.fatal,
                            "reason": str(fault),
                        }
                    )
                    raise
            self.events.append(event)

        lease_executor.fault_hook = hook

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> Trace:
        """Record terminal states, ledgers and metrics; seal the trace.

        Call after the run is fully drained.  Idempotent in effect: a
        second call raises instead of double-recording.
        """
        if self._server is None:
            raise TraceFormatError("recorder was never attached to a server")
        if self._finalized:
            raise TraceFormatError("trace has already been finalized")
        self._finalized = True
        server = self._server
        for handle in self.handles:
            self.events.append(_response_event(handle, self._encode_payload))
        ledger = server.ledger
        for tenant in sorted(ledger.tenants):
            account = ledger.tenants[tenant]
            self.events.append(
                {
                    "event": "tenant_bill",
                    "tenant": tenant,
                    "completed": account.completed,
                    "rejected": account.rejected,
                    "wear_bytes": int(account.wear_bytes),
                    "crossbar_write_ops": int(account.crossbar_write_ops),
                    "gemv_count": int(account.gemv_count),
                    "macs": int(account.macs),
                    "dma_bytes": int(account.dma_bytes),
                    "energy_j": account.energy_j,
                    "accelerator_energy_j": account.accelerator_energy_j,
                    "service_s": account.service_s,
                }
            )
        for event in self._device_bill_events(server):
            self.events.append(event)
        self.events.append(
            {"event": "metrics", "snapshot": _plain_tree(server.metrics.snapshot())}
        )
        return build_trace(self.events)

    def _device_bill_events(self, server) -> list[dict]:
        import math as _math

        ledger = server.ledger
        if isinstance(server, FleetServer):
            accelerators = {
                device.device_id: device.system.accelerator
                for device in server.devices
            }
            states = {
                device.device_id: device.state.value for device in server.devices
            }
            partition = server.verify_fleet_partition()
        else:
            accelerators = {0: server.system.accelerator}
            states = {0: "up"}
            partition = ledger.verify_partition(server.system.accelerator)
        events = []
        for device_id in sorted(accelerators):
            accelerator = accelerators[device_id]
            usages = ledger.device_usages(device_id)
            comps = ledger.device_compensations(device_id)
            housekeeping = _math.fsum(
                energy
                for energy, dev in zip(
                    ledger.housekeeping_energy_j_records,
                    ledger.housekeeping_device_ids,
                )
                if dev == device_id
            )
            events.append(
                {
                    "event": "device_bill",
                    "device_id": device_id,
                    "state": states[device_id],
                    "physical_cell_writes": int(accelerator.total_cell_writes()),
                    "physical_macs": int(accelerator.total_macs()),
                    "physical_energy_j": accelerator.total_energy_j(),
                    "billed_wear_bytes": int(sum(u.wear_bytes for u in usages)),
                    "billed_energy_j": _math.fsum(
                        u.accelerator_energy_j for u in usages
                    ),
                    "compensated_wear_bytes": int(
                        sum(c.wear_bytes for c in comps)
                    ),
                    "compensated_energy_j": _math.fsum(
                        c.accelerator_energy_j for c in comps
                    ),
                    "compensations": len(comps),
                    "housekeeping_energy_j": housekeeping,
                    "partition_ok": bool(all(partition.values())),
                }
            )
        return events

    def save(self, path) -> Trace:
        """Finalize (if needed) and write the trace to *path*."""
        trace = self.finalize() if not self._finalized else build_trace(self.events)
        trace.save(path)
        return trace


# ----------------------------------------------------------------------
def _response_event(handle: RequestHandle, encode_payload=None) -> dict:
    from repro.serve.request import RequestStatus

    if encode_payload is None:
        encode_payload = lambda value: encode_array(np.asarray(value))  # noqa: E731

    event = {
        "event": "response",
        "request_id": handle.request_id,
        "tenant": handle.tenant,
        "status": handle.status.value,
        "arrival_s": handle.arrival_s,
        "admitted_s": handle.admitted_s,
        "dispatched_s": handle.dispatched_s,
        "completed_s": handle.completed_s,
        "batch_id": handle.batch_id,
        "batch_size": handle.batch_size,
        "device_id": handle.device_id,
        "attempts": handle.attempts,
        "migrations": handle.migrations,
        "reason": handle.reject_reason,
    }
    if handle.status is RequestStatus.COMPLETED:
        event["result"] = {
            name: encode_payload(value) for name, value in handle.result().items()
        }
    return event


def _plain(value):
    """Coerce numpy scalars to JSON-native Python numbers."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _plain_tree(value):
    if isinstance(value, dict):
        return {str(key): _plain_tree(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain_tree(item) for item in value]
    return _plain(value)

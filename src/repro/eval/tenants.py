"""Per-tenant serving statistics in the paper's evaluation currency.

Folds a :class:`~repro.serve.server.CimServer`'s accounting ledger into
rows that speak the evaluation's language: energy, wear expressed through
the Eq. 1 lifetime model of :mod:`repro.hw.endurance`, and latency
percentiles.  The rows let a tenant bill ("you cost us X joules and Y
years of device life") be read straight off a serving run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serve.metrics import percentile

#: Figure 5's mid-range PCM cell endurance (writes) — the default scale
#: on which tenant wear is expressed as device lifetime.
DEFAULT_CELL_ENDURANCE_WRITES = 25e6


@dataclass(frozen=True)
class TenantUsageRow:
    """One tenant's serving bill."""

    tenant: str
    completed: int
    rejected: int
    energy_j: float
    wear_bytes: int
    wear_share: float               # fraction of the device's total wear
    p50_latency_s: Optional[float]
    p99_latency_s: Optional[float]
    #: Device lifetime (years) if the crossbar saw only this tenant's
    #: write traffic, averaged over the full serving run.
    implied_lifetime_years: float


def tenant_usage_rows(
    server,
    cell_endurance_writes: float = DEFAULT_CELL_ENDURANCE_WRITES,
) -> list[TenantUsageRow]:
    """Per-tenant rows of *server*'s ledger (sorted by tenant name)."""
    ledger = server.ledger
    elapsed_s = server.clock.now_s
    device_wear = ledger.device_wear_bytes
    rows = []
    for tenant in sorted(ledger.tenants):
        account = ledger.tenants[tenant]
        latencies = account.latencies_s()
        rows.append(
            TenantUsageRow(
                tenant=tenant,
                completed=account.completed,
                rejected=account.rejected,
                energy_j=account.energy_j,
                wear_bytes=account.wear_bytes,
                wear_share=(
                    account.wear_bytes / device_wear if device_wear else 0.0
                ),
                p50_latency_s=percentile(latencies, 50) if latencies else None,
                p99_latency_s=percentile(latencies, 99) if latencies else None,
                implied_lifetime_years=account.implied_lifetime_years(
                    cell_endurance_writes,
                    ledger.crossbar_size_bytes,
                    elapsed_s=elapsed_s if elapsed_s > 0 else None,
                ),
            )
        )
    return rows


def format_tenant_table(rows: list[TenantUsageRow]) -> str:
    """ASCII rendering of the per-tenant bills."""
    header = (
        f"{'tenant':<12} {'done':>5} {'rej':>4} {'energy [J]':>12} "
        f"{'wear [B]':>10} {'share':>6} {'p99 lat [s]':>12} {'lifetime [y]':>13}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        p99 = f"{row.p99_latency_s:.3e}" if row.p99_latency_s is not None else "-"
        lifetime = (
            "inf"
            if row.implied_lifetime_years == float("inf")
            else f"{row.implied_lifetime_years:.3f}"
        )
        lines.append(
            f"{row.tenant:<12} {row.completed:>5} {row.rejected:>4} "
            f"{row.energy_j:>12.3e} {row.wear_bytes:>10} "
            f"{row.wear_share:>6.2f} {p99:>12} {lifetime:>13}"
        )
    return "\n".join(lines)

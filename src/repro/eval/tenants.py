"""Per-tenant serving statistics in the paper's evaluation currency.

Folds a :class:`~repro.serve.server.CimServer`'s accounting ledger into
rows that speak the evaluation's language: energy, wear expressed through
the Eq. 1 lifetime model of :mod:`repro.hw.endurance`, and latency
percentiles.  The rows let a tenant bill ("you cost us X joules and Y
years of device life") be read straight off a serving run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serve.metrics import percentile

#: Figure 5's mid-range PCM cell endurance (writes) — the default scale
#: on which tenant wear is expressed as device lifetime.
DEFAULT_CELL_ENDURANCE_WRITES = 25e6


@dataclass(frozen=True)
class TenantUsageRow:
    """One tenant's serving bill."""

    tenant: str
    completed: int
    rejected: int
    energy_j: float
    wear_bytes: int
    wear_share: float               # fraction of the device's total wear
    p50_latency_s: Optional[float]
    p99_latency_s: Optional[float]
    #: Device lifetime (years) if the crossbar saw only this tenant's
    #: write traffic, averaged over the full serving run.
    implied_lifetime_years: float


def tenant_usage_rows(
    server,
    cell_endurance_writes: float = DEFAULT_CELL_ENDURANCE_WRITES,
) -> list[TenantUsageRow]:
    """Per-tenant rows of *server*'s ledger (sorted by tenant name)."""
    ledger = server.ledger
    elapsed_s = server.clock.now_s
    device_wear = ledger.device_wear_bytes
    rows = []
    for tenant in sorted(ledger.tenants):
        account = ledger.tenants[tenant]
        latencies = account.latencies_s()
        rows.append(
            TenantUsageRow(
                tenant=tenant,
                completed=account.completed,
                rejected=account.rejected,
                energy_j=account.energy_j,
                wear_bytes=account.wear_bytes,
                wear_share=(
                    account.wear_bytes / device_wear if device_wear else 0.0
                ),
                p50_latency_s=percentile(latencies, 50) if latencies else None,
                p99_latency_s=percentile(latencies, 99) if latencies else None,
                implied_lifetime_years=account.implied_lifetime_years(
                    cell_endurance_writes,
                    ledger.crossbar_size_bytes,
                    elapsed_s=elapsed_s if elapsed_s > 0 else None,
                ),
            )
        )
    return rows


@dataclass(frozen=True)
class FleetDeviceRow:
    """One fleet device's health and wear summary."""

    device_id: int
    state: str                      # "up" | "quarantined" | "drained"
    leases: int
    served: int                     # requests billed on this device
    busy_s: float
    wear_bytes: int                 # pre-fleet age + this run's writes
    compensated_wear_bytes: int     # faulted-attempt wear (never billed)
    energy_j: float
    #: Eq. 1 lifetime (years) left if the run's write rate were sustained.
    implied_lifetime_years: float


def fleet_device_rows(
    fleet,
    cell_endurance_writes: float = DEFAULT_CELL_ENDURANCE_WRITES,
) -> list[FleetDeviceRow]:
    """Per-device rows of a :class:`~repro.fleet.server.FleetServer` run.

    The fleet's implied lifetime is the *minimum* of these rows' — the
    fleet dies with its most-worn device — which is exactly the quantity
    wear-aware placement maximises.
    """
    import math

    elapsed_s = fleet.clock.now_s
    rows = []
    for device in fleet.devices:
        usages = fleet.ledger.device_usages(device.device_id)
        comps = fleet.ledger.device_compensations(device.device_id)
        run_wear = sum(u.wear_bytes for u in usages) + sum(
            c.wear_bytes for c in comps
        )
        if elapsed_s > 0 and run_wear > 0:
            seconds_per_year = 365.25 * 24 * 3600.0
            rate_bytes_per_year = run_wear / elapsed_s * seconds_per_year
        else:
            rate_bytes_per_year = 0.0
        rows.append(
            FleetDeviceRow(
                device_id=device.device_id,
                state=device.state.value,
                leases=device.leases,
                served=len(usages),
                busy_s=device.busy_s,
                wear_bytes=device.total_wear_bytes,
                compensated_wear_bytes=sum(c.wear_bytes for c in comps),
                energy_j=math.fsum(
                    [u.energy_j for u in usages] + [c.energy_j for c in comps]
                ),
                implied_lifetime_years=device.implied_lifetime_years(
                    cell_endurance_writes, rate_bytes_per_year
                ),
            )
        )
    return rows


def fleet_implied_lifetime_years(rows: list[FleetDeviceRow]) -> float:
    """Eq. 1 lifetime of the fleet = lifetime of its most-worn device."""
    if not rows:
        return float("inf")
    return min(row.implied_lifetime_years for row in rows)


def format_fleet_table(rows: list[FleetDeviceRow]) -> str:
    """ASCII rendering of the per-device fleet summary."""
    header = (
        f"{'device':>6} {'state':<12} {'leases':>6} {'srv':>5} "
        f"{'busy [s]':>10} {'wear [B]':>10} {'comp [B]':>9} "
        f"{'energy [J]':>12} {'lifetime [y]':>13}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lifetime = (
            "inf"
            if row.implied_lifetime_years == float("inf")
            else f"{row.implied_lifetime_years:.3f}"
        )
        lines.append(
            f"{row.device_id:>6} {row.state:<12} {row.leases:>6} "
            f"{row.served:>5} {row.busy_s:>10.3e} {row.wear_bytes:>10} "
            f"{row.compensated_wear_bytes:>9} {row.energy_j:>12.3e} "
            f"{lifetime:>13}"
        )
    return "\n".join(lines)


def format_tenant_table(rows: list[TenantUsageRow]) -> str:
    """ASCII rendering of the per-tenant bills."""
    header = (
        f"{'tenant':<12} {'done':>5} {'rej':>4} {'energy [J]':>12} "
        f"{'wear [B]':>10} {'share':>6} {'p99 lat [s]':>12} {'lifetime [y]':>13}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        p99 = f"{row.p99_latency_s:.3e}" if row.p99_latency_s is not None else "-"
        lifetime = (
            "inf"
            if row.implied_lifetime_years == float("inf")
            else f"{row.implied_lifetime_years:.3f}"
        )
        lines.append(
            f"{row.tenant:<12} {row.completed:>5} {row.rejected:>4} "
            f"{row.energy_j:>12.3e} {row.wear_bytes:>10} "
            f"{row.wear_share:>6.2f} {p99:>12} {lifetime:>13}"
        )
    return "\n".join(lines)

"""Table I and ASCII rendering of the evaluation results."""

from __future__ import annotations

from typing import Sequence

from repro.eval.experiments import Figure6Data
from repro.eval.lifetime import Figure5Data
from repro.hw.energy import table_i_rows

# Re-exported so the evaluation layer is the single entry point for reports.
table1_rows = table_i_rows


def format_table(rows: Sequence[tuple], headers: Sequence[str]) -> str:
    """Minimal fixed-width ASCII table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_cells = [h.ljust(w) for h, w in zip(headers, widths)]
    lines.append(" | ".join(header_cells))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        cells = [str(cell).ljust(w) for cell, w in zip(row, widths)]
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def format_table1() -> str:
    """Render Table I (system configuration and energy model)."""
    return format_table(table1_rows(), headers=("Parameter", "Value"))


def format_figure6(data: Figure6Data) -> str:
    """Render the Figure 6 data as two tables (energy panel, EDP panel)."""
    energy_rows = [
        (
            row.kernel,
            row.category,
            f"{row.host_energy_mj:.4f}",
            f"{row.cim_energy_mj:.4f}",
            f"{row.energy_improvement:.2f}x",
            f"{row.macs_per_cim_write:.1f}",
        )
        for row in data.rows
    ]
    energy_rows.append(
        ("Geomean", "", "", "", f"{data.energy_geomean:.2f}x", "")
    )
    energy_rows.append(
        ("Selective Geomean", "gemm-like", "", "", f"{data.selective_energy_geomean:.2f}x", "")
    )
    left = format_table(
        energy_rows,
        headers=(
            "Kernel",
            "Category",
            "Host energy (mJ)",
            "Host+CIM energy (mJ)",
            "Energy impr.",
            "MACs / CIM write",
        ),
    )
    edp_rows = [
        (
            row.kernel,
            f"{row.edp_improvement_signed:+.2f}x",
            f"{row.runtime_improvement_signed:+.2f}x",
        )
        for row in data.rows
    ]
    edp_rows.append(("Average", f"{data.edp_average:+.2f}x", ""))
    right = format_table(
        edp_rows,
        headers=("Kernel", "EDP improvement", "Runtime improvement"),
    )
    return (
        f"Figure 6 (dataset {data.dataset})\n\n"
        f"Energy (left panel):\n{left}\n\nEDP / runtime (right panel):\n{right}"
    )


def format_figure5(data: Figure5Data) -> str:
    """Render the Figure 5 lifetime curves."""
    rows = []
    for (endurance, naive_years), (_, smart_years) in zip(
        data.naive_curve(), data.smart_curve()
    ):
        rows.append(
            (
                f"{endurance / 1e6:.0f}M",
                f"{naive_years:.2f}",
                f"{smart_years:.2f}",
            )
        )
    table = format_table(
        rows,
        headers=(
            "PCM cell endurance (writes)",
            "Naive mapping (years)",
            '"Smart" mapping (years)',
        ),
    )
    return (
        "Figure 5: system lifetime vs PCM endurance "
        f"(smart/naive improvement {data.lifetime_improvement:.2f}x)\n" + table
    )

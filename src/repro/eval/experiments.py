"""Per-kernel evaluation and the Figure 6 experiment.

For every PolyBench kernel the harness produces two configurations, exactly
as the paper's compilation strings do:

* **Host (Arm-A7)** — ``clang -O3``: the unmodified kernel, costed with the
  analytical host model (dynamic instructions x 128 pJ).
* **Host+CIM** — ``clang -O3 -enable-loop-tactics``: the TDO-CIM-compiled
  kernel executed on the emulated system; its energy is the sum of the host
  loops that remained, the host-side offload overhead (driver, copies,
  cache flushes, polling) and the accelerator energy.

Figure 6 (left) reports the two energies and the MACs-per-CIM-write compute
intensity; Figure 6 (right) reports EDP and runtime improvement factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Union

import numpy as np

from repro.codegen.executor import ExecutionReport, OffloadExecutor
from repro.compiler.driver import CompilationResult, TdoCimCompiler
from repro.compiler.options import CompileOptions
from repro.eval.metrics import geometric_mean, improvement_factor, signed_log_improvement
from repro.host.cost_model import HostCostModel, HostExecutionEstimate
from repro.ir.normalize import normalize_reductions
from repro.system.config import SystemConfig
from repro.system.system import CimSystem
from repro.workloads.polybench import PAPER_KERNELS, PolybenchKernel, get_kernel


@dataclass
class KernelEvaluation:
    """Host vs host+CIM comparison for one kernel and dataset.

    Both configurations are costed with the same analytical host model (the
    Gem5-profiling stand-in): the baseline is the original program, the CIM
    configuration is the host part of the compiled program plus the measured
    offload overhead and accelerator energy/latency.
    """

    kernel: str
    category: str
    dataset: str
    host: HostExecutionEstimate
    cim: ExecutionReport
    cim_host: HostExecutionEstimate
    compilation: CompilationResult

    # ------------------------------------------------------------------
    @property
    def host_energy_j(self) -> float:
        return self.host.energy_j

    @property
    def cim_energy_j(self) -> float:
        return (
            self.cim_host.energy_j
            + self.cim.offload_energy_j
            + self.cim.accelerator_energy_j
        )

    @property
    def host_time_s(self) -> float:
        return self.host.time_s

    @property
    def cim_time_s(self) -> float:
        return self.cim_host.time_s + self.cim.offload_time_s

    @property
    def energy_improvement(self) -> float:
        return improvement_factor(self.host_energy_j, self.cim_energy_j)

    @property
    def runtime_improvement(self) -> float:
        return improvement_factor(self.host_time_s, self.cim_time_s)

    @property
    def edp_improvement(self) -> float:
        return improvement_factor(
            self.host_energy_j * self.host_time_s,
            self.cim_energy_j * self.cim_time_s,
        )

    @property
    def macs_per_cim_write(self) -> float:
        return self.cim.macs_per_cim_write


def evaluate_kernel(
    name: str,
    dataset: str = "MEDIUM",
    options: Optional[CompileOptions] = None,
    system_config: Optional[SystemConfig] = None,
    seed: int = 0,
    verify: bool = False,
    pipeline: Optional[Union[str, Sequence[str]]] = None,
) -> KernelEvaluation:
    """Run the host-vs-CIM comparison for one PolyBench kernel.

    ``verify=True`` additionally checks the offloaded results against the
    NumPy reference (used by the integration tests; the benchmarks skip it
    to keep the timed region focused on the simulation itself).

    ``pipeline`` overrides ``options.pipeline`` — the one-argument way for
    ablation sweeps to select a named pass pipeline (``"default"``,
    ``"no-fusion"``, ...) without constructing options by hand.
    """
    kernel = get_kernel(name)
    params = kernel.params(dataset)
    arrays = kernel.arrays(dataset, seed=seed)

    options = options or CompileOptions()
    if pipeline is not None:
        options = replace(options, pipeline=pipeline)
    compiler = TdoCimCompiler(options)
    compilation = compiler.compile(kernel.source, size_hint=params)

    # Host baseline: analytical cost of the original (normalised) program.
    host_model = HostCostModel((system_config or SystemConfig()).host)
    host_program = normalize_reductions(compilation.source_program)
    host_estimate = host_model.estimate_program(host_program, params)
    # Host part of the compiled program (the loops left after offloading),
    # costed with the same analytical model for an apples-to-apples compare.
    cim_host_estimate = host_model.estimate_program(compilation.program, params)

    # Host+CIM: execute the compiled program on the emulated system.
    system = CimSystem(system_config or SystemConfig())
    executor = OffloadExecutor(system)
    outputs, report = executor.run(compilation.program, params, arrays)

    if verify:
        reference = kernel.numpy_reference(params, arrays)
        for array_name in kernel.output_arrays:
            if not np.allclose(
                outputs[array_name], reference[array_name], rtol=1e-3, atol=1e-4
            ):
                raise AssertionError(
                    f"offloaded {name} produced wrong results for {array_name!r}"
                )

    return KernelEvaluation(
        kernel=name,
        category=kernel.category,
        dataset=dataset,
        host=host_estimate,
        cim=report,
        cim_host=cim_host_estimate,
        compilation=compilation,
    )


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
@dataclass
class Figure6Row:
    """One bar group of Figure 6 (both panels)."""

    kernel: str
    category: str
    host_energy_mj: float
    cim_energy_mj: float
    energy_improvement: float
    macs_per_cim_write: float
    edp_improvement: float
    runtime_improvement: float

    @property
    def edp_improvement_signed(self) -> float:
        return signed_log_improvement(self.edp_improvement)

    @property
    def runtime_improvement_signed(self) -> float:
        return signed_log_improvement(self.runtime_improvement)


@dataclass
class Figure6Data:
    """The complete Figure 6 dataset."""

    dataset: str
    rows: list[Figure6Row] = field(default_factory=list)
    evaluations: list[KernelEvaluation] = field(default_factory=list)

    @property
    def energy_geomean(self) -> float:
        """Geometric-mean energy improvement over all kernels."""
        return geometric_mean(r.energy_improvement for r in self.rows)

    @property
    def selective_energy_geomean(self) -> float:
        """Geometric-mean energy improvement over the GEMM-like kernels only
        (the paper's "Selective Geomean" bar)."""
        selective = [r.energy_improvement for r in self.rows if r.category == "gemm-like"]
        return geometric_mean(selective)

    @property
    def edp_average(self) -> float:
        """Average EDP improvement (the paper's rightmost bar)."""
        return geometric_mean(r.edp_improvement for r in self.rows)

    @property
    def best_edp_improvement(self) -> float:
        return max(r.edp_improvement for r in self.rows)

    def row(self, kernel: str) -> Figure6Row:
        for row in self.rows:
            if row.kernel == kernel:
                return row
        raise KeyError(f"no Figure 6 row for kernel {kernel!r}")


def figure6(
    dataset: str = "MEDIUM",
    kernels: Sequence[str] = PAPER_KERNELS,
    options: Optional[CompileOptions] = None,
    system_config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> Figure6Data:
    """Regenerate the Figure 6 data (energy, intensity, EDP, runtime)."""
    data = Figure6Data(dataset=dataset)
    for name in kernels:
        evaluation = evaluate_kernel(
            name,
            dataset=dataset,
            options=options,
            system_config=system_config,
            seed=seed,
        )
        data.evaluations.append(evaluation)
        data.rows.append(
            Figure6Row(
                kernel=name,
                category=evaluation.category,
                host_energy_mj=evaluation.host_energy_j * 1e3,
                cim_energy_mj=evaluation.cim_energy_j * 1e3,
                energy_improvement=evaluation.energy_improvement,
                macs_per_cim_write=evaluation.macs_per_cim_write,
                edp_improvement=evaluation.edp_improvement,
                runtime_improvement=evaluation.runtime_improvement,
            )
        )
    return data

"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.eval.metrics` — geometric means, EDP, improvement factors.
* :mod:`repro.eval.experiments` — per-kernel host vs host+CIM evaluation and
  the Figure 6 data (energy, EDP, runtime, MACs-per-write).
* :mod:`repro.eval.lifetime` — the Figure 5 endurance/lifetime study (naive
  vs smart mapping of the Listing 2 fused kernels).
* :mod:`repro.eval.tables` — Table I rendering and ASCII report formatting.
* :mod:`repro.eval.tenants` — per-tenant serving bills (energy, wear as
  Eq. 1 device lifetime, latency percentiles) for :class:`CimServer` runs,
  plus per-device health/wear summaries for :class:`FleetServer` runs.
"""

from repro.eval.metrics import geometric_mean, improvement_factor, edp
from repro.eval.experiments import (
    KernelEvaluation,
    Figure6Row,
    Figure6Data,
    evaluate_kernel,
    figure6,
)
from repro.eval.lifetime import Figure5Data, figure5, figure5_simulated
from repro.eval.tables import table1_rows, format_table, format_figure6, format_figure5
from repro.eval.tenants import (
    FleetDeviceRow,
    TenantUsageRow,
    fleet_device_rows,
    fleet_implied_lifetime_years,
    format_fleet_table,
    format_tenant_table,
    tenant_usage_rows,
)

__all__ = [
    "geometric_mean",
    "improvement_factor",
    "edp",
    "KernelEvaluation",
    "Figure6Row",
    "Figure6Data",
    "evaluate_kernel",
    "figure6",
    "Figure5Data",
    "figure5",
    "figure5_simulated",
    "table1_rows",
    "format_table",
    "format_figure6",
    "format_figure5",
    "FleetDeviceRow",
    "TenantUsageRow",
    "fleet_device_rows",
    "fleet_implied_lifetime_years",
    "format_fleet_table",
    "format_tenant_table",
    "tenant_usage_rows",
]

"""Figure 5: PCM lifetime under naive vs smart (fused) mapping.

The workload is the Listing 2 pair of independent GEMMs sharing their ``A``
operand.  Under the *naive* mapping each kernel is offloaded separately and
the crossbar is (re)programmed once per kernel (equivalently, the paper's
framing: the non-shared operands ``B`` and ``E`` are the ones written);
under the *smart* mapping TDO-CIM fuses the two kernels into one batched
call and the shared operand ``A`` is written once, with the other operands
streamed through the input buffers.  The system lifetime follows Eq. (1):

    lifetime = cell_endurance * crossbar_size / write_traffic

Two modes are provided:

* ``figure5_simulated`` — compiles and runs the Listing 2 workload (small
  matrices) with fusion off/on and takes the crossbar write counts from the
  simulated accelerator.  This demonstrates that the fusion transformation
  really halves the number of crossbar writes.
* ``figure5`` (projection, the default) — evaluates Eq. (1) at the paper's
  scale: square matrices of 4096 byte-elements per side, write volume equal
  to two operand matrices (naive) versus one (smart), and the kernel-pair
  execution time taken from the analytical Arm-A7 host model.  This
  reproduces the 8-48-year range and the ~2x gap of the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.codegen.executor import ExecutionReport, OffloadExecutor
from repro.compiler.driver import TdoCimCompiler
from repro.compiler.options import CompileOptions
from repro.frontend.parser import parse_program
from repro.host.cost_model import HostCostModel
from repro.hw.endurance import system_lifetime_years
from repro.ir.normalize import normalize_reductions
from repro.system.config import SystemConfig
from repro.system.system import CimSystem

#: The endurance sweep of Figure 5 (10 to 40 million writes).
DEFAULT_ENDURANCE_POINTS = tuple(float(m) * 1e6 for m in range(10, 41, 2))

#: Listing 2 / Figure 5 use a 512 KB crossbar for the lifetime projection.
FIGURE5_CROSSBAR_BYTES = 512 * 1024

#: The paper assumes square matrices of 4096 byte-elements per side.
FIGURE5_MATRIX_SIDE = 4096

#: Mini-C source of the Listing 2 workload: two independent GEMMs sharing A.
SHARED_INPUT_GEMMS_SOURCE = """
void shared_input_gemms(int N, float C[N][N], float D[N][N],
                        float A[N][N], float B[N][N], float E[N][N]) {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++)
        D[i][j] += A[i][k] * E[k][j];
}
"""


@dataclass
class MappingOutcome:
    """Write volume and time basis of one mapping strategy."""

    name: str
    crossbar_bytes_written: float
    execution_time_s: float
    report: Optional[ExecutionReport] = None

    @property
    def write_traffic_bytes_per_s(self) -> float:
        if self.execution_time_s <= 0:
            return 0.0
        return self.crossbar_bytes_written / self.execution_time_s

    def lifetime_years(
        self,
        cell_endurance_writes: float,
        crossbar_size_bytes: float = FIGURE5_CROSSBAR_BYTES,
    ) -> float:
        return system_lifetime_years(
            cell_endurance_writes, crossbar_size_bytes, self.write_traffic_bytes_per_s
        )


@dataclass
class Figure5Data:
    """Lifetime curves of Figure 5."""

    endurance_points: tuple[float, ...]
    naive: MappingOutcome = None  # type: ignore[assignment]
    smart: MappingOutcome = None  # type: ignore[assignment]
    crossbar_size_bytes: float = FIGURE5_CROSSBAR_BYTES
    mode: str = "projected"

    def naive_curve(self) -> list[tuple[float, float]]:
        return [
            (e, self.naive.lifetime_years(e, self.crossbar_size_bytes))
            for e in self.endurance_points
        ]

    def smart_curve(self) -> list[tuple[float, float]]:
        return [
            (e, self.smart.lifetime_years(e, self.crossbar_size_bytes))
            for e in self.endurance_points
        ]

    @property
    def lifetime_improvement(self) -> float:
        """Smart-over-naive lifetime ratio (the paper reports ~2x)."""
        return (
            self.naive.write_traffic_bytes_per_s
            / self.smart.write_traffic_bytes_per_s
        )

    @property
    def write_volume_ratio(self) -> float:
        """Naive-over-smart crossbar write volume (independent of time basis)."""
        return self.naive.crossbar_bytes_written / self.smart.crossbar_bytes_written


def _run_mapping(
    matrix_size: int, enable_fusion: bool, name: str
) -> MappingOutcome:
    """Compile and execute the Listing 2 workload with/without fusion."""
    options = CompileOptions(enable_fusion=enable_fusion)
    compilation = TdoCimCompiler(options).compile(
        SHARED_INPUT_GEMMS_SOURCE, size_hint={"N": matrix_size}
    )
    rng = np.random.default_rng(7)
    arrays = {
        "A": rng.random((matrix_size, matrix_size), dtype=np.float32),
        "B": rng.random((matrix_size, matrix_size), dtype=np.float32),
        "E": rng.random((matrix_size, matrix_size), dtype=np.float32),
        "C": np.zeros((matrix_size, matrix_size), dtype=np.float32),
        "D": np.zeros((matrix_size, matrix_size), dtype=np.float32),
    }
    system = CimSystem(SystemConfig())
    executor = OffloadExecutor(system)
    _, report = executor.run(compilation.program, {"N": matrix_size}, arrays)
    return MappingOutcome(
        name=name,
        # One byte per programmed 8-bit cell.
        crossbar_bytes_written=float(report.crossbar_cell_writes),
        execution_time_s=report.total_time_s,
        report=report,
    )


def figure5_simulated(
    matrix_size: int = 64,
    endurance_points: Sequence[float] = DEFAULT_ENDURANCE_POINTS,
    crossbar_size_bytes: float = FIGURE5_CROSSBAR_BYTES,
    common_time_basis: bool = True,
) -> Figure5Data:
    """Simulation-backed Figure 5 (small matrices).

    With ``common_time_basis`` (the paper's model: the kernel-pair execution
    time does not depend on the mapping), both mappings use the naive
    execution's time, so the lifetime gap equals the measured write-volume
    ratio.
    """
    naive = _run_mapping(matrix_size, enable_fusion=False, name="Naive mapping")
    smart = _run_mapping(matrix_size, enable_fusion=True, name='"Smart" mapping')
    if common_time_basis:
        smart = MappingOutcome(
            name=smart.name,
            crossbar_bytes_written=smart.crossbar_bytes_written,
            execution_time_s=naive.execution_time_s,
            report=smart.report,
        )
    return Figure5Data(
        endurance_points=tuple(endurance_points),
        naive=naive,
        smart=smart,
        crossbar_size_bytes=crossbar_size_bytes,
        mode="simulated",
    )


def figure5(
    matrix_side: int = FIGURE5_MATRIX_SIDE,
    endurance_points: Sequence[float] = DEFAULT_ENDURANCE_POINTS,
    crossbar_size_bytes: float = FIGURE5_CROSSBAR_BYTES,
) -> Figure5Data:
    """Paper-scale analytical projection of Figure 5.

    Write volume: the naive mapping programs the two non-shared operands
    (``B`` and ``E``), the smart mapping programs only the shared ``A`` —
    ``matrix_side**2`` byte-elements per matrix.  The kernel-pair execution
    time is the analytical Arm-A7 estimate of the Listing 2 loop nests, and
    the writes are assumed uniformly spread over a 512 KB crossbar (ideal
    wear levelling), as in the paper.
    """
    program = normalize_reductions(parse_program(SHARED_INPUT_GEMMS_SOURCE))
    host_model = HostCostModel()
    estimate = host_model.estimate_program(program, {"N": matrix_side})
    pair_time_s = estimate.time_s
    matrix_bytes = float(matrix_side * matrix_side)
    naive = MappingOutcome(
        name="Naive mapping",
        crossbar_bytes_written=2.0 * matrix_bytes,
        execution_time_s=pair_time_s,
    )
    smart = MappingOutcome(
        name='"Smart" mapping',
        crossbar_bytes_written=matrix_bytes,
        execution_time_s=pair_time_s,
    )
    return Figure5Data(
        endurance_points=tuple(endurance_points),
        naive=naive,
        smart=smart,
        crossbar_size_bytes=crossbar_size_bytes,
        mode="projected",
    )

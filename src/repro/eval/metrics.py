"""Metric helpers used across the evaluation."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty input or non-positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def improvement_factor(baseline: float, improved: float) -> float:
    """How many times better *improved* is than *baseline* (> 1 means better,
    i.e. lower energy / time / EDP)."""
    if baseline <= 0 or improved <= 0:
        raise ValueError("improvement factor requires positive quantities")
    return baseline / improved


def edp(energy_j: float, time_s: float) -> float:
    """Energy-delay product."""
    if energy_j < 0 or time_s < 0:
        raise ValueError("energy and time must be non-negative")
    return energy_j * time_s


def signed_log_improvement(factor: float) -> float:
    """The paper's Figure 6 plots improvements on a symmetric log-like axis:
    factors above 1 are reported as-is, factors below 1 are reported as the
    negative inverse (a 0.25x 'improvement' shows as -4x)."""
    if factor <= 0:
        raise ValueError("improvement factor must be positive")
    if factor >= 1.0:
        return factor
    return -1.0 / factor

"""Iteration domains of SCoP statements.

A domain is an ordered list of loop dimensions, outermost first.  Each
dimension carries its induction-variable name, affine lower and (exclusive)
upper bounds, and the step.  For the kernels the paper evaluates the domains
are rectangular (bounds depend only on parameters), but bounds referencing
outer loop variables are represented and evaluated correctly; only
cardinality computation requires numeric enumeration in that case.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence

from repro.poly.affine import AffineExpr


@dataclass(frozen=True)
class LoopDim:
    """One loop dimension of an iteration domain."""

    var: str
    lower: AffineExpr
    upper: AffineExpr  # exclusive
    step: int = 1

    def trip_count(self, bindings: Mapping[str, int]) -> int:
        """Number of iterations under a binding of params and outer vars."""
        lo = self.lower.evaluate(bindings)
        hi = self.upper.evaluate(bindings)
        if hi <= lo:
            return 0
        return (hi - lo + self.step - 1) // self.step

    def rename(self, old: str, new: str) -> "LoopDim":
        return LoopDim(
            var=new if self.var == old else self.var,
            lower=self.lower.rename_var(old, new),
            upper=self.upper.rename_var(old, new),
            step=self.step,
        )

    def __str__(self) -> str:
        return f"{self.lower} <= {self.var} < {self.upper} step {self.step}"


@dataclass(frozen=True)
class IterationDomain:
    """Ordered set of loop dimensions enclosing a statement."""

    dims: tuple[LoopDim, ...] = ()

    @property
    def depth(self) -> int:
        return len(self.dims)

    @property
    def var_names(self) -> tuple[str, ...]:
        return tuple(d.var for d in self.dims)

    def dim(self, var: str) -> LoopDim:
        for d in self.dims:
            if d.var == var:
                return d
        raise KeyError(f"domain has no dimension {var!r}")

    def has_dim(self, var: str) -> bool:
        return any(d.var == var for d in self.dims)

    def is_rectangular(self) -> bool:
        """True when no bound references an enclosing loop variable."""
        seen: set[str] = set()
        for d in self.dims:
            used = d.lower.used_vars() | d.upper.used_vars()
            if used & seen or used & {d.var}:
                if used - seen == set() and not (used & {d.var}):
                    pass
                return False if used else True
            seen.add(d.var)
        return True

    def cardinality(self, params: Mapping[str, int]) -> int:
        """Number of iteration points under a parameter binding.

        Rectangular domains multiply trip counts; non-rectangular domains are
        enumerated dimension by dimension.
        """
        if self._bounds_param_only():
            total = 1
            for d in self.dims:
                total *= d.trip_count(params)
            return total
        return sum(1 for _ in self.points(params))

    def _bounds_param_only(self) -> bool:
        return all(
            not d.lower.used_vars() and not d.upper.used_vars() for d in self.dims
        )

    def points(self, params: Mapping[str, int]) -> Iterator[tuple[int, ...]]:
        """Enumerate all iteration points (outermost dimension first)."""

        def recurse(index: int, bindings: dict[str, int]) -> Iterator[tuple[int, ...]]:
            if index == len(self.dims):
                yield tuple(bindings[d.var] for d in self.dims)
                return
            dim = self.dims[index]
            lo = dim.lower.evaluate(bindings)
            hi = dim.upper.evaluate(bindings)
            for value in range(lo, hi, dim.step):
                bindings[dim.var] = value
                yield from recurse(index + 1, bindings)
            bindings.pop(dim.var, None)

        yield from recurse(0, dict(params))

    def rename(self, old: str, new: str) -> "IterationDomain":
        return IterationDomain(tuple(d.rename(old, new) for d in self.dims))

    def project_onto(self, vars_subset: Sequence[str]) -> "IterationDomain":
        """Keep only the listed dimensions, preserving order."""
        keep = set(vars_subset)
        return IterationDomain(tuple(d for d in self.dims if d.var in keep))

    def __str__(self) -> str:
        return "{ " + " and ".join(str(d) for d in self.dims) + " }"

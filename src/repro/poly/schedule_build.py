"""Build the canonical schedule tree of a SCoP.

The canonical tree reflects the original program order: one single-dimension
band per source loop, sequence/filter nodes wherever a loop body (or the SCoP
itself) contains more than one statement or nest, and a leaf per innermost
statement position.
"""

from __future__ import annotations

from repro.ir.stmt import Assign, Block, Loop, Stmt
from repro.poly.schedule_tree import (
    BandNode,
    DomainNode,
    FilterNode,
    LeafNode,
    ScheduleNode,
    SequenceNode,
)
from repro.poly.scop import Scop


def build_schedule_tree(scop: Scop) -> DomainNode:
    """Construct the canonical schedule tree for *scop*."""
    if len(scop.nests) == 1:
        child = _build_loop(scop.nests[0], scop)
    else:
        filters = []
        for nest_index, nest in enumerate(scop.nests):
            names = {
                s.name for s in scop.statements if s.nest_index == nest_index
            }
            filters.append(FilterNode(names, _build_loop(nest, scop)))
        child = SequenceNode(filters)
    return DomainNode(scop, child)


def _statement_names_in(stmt: Stmt, scop: Scop) -> set[str]:
    names: set[str] = set()
    for node in stmt.walk():
        if isinstance(node, Assign) and scop.has_statement(node.name):
            names.add(node.name)
    return names


def _build_loop(loop: Loop, scop: Scop) -> BandNode:
    return BandNode([loop.var], child=_build_body(loop.body, scop))


def _build_body(block: Block, scop: Scop) -> ScheduleNode:
    stmts = block.stmts
    if len(stmts) == 1:
        return _build_stmt(stmts[0], scop)
    filters = []
    for stmt in stmts:
        names = _statement_names_in(stmt, scop)
        filters.append(FilterNode(names, _build_stmt(stmt, scop)))
    return SequenceNode(filters)


def _build_stmt(stmt: Stmt, scop: Scop) -> ScheduleNode:
    if isinstance(stmt, Loop):
        return _build_loop(stmt, scop)
    if isinstance(stmt, Assign):
        return LeafNode([stmt.name])
    if isinstance(stmt, Block):
        return _build_body(stmt, scop)
    raise TypeError(f"unexpected statement {stmt!r} inside a SCoP")

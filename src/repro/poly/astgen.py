"""Regenerate loop-nest IR from a (transformed) schedule tree.

This is the reproduction's counterpart of ISL's AST generation used by Polly
to lower an optimized schedule back to LLVM-IR.  The generator walks the
schedule tree and emits:

* one ``for`` loop per band dimension, with bounds taken from the iteration
  domain of the statements active underneath (tile bands get the tile size as
  step; point bands get ``min`` upper bounds against the tile boundary);
* sequences/filters as ordered statement lists;
* extension nodes as literal call statements (the CIM runtime calls inserted
  by device mapping);
* leaves as the (possibly rewritten) assignment statements of the SCoP.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.expr import Expr, IntConst, Min, VarRef
from repro.ir.stmt import Assign, Block, CallStmt, Loop, Stmt
from repro.poly.domain import LoopDim
from repro.poly.schedule_tree import (
    BandNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    LeafNode,
    MarkNode,
    ScheduleNode,
    SequenceNode,
)
from repro.poly.scop import Scop


class AstGenError(RuntimeError):
    """Raised when a schedule tree cannot be lowered back to IR."""


def generate_ir(tree: DomainNode) -> list[Stmt]:
    """Lower a schedule tree to a list of top-level IR statements."""
    if not isinstance(tree, DomainNode):
        raise AstGenError("schedule tree root must be a DomainNode")
    scop = tree.scop
    active = set(scop.statement_names)
    if tree.child is None:
        return []
    generator = _Generator(scop)
    return generator.emit(tree.child, active)


class _Generator:
    def __init__(self, scop: Scop):
        self.scop = scop

    # ------------------------------------------------------------------
    def emit(self, node: ScheduleNode, active: set[str]) -> list[Stmt]:
        if isinstance(node, BandNode):
            return self._emit_band(node, active)
        if isinstance(node, SequenceNode):
            stmts: list[Stmt] = []
            for child in node.children():
                assert isinstance(child, FilterNode)
                stmts.extend(self.emit(child, active & child.statements))
            return stmts
        if isinstance(node, FilterNode):
            if node.child is None:
                return []
            return self.emit(node.child, active & node.statements)
        if isinstance(node, MarkNode):
            if node.child is None:
                return []
            return self.emit(node.child, active)
        if isinstance(node, ExtensionNode):
            stmts = [CallStmt(c.callee, list(c.args)) for c in node.calls]
            if node.child is not None:
                stmts.extend(self.emit(node.child, active))
            return stmts
        if isinstance(node, LeafNode):
            return self._emit_leaf(node, active)
        raise AstGenError(f"cannot generate code for node {node!r}")

    # ------------------------------------------------------------------
    def _emit_leaf(self, node: LeafNode, active: set[str]) -> list[Stmt]:
        names = [n for n in (node.statements or sorted(active)) if n in active]
        stmts: list[Stmt] = []
        for name in names:
            stmts.append(self.scop.statement(name).assign)
        return stmts

    def _emit_band(self, band: BandNode, active: set[str]) -> list[Stmt]:
        if not active:
            return []
        inner: list[Stmt]
        if band.child is None:
            inner = []
        else:
            inner = self.emit(band.child, active)
        # Wrap inner statements with loops, innermost dimension first.
        for var in reversed(band.dims):
            dim = self._find_dim(var, active, band)
            if var in band.tile_steps:
                # Tile loop: full original range with the tile size as step.
                loop = Loop(
                    var=var,
                    lower=dim.lower.to_ir(),
                    upper=dim.upper.to_ir(),
                    body=Block(inner),
                    step=band.tile_steps[var],
                )
            elif var in band.tile_origin:
                tile_var, tile_size = band.tile_origin[var]
                upper: Expr = Min(
                    VarRef(tile_var) + IntConst(tile_size), dim.upper.to_ir()
                )
                loop = Loop(
                    var=var,
                    lower=VarRef(tile_var),
                    upper=upper,
                    body=Block(inner),
                    step=dim.step,
                )
            else:
                loop = Loop(
                    var=var,
                    lower=dim.lower.to_ir(),
                    upper=dim.upper.to_ir(),
                    body=Block(inner),
                    step=dim.step,
                )
            inner = [loop]
        return inner

    def _find_dim(self, var: str, active: set[str], band: BandNode) -> LoopDim:
        """Locate the domain dimension describing schedule dimension *var*.

        Tile-loop variables are synthetic (they do not appear in statement
        domains); their bounds are those of the point variable they tile,
        which the tiling transformation records in ``tile_steps`` alongside a
        domain alias stored by name convention ``<point_var>``.
        """
        lookup_var = var
        # A tile loop named "<v>_t" ranges over the domain of "<v>".
        if var in band.tile_steps and not self._any_domain_has(var, active):
            if var.endswith("_t"):
                lookup_var = var[: -len("_t")]
        for name in sorted(active):
            stmt = self.scop.statement(name)
            if stmt.domain.has_dim(lookup_var):
                return stmt.domain.dim(lookup_var)
        raise AstGenError(
            f"no active statement provides bounds for schedule dimension {var!r}"
        )

    def _any_domain_has(self, var: str, active: set[str]) -> bool:
        return any(
            self.scop.statement(name).domain.has_dim(var) for name in sorted(active)
        )

"""SCoP (static control part) detection.

A SCoP is a maximal program region in which all loop bounds and array
subscripts are affine functions of enclosing loop variables and parameters.
Polly detects SCoPs on LLVM-IR; here we detect them on the loop-nest IR.

Detection rules (matching what the paper's kernels need):

* only counted ``for`` loops with affine lower/upper bounds and constant
  step belong to a SCoP;
* every array subscript inside must be affine;
* assignments to scalars are allowed only if the scalar is a local
  temporary (we conservatively reject them — PolyBench kernels in the
  evaluated set do not need scalar expansion);
* consecutive affine top-level loop nests are grouped into one SCoP, so the
  kernel-fusion transformation can see adjacent kernels (Listing 2 of the
  paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.expr import ArrayRef, VarRef
from repro.ir.program import Program
from repro.ir.stmt import Assign, Block, CallStmt, IfStmt, Loop, Stmt
from repro.poly.access import AccessKind, AccessRelation, accesses_of_statement
from repro.poly.affine import affine_from_expr
from repro.poly.domain import IterationDomain, LoopDim


@dataclass
class ScopStatement:
    """One statement instance set inside a SCoP."""

    name: str
    assign: Assign
    domain: IterationDomain
    accesses: list[AccessRelation]
    nest_index: int  # which top-level loop nest of the SCoP this belongs to

    @property
    def loop_vars(self) -> tuple[str, ...]:
        return self.domain.var_names

    def reads(self) -> list[AccessRelation]:
        return [a for a in self.accesses if a.kind is AccessKind.READ]

    def writes(self) -> list[AccessRelation]:
        return [a for a in self.accesses if a.kind is AccessKind.WRITE]

    def read_arrays(self) -> set[str]:
        return {a.array for a in self.reads()}

    def write_arrays(self) -> set[str]:
        return {a.array for a in self.writes()}

    def __str__(self) -> str:
        return f"{self.name}: {self.assign} :: {self.domain}"


@dataclass
class Scop:
    """A detected static control part."""

    name: str
    program: Program
    statements: list[ScopStatement] = field(default_factory=list)
    # Top-level loop nests covered by this SCoP, in program order.
    nests: list[Loop] = field(default_factory=list)
    # Position of the first covered top-level statement in the program body.
    body_start: int = 0

    def statement(self, name: str) -> ScopStatement:
        for stmt in self.statements:
            if stmt.name == name:
                return stmt
        raise KeyError(f"SCoP {self.name!r} has no statement {name!r}")

    def has_statement(self, name: str) -> bool:
        return any(s.name == name for s in self.statements)

    @property
    def statement_names(self) -> list[str]:
        return [s.name for s in self.statements]

    @property
    def param_names(self) -> set[str]:
        return {p.name for p in self.program.params}

    def arrays_written(self) -> set[str]:
        result: set[str] = set()
        for stmt in self.statements:
            result |= stmt.write_arrays()
        return result

    def arrays_read(self) -> set[str]:
        result: set[str] = set()
        for stmt in self.statements:
            result |= stmt.read_arrays()
        return result

    def __str__(self) -> str:
        lines = [f"SCoP {self.name} ({len(self.nests)} nest(s)):"]
        lines.extend(f"  {stmt}" for stmt in self.statements)
        return "\n".join(lines)


def detect_scops(program: Program) -> list[Scop]:
    """Find all SCoPs in *program*.

    Returns one :class:`Scop` per maximal run of consecutive affine top-level
    loop nests.  Non-affine nests and other top-level statements break runs.
    """
    param_names = {p.name for p in program.params}
    scops: list[Scop] = []
    current: Optional[Scop] = None

    for position, stmt in enumerate(program.body.stmts):
        affine_nest = (
            isinstance(stmt, Loop)
            and _collect_nest(stmt, program, param_names) is not None
        )
        if affine_nest:
            assert isinstance(stmt, Loop)
            if current is None:
                current = Scop(
                    name=f"scop_{len(scops)}",
                    program=program,
                    body_start=position,
                )
            nest_index = len(current.nests)
            current.nests.append(stmt)
            collected = _collect_nest(stmt, program, param_names)
            assert collected is not None
            for assign, domain in collected:
                accesses = accesses_of_statement(
                    assign, domain.var_names, tuple(param_names)
                )
                assert accesses is not None
                current.statements.append(
                    ScopStatement(
                        name=assign.name,
                        assign=assign,
                        domain=domain,
                        accesses=accesses,
                        nest_index=nest_index,
                    )
                )
        else:
            if current is not None and current.statements:
                scops.append(current)
            current = None
    if current is not None and current.statements:
        scops.append(current)
    return scops


def _collect_nest(
    loop: Loop,
    program: Program,
    param_names: set[str],
) -> Optional[list[tuple[Assign, IterationDomain]]]:
    """Collect (statement, domain) pairs of an affine loop nest.

    Returns ``None`` when anything inside the nest is not static control.
    """
    results: list[tuple[Assign, IterationDomain]] = []

    def visit(stmt: Stmt, dims: tuple[LoopDim, ...], loop_vars: tuple[str, ...]) -> bool:
        if isinstance(stmt, Loop):
            outer_vars = set(loop_vars) | param_names
            lower = affine_from_expr(stmt.lower, set(loop_vars), param_names)
            upper = affine_from_expr(stmt.upper, set(loop_vars), param_names)
            if lower is None or upper is None:
                return False
            if stmt.var in loop_vars or stmt.var in param_names:
                return False  # shadowing breaks static control
            dim = LoopDim(var=stmt.var, lower=lower, upper=upper, step=stmt.step)
            return visit(stmt.body, dims + (dim,), loop_vars + (stmt.var,))
        if isinstance(stmt, Block):
            return all(visit(child, dims, loop_vars) for child in stmt.stmts)
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, VarRef):
                return False  # scalar writes not supported in SCoPs
            accesses = accesses_of_statement(stmt, loop_vars, tuple(param_names))
            if accesses is None:
                return False
            results.append((stmt, IterationDomain(dims)))
            return True
        if isinstance(stmt, (CallStmt, IfStmt)):
            return False
        return False

    if not visit(loop, (), ()):
        return None
    return results

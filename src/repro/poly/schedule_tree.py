"""Schedule trees: the execution-strategy representation Loop Tactics match on.

The node kinds mirror ISL schedule trees as used by Polly and the paper's
Loop Tactics passes:

* :class:`DomainNode` — the root; owns the SCoP whose statements the tree
  schedules.
* :class:`BandNode` — one or more schedule dimensions (loops).  A band built
  from the input program has one dimension per source loop; transformations
  may split it (tiling) or permute it (interchange).
* :class:`SequenceNode` — ordered execution of its filter children.
* :class:`FilterNode` — restricts the subtree to a subset of statements.
* :class:`MarkNode` — an annotation attached by a matcher or transformation
  (e.g. ``"gemm"`` with the match capture as payload).
* :class:`ExtensionNode` — statements injected by a transformation that are
  not part of the original domain; used for CIM runtime calls after device
  mapping.
* :class:`LeafNode` — the point where the active statements execute.

Trees are mutable (children lists can be edited in place) but every node
exposes ``copy()`` for non-destructive transformation pipelines.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.ir.stmt import CallStmt


class ScheduleNode:
    """Base class of all schedule-tree nodes."""

    parent: Optional["ScheduleNode"]

    def __init__(self) -> None:
        self.parent = None

    # -- structure ------------------------------------------------------
    def children(self) -> Sequence["ScheduleNode"]:
        return ()

    def set_child(self, index: int, node: "ScheduleNode") -> None:
        raise NotImplementedError(f"{type(self).__name__} has no editable children")

    def walk(self) -> Iterator["ScheduleNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children():
            yield from child.walk()

    def find(self, predicate: Callable[["ScheduleNode"], bool]) -> list["ScheduleNode"]:
        return [node for node in self.walk() if predicate(node)]

    def copy(self) -> "ScheduleNode":
        """Deep copy of this subtree (parent links are rebuilt)."""
        cloned = _copy.deepcopy(self)
        _fix_parents(cloned, None)
        return cloned

    # -- convenience ----------------------------------------------------
    def ancestors(self) -> Iterator["ScheduleNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "ScheduleNode":
        node: ScheduleNode = self
        while node.parent is not None:
            node = node.parent
        return node

    def active_statements(self) -> set[str]:
        """Statement names active at this node (domain minus filters above)."""
        root = self.root()
        if not isinstance(root, DomainNode):
            return set()
        active = set(root.scop.statement_names)
        for ancestor in list(self.ancestors()) + [self]:
            if isinstance(ancestor, FilterNode):
                active &= ancestor.statements
        return active

    def band_ancestor_dims(self) -> list[str]:
        """Schedule dimensions introduced by bands above this node, outer first."""
        dims: list[str] = []
        for ancestor in reversed(list(self.ancestors())):
            if isinstance(ancestor, BandNode):
                dims.extend(ancestor.dims)
        return dims


def _fix_parents(node: ScheduleNode, parent: Optional[ScheduleNode]) -> None:
    node.parent = parent
    for child in node.children():
        _fix_parents(child, node)


def _adopt(parent: ScheduleNode, child: Optional[ScheduleNode]) -> None:
    if child is not None:
        child.parent = parent


class DomainNode(ScheduleNode):
    """Root node owning the SCoP."""

    def __init__(self, scop, child: Optional[ScheduleNode] = None):
        super().__init__()
        self.scop = scop
        self.child = child
        _adopt(self, child)

    def children(self) -> Sequence[ScheduleNode]:
        return (self.child,) if self.child is not None else ()

    def set_child(self, index: int, node: ScheduleNode) -> None:
        if index != 0:
            raise IndexError("DomainNode has a single child")
        self.child = node
        _adopt(self, node)

    def __repr__(self) -> str:
        return f"DomainNode({self.scop.name})"


class BandNode(ScheduleNode):
    """A (possibly multi-dimensional) schedule band.

    ``dims`` are loop-variable names, outermost first.  ``permutable`` is set
    by dependence analysis and allows interchange/tiling.  Tiling metadata
    (``tile_origin``) records, for a point band created by the tiling
    transformation, the name of the corresponding tile-loop variable so the
    AST generator can emit ``min`` upper bounds.
    """

    def __init__(
        self,
        dims: Sequence[str],
        child: Optional[ScheduleNode] = None,
        permutable: bool = False,
        tile_steps: Optional[dict[str, int]] = None,
        tile_origin: Optional[dict[str, str]] = None,
    ):
        super().__init__()
        self.dims = list(dims)
        self.child = child
        self.permutable = permutable
        # For a *tile* band: loop steps (tile sizes) per dimension.
        self.tile_steps = dict(tile_steps or {})
        # For a *point* band: maps point-loop var -> tile-loop var.
        self.tile_origin = dict(tile_origin or {})
        _adopt(self, child)

    def children(self) -> Sequence[ScheduleNode]:
        return (self.child,) if self.child is not None else ()

    def set_child(self, index: int, node: ScheduleNode) -> None:
        if index != 0:
            raise IndexError("BandNode has a single child")
        self.child = node
        _adopt(self, node)

    @property
    def n_dims(self) -> int:
        return len(self.dims)

    def __repr__(self) -> str:
        flags = []
        if self.permutable:
            flags.append("permutable")
        if self.tile_steps:
            flags.append(f"tile_steps={self.tile_steps}")
        if self.tile_origin:
            flags.append(f"point_of={self.tile_origin}")
        suffix = (" " + " ".join(flags)) if flags else ""
        return f"BandNode({self.dims}{suffix})"


class SequenceNode(ScheduleNode):
    """Ordered sequence; children must be filter nodes."""

    def __init__(self, children: Sequence["FilterNode"] = ()):
        super().__init__()
        self._children: list[FilterNode] = list(children)
        for child in self._children:
            _adopt(self, child)

    def children(self) -> Sequence[ScheduleNode]:
        return tuple(self._children)

    def set_child(self, index: int, node: ScheduleNode) -> None:
        if not isinstance(node, FilterNode):
            raise TypeError("SequenceNode children must be FilterNodes")
        self._children[index] = node
        _adopt(self, node)

    def insert_child(self, index: int, node: "FilterNode") -> None:
        self._children.insert(index, node)
        _adopt(self, node)

    def remove_child(self, index: int) -> "FilterNode":
        node = self._children.pop(index)
        node.parent = None
        return node

    def __repr__(self) -> str:
        return f"SequenceNode({len(self._children)} children)"


class FilterNode(ScheduleNode):
    """Restricts execution to a subset of statements."""

    def __init__(self, statements: set[str] | Sequence[str], child: Optional[ScheduleNode] = None):
        super().__init__()
        self.statements = set(statements)
        self.child = child
        _adopt(self, child)

    def children(self) -> Sequence[ScheduleNode]:
        return (self.child,) if self.child is not None else ()

    def set_child(self, index: int, node: ScheduleNode) -> None:
        if index != 0:
            raise IndexError("FilterNode has a single child")
        self.child = node
        _adopt(self, node)

    def __repr__(self) -> str:
        return f"FilterNode({sorted(self.statements)})"


class MarkNode(ScheduleNode):
    """Annotation node; ``payload`` typically holds a pattern match capture."""

    def __init__(self, mark: str, payload: object = None, child: Optional[ScheduleNode] = None):
        super().__init__()
        self.mark = mark
        self.payload = payload
        self.child = child
        _adopt(self, child)

    def children(self) -> Sequence[ScheduleNode]:
        return (self.child,) if self.child is not None else ()

    def set_child(self, index: int, node: ScheduleNode) -> None:
        if index != 0:
            raise IndexError("MarkNode has a single child")
        self.child = node
        _adopt(self, node)

    def __repr__(self) -> str:
        return f"MarkNode({self.mark!r})"


class ExtensionNode(ScheduleNode):
    """Injects statements that are not part of the original SCoP domain.

    Device mapping uses extension nodes to splice CIM runtime calls into the
    schedule; the AST generator emits the calls verbatim, in order.
    """

    def __init__(self, calls: Sequence[CallStmt], child: Optional[ScheduleNode] = None):
        super().__init__()
        self.calls = list(calls)
        self.child = child
        _adopt(self, child)

    def children(self) -> Sequence[ScheduleNode]:
        return (self.child,) if self.child is not None else ()

    def set_child(self, index: int, node: ScheduleNode) -> None:
        if index != 0:
            raise IndexError("ExtensionNode has a single child")
        self.child = node
        _adopt(self, node)

    def __repr__(self) -> str:
        return f"ExtensionNode({[c.callee for c in self.calls]})"


class LeafNode(ScheduleNode):
    """Execution point of the statements active at this position."""

    def __init__(self, statements: Optional[Sequence[str]] = None):
        super().__init__()
        # Explicit ordering of statements sharing the same innermost point
        # (textual order within the innermost loop body).
        self.statements = list(statements or [])

    def __repr__(self) -> str:
        return f"LeafNode({self.statements})"


def replace_node(old: ScheduleNode, new: ScheduleNode) -> None:
    """Replace *old* by *new* in the tree (old must have a parent)."""
    parent = old.parent
    if parent is None:
        raise ValueError("cannot replace the root node")
    for index, child in enumerate(parent.children()):
        if child is old:
            parent.set_child(index, new)
            return
    raise ValueError("node is not a child of its parent (corrupted tree)")


def tree_to_string(node: ScheduleNode, depth: int = 0) -> str:
    """Readable indented rendering of a schedule tree (for tests and docs)."""
    pad = "  " * depth
    lines = [pad + repr(node)]
    for child in node.children():
        lines.append(tree_to_string(child, depth + 1))
    return "\n".join(lines)


def validate_tree(root: ScheduleNode) -> list[str]:
    """Structural invariant checks; returns a list of problems (empty = OK)."""
    problems: list[str] = []
    if not isinstance(root, DomainNode):
        problems.append("root node must be a DomainNode")
    for node in root.walk():
        for child in node.children():
            if child.parent is not node:
                problems.append(f"broken parent link at {child!r}")
        if isinstance(node, SequenceNode):
            for child in node.children():
                if not isinstance(child, FilterNode):
                    problems.append(
                        f"SequenceNode child {child!r} is not a FilterNode"
                    )
        if isinstance(node, BandNode) and not node.dims:
            problems.append("BandNode with no dimensions")
        if isinstance(node, FilterNode) and not node.statements:
            problems.append("FilterNode with empty statement set")
    # Every domain statement must be reachable through exactly one leaf or be
    # deliberately dropped by a device-mapping extension.
    if isinstance(root, DomainNode):
        reachable: dict[str, int] = {}
        for node in root.walk():
            if isinstance(node, LeafNode):
                for name in node.active_statements() & set(
                    node.statements or node.active_statements()
                ):
                    reachable[name] = reachable.get(name, 0) + 1
        for name, count in reachable.items():
            if count > 1:
                problems.append(f"statement {name!r} scheduled {count} times")
    return problems

"""Memory dependence analysis over SCoP statements.

Two levels of precision are provided, matching what the TDO-CIM flow needs:

* **Array-level** independence (:func:`kernels_independent`) — the check the
  paper's kernel-fusion transformation uses (Section III-B): kernel *Y* may
  be fused with a preceding kernel *X* only if *Y* neither reads nor writes
  any output of *X* and does not write any input of *X*.
* **Access-level** dependences with distance vectors
  (:func:`compute_dependences`) — used to mark bands permutable (legal to
  tile/interchange) and exercised heavily by the unit and property tests.
  The test implemented here handles the uniform-access case (both accesses
  have identical loop-variable coefficient structure, so the dependence
  distance is a constant vector) and falls back to a conservative "unknown
  distance" dependence otherwise.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.poly.access import AccessKind, AccessRelation
from repro.poly.scop import Scop, ScopStatement


class DependenceKind(enum.Enum):
    FLOW = "flow"      # write -> read  (true dependence)
    ANTI = "anti"      # read  -> write
    OUTPUT = "output"  # write -> write

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Dependence:
    """A memory dependence between two statement instances."""

    source: str
    target: str
    array: str
    kind: DependenceKind
    # Constant distance per *common* loop dimension (outermost first); None
    # when the distance is unknown (non-uniform accesses).
    distance: Optional[tuple[int, ...]] = None
    common_loops: tuple[str, ...] = ()

    @property
    def is_loop_independent(self) -> bool:
        return self.distance is not None and all(d == 0 for d in self.distance)

    def carried_by(self) -> Optional[str]:
        """Name of the outermost loop carrying this dependence, if known."""
        if self.distance is None:
            return None
        for var, dist in zip(self.common_loops, self.distance):
            if dist != 0:
                return var
        return None

    def __str__(self) -> str:
        dist = "unknown" if self.distance is None else str(list(self.distance))
        return f"{self.kind} {self.source}->{self.target} on {self.array} dist={dist}"


def _classify(src_kind: AccessKind, dst_kind: AccessKind) -> Optional[DependenceKind]:
    if src_kind is AccessKind.WRITE and dst_kind is AccessKind.READ:
        return DependenceKind.FLOW
    if src_kind is AccessKind.READ and dst_kind is AccessKind.WRITE:
        return DependenceKind.ANTI
    if src_kind is AccessKind.WRITE and dst_kind is AccessKind.WRITE:
        return DependenceKind.OUTPUT
    return None  # read-read is not a dependence


def _uniform_distance(
    src: AccessRelation,
    dst: AccessRelation,
    common_loops: tuple[str, ...],
) -> Optional[tuple[int, ...]]:
    """Distance vector for uniform accesses, ``None`` if not uniform.

    Accesses are uniform when, for every subscript dimension, the loop
    variable coefficients agree and only the constant/parameter parts differ
    by a constant.  The per-subscript offset then constrains the common-loop
    distance; subscripts that do not involve common loops must be equal for a
    dependence to exist at all (we conservatively return the zero distance
    contribution in that case).
    """
    if src.rank != dst.rank:
        return None
    distance = {var: 0 for var in common_loops}
    constrained: set[str] = set()
    for s_idx, d_idx in zip(src.indices, dst.indices):
        s_coeffs, d_coeffs = s_idx.vars, d_idx.vars
        if s_idx.params != d_idx.params:
            return None
        # All variables mentioned must be common loops with equal coefficients.
        used = set(s_coeffs) | set(d_coeffs)
        if not used <= set(common_loops):
            return None
        for var in used:
            if s_coeffs.get(var, 0) != d_coeffs.get(var, 0):
                return None
        offset = s_idx.constant - d_idx.constant
        # Solve coeff * delta = offset for single-variable subscripts; for
        # multi-variable subscripts only the all-zero delta is derived (the
        # conservative uniform solution).
        vars_used = [v for v in common_loops if s_coeffs.get(v, 0) != 0]
        if len(vars_used) == 1:
            coeff = s_coeffs[vars_used[0]]
            if offset % coeff != 0:
                return None  # no integer solution: no dependence on this dim
            delta = offset // coeff
            if vars_used[0] in constrained and distance[vars_used[0]] != delta:
                return None
            distance[vars_used[0]] = delta
            constrained.add(vars_used[0])
        elif not vars_used:
            if offset != 0:
                # Subscripts are distinct constants: accesses never overlap.
                return None
    return tuple(distance[var] for var in common_loops)


def compute_dependences(scop: Scop) -> list[Dependence]:
    """All pairwise memory dependences between statements of *scop*.

    Statement order follows textual (program) order; only dependences from an
    earlier or equal statement to a later or equal statement are reported
    (self-dependences capture reduction updates such as ``C[i][j] += ...``).
    """
    dependences: list[Dependence] = []
    statements = scop.statements
    for i, src_stmt in enumerate(statements):
        for dst_stmt in statements[i:]:
            dependences.extend(_statement_pair(src_stmt, dst_stmt))
    return dependences


def _lex_negative(distance: tuple[int, ...]) -> bool:
    """True when the distance vector is lexicographically negative."""
    for value in distance:
        if value < 0:
            return True
        if value > 0:
            return False
    return False


_FLIPPED_KIND = {
    DependenceKind.FLOW: DependenceKind.ANTI,
    DependenceKind.ANTI: DependenceKind.FLOW,
    DependenceKind.OUTPUT: DependenceKind.OUTPUT,
}


def _statement_pair(
    src_stmt: ScopStatement, dst_stmt: ScopStatement
) -> list[Dependence]:
    result: list[Dependence] = []
    common_loops = tuple(
        var for var in src_stmt.loop_vars if var in dst_stmt.loop_vars
    )
    seen: set[tuple[str, str, str, DependenceKind]] = set()
    for src_acc, dst_acc in itertools.product(src_stmt.accesses, dst_stmt.accesses):
        if src_acc.array != dst_acc.array:
            continue
        kind = _classify(src_acc.kind, dst_acc.kind)
        if kind is None:
            continue
        distance = _uniform_distance(src_acc, dst_acc, common_loops)
        source_name, target_name = src_stmt.name, dst_stmt.name
        if distance is not None and _lex_negative(distance):
            # A lexicographically negative distance means the dependence
            # actually flows from the (textually/iteration-wise) later access
            # back to the earlier one: normalise by flipping direction.
            if source_name == target_name:
                # The mirrored self-dependence is already reported with the
                # positive distance; drop the duplicate.
                continue
            source_name, target_name = target_name, source_name
            kind = _FLIPPED_KIND[kind]
            distance = tuple(-d for d in distance)
        key = (source_name, target_name, src_acc.array, kind)
        if key in seen and distance is not None and all(d == 0 for d in distance):
            continue
        seen.add(key)
        result.append(
            Dependence(
                source=source_name,
                target=target_name,
                array=src_acc.array,
                kind=kind,
                distance=distance,
                common_loops=common_loops,
            )
        )
    return result


def kernels_independent(x: ScopStatement, y: ScopStatement) -> bool:
    """Paper's fusion-legality check (Section III-B).

    Kernel *Y* (textually after *X*) is independent of *X* when:

    * *Y* does not read from any output of *X*;
    * *Y* does not write to any output of *X*;
    * *Y* does not write to any input of *X*.
    """
    x_outputs = x.write_arrays()
    x_inputs = x.read_arrays()
    y_reads = y.read_arrays()
    y_writes = y.write_arrays()
    if y_reads & x_outputs:
        return False
    if y_writes & x_outputs:
        return False
    if y_writes & x_inputs:
        return False
    return True


def nest_permutable(scop: Scop, stmt_name: str, loop_vars: tuple[str, ...]) -> bool:
    """True when the loops in *loop_vars* can be freely interchanged/tiled
    for statement *stmt_name*.

    A band is permutable when every dependence carried by one of its loops
    has a non-negative distance in *all* of its loops (the classic
    full-permutability condition).  Unknown distances are conservative.
    """
    for dep in compute_dependences(scop):
        if dep.source != stmt_name or dep.target != stmt_name:
            continue
        if dep.distance is None:
            return False
        for var, dist in zip(dep.common_loops, dep.distance):
            if var in loop_vars and dist < 0:
                return False
    return True

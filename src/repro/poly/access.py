"""Access relations: which array elements a statement reads and writes.

Each access maps the statement's iteration vector to an array subscript via
one affine expression per array dimension.  Access relations are the raw
material for dependence analysis and for the Loop Tactics access matchers
(a GEMM is recognised by the *shape* of its access relations: the write
``C[i][j]`` is indexed by the two outer loop variables, the reads
``A[i][k]``/``B[k][j]`` each share exactly one variable with the write, and
the reduction variable appears in both reads but not the write).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ir.expr import ArrayRef
from repro.ir.stmt import Assign
from repro.poly.affine import AffineExpr, affine_from_expr


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AccessRelation:
    """One affine array access of a statement."""

    array: str
    kind: AccessKind
    indices: tuple[AffineExpr, ...]
    stmt_name: str = ""

    @property
    def rank(self) -> int:
        return len(self.indices)

    def used_vars(self) -> set[str]:
        result: set[str] = set()
        for idx in self.indices:
            result |= idx.used_vars()
        return result

    def index_vars(self) -> tuple[frozenset[str], ...]:
        """Loop variables used by each subscript dimension, in order."""
        return tuple(frozenset(idx.used_vars()) for idx in self.indices)

    def is_simple(self) -> bool:
        """True when every subscript is a single loop variable (coefficient 1,
        no constant) — the form the paper's GEMM/GEMV kernels use."""
        for idx in self.indices:
            coeffs = idx.vars
            if len(coeffs) != 1 or idx.constant != 0 or idx.params:
                return False
            if next(iter(coeffs.values())) != 1:
                return False
        return True

    def single_vars(self) -> Optional[tuple[str, ...]]:
        """If :meth:`is_simple`, the subscript variable per dimension."""
        if not self.is_simple():
            return None
        return tuple(next(iter(idx.vars)) for idx in self.indices)

    def rename_var(self, old: str, new: str) -> "AccessRelation":
        return AccessRelation(
            array=self.array,
            kind=self.kind,
            indices=tuple(idx.rename_var(old, new) for idx in self.indices),
            stmt_name=self.stmt_name,
        )

    def __str__(self) -> str:
        subs = "".join(f"[{idx}]" for idx in self.indices)
        return f"{self.kind}:{self.array}{subs}"


def accesses_of_statement(
    stmt: Assign,
    loop_vars: Sequence[str],
    param_names: Sequence[str],
) -> Optional[list[AccessRelation]]:
    """Extract affine access relations from an assignment.

    Returns ``None`` if any access is non-affine (the statement is then not
    part of a SCoP).  Reduction statements (``+=``) produce both a read and a
    write access for the target, exactly as LLVM would after load/store
    lowering.
    """
    loop_var_set = set(loop_vars)
    param_set = set(param_names)
    relations: list[AccessRelation] = []

    def convert(ref: ArrayRef, kind: AccessKind) -> bool:
        indices: list[AffineExpr] = []
        for idx_expr in ref.indices:
            affine = affine_from_expr(idx_expr, loop_var_set, param_set)
            if affine is None:
                return False
            indices.append(affine)
        relations.append(
            AccessRelation(
                array=ref.name,
                kind=kind,
                indices=tuple(indices),
                stmt_name=stmt.name,
            )
        )
        return True

    for ref in stmt.writes():
        if not convert(ref, AccessKind.WRITE):
            return None
    for ref in stmt.reads():
        if not convert(ref, AccessKind.READ):
            return None
    return relations

"""Affine expressions: linear combinations of loop variables and parameters.

An affine expression is ``sum_i c_i * v_i + sum_j d_j * p_j + k`` where the
``v_i`` are loop induction variables, the ``p_j`` are program parameters and
``k`` is an integer constant.  The polyhedral layer analyses IR index
expressions and loop bounds into this normal form; anything that does not fit
(products of variables, data-dependent indices) makes the enclosing region
non-affine and therefore not a SCoP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Expr,
    FloatConst,
    IntConst,
    Max,
    Min,
    ParamRef,
    UnaryOp,
    VarRef,
)


@dataclass(frozen=True)
class AffineExpr:
    """Normal form of an affine expression.

    ``var_coeffs`` maps loop-variable names to integer coefficients,
    ``param_coeffs`` maps parameter names to integer coefficients, and
    ``constant`` is the additive constant.  Zero coefficients are dropped so
    equality means structural equality.
    """

    var_coeffs: tuple[tuple[str, int], ...] = ()
    param_coeffs: tuple[tuple[str, int], ...] = ()
    constant: int = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_parts(
        var_coeffs: Mapping[str, int] | None = None,
        param_coeffs: Mapping[str, int] | None = None,
        constant: int = 0,
    ) -> "AffineExpr":
        vars_clean = tuple(
            sorted((v, int(c)) for v, c in (var_coeffs or {}).items() if c != 0)
        )
        params_clean = tuple(
            sorted((p, int(c)) for p, c in (param_coeffs or {}).items() if c != 0)
        )
        return AffineExpr(vars_clean, params_clean, int(constant))

    @staticmethod
    def constant_expr(value: int) -> "AffineExpr":
        return AffineExpr.from_parts(constant=value)

    @staticmethod
    def var(name: str, coeff: int = 1) -> "AffineExpr":
        return AffineExpr.from_parts(var_coeffs={name: coeff})

    @staticmethod
    def param(name: str, coeff: int = 1) -> "AffineExpr":
        return AffineExpr.from_parts(param_coeffs={name: coeff})

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def vars(self) -> dict[str, int]:
        return dict(self.var_coeffs)

    @property
    def params(self) -> dict[str, int]:
        return dict(self.param_coeffs)

    def coeff(self, var: str) -> int:
        """Coefficient of loop variable *var* (0 if absent)."""
        return self.vars.get(var, 0)

    def param_coeff(self, name: str) -> int:
        return self.params.get(name, 0)

    @property
    def is_constant(self) -> bool:
        return not self.var_coeffs and not self.param_coeffs

    @property
    def is_param_only(self) -> bool:
        """True when the expression has no loop-variable terms."""
        return not self.var_coeffs

    def used_vars(self) -> set[str]:
        return {v for v, _ in self.var_coeffs}

    def used_params(self) -> set[str]:
        return {p for p, _ in self.param_coeffs}

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "AffineExpr | int") -> "AffineExpr":
        other = _as_affine(other)
        vars_sum = self.vars
        for v, c in other.vars.items():
            vars_sum[v] = vars_sum.get(v, 0) + c
        params_sum = self.params
        for p, c in other.params.items():
            params_sum[p] = params_sum.get(p, 0) + c
        return AffineExpr.from_parts(vars_sum, params_sum, self.constant + other.constant)

    def __sub__(self, other: "AffineExpr | int") -> "AffineExpr":
        return self + (_as_affine(other) * -1)

    def __mul__(self, scalar: int) -> "AffineExpr":
        if not isinstance(scalar, int):
            raise TypeError("affine expressions can only be scaled by integers")
        return AffineExpr.from_parts(
            {v: c * scalar for v, c in self.vars.items()},
            {p: c * scalar for p, c in self.params.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def substitute_var(self, var: str, replacement: "AffineExpr") -> "AffineExpr":
        """Replace loop variable *var* by an affine expression."""
        coeff = self.coeff(var)
        if coeff == 0:
            return self
        remaining = AffineExpr.from_parts(
            {v: c for v, c in self.vars.items() if v != var},
            self.params,
            self.constant,
        )
        return remaining + replacement * coeff

    def rename_var(self, old: str, new: str) -> "AffineExpr":
        return self.substitute_var(old, AffineExpr.var(new))

    # ------------------------------------------------------------------
    # Evaluation and rendering
    # ------------------------------------------------------------------
    def evaluate(self, bindings: Mapping[str, int | float]) -> int:
        """Evaluate under a complete binding of variables and parameters."""
        total = self.constant
        for v, c in self.var_coeffs:
            total += c * int(bindings[v])
        for p, c in self.param_coeffs:
            total += c * int(bindings[p])
        return total

    def to_ir(self) -> Expr:
        """Convert back to an IR expression (canonical form)."""
        terms: list[Expr] = []
        for v, c in self.var_coeffs:
            term: Expr = VarRef(v)
            if c != 1:
                term = BinOp("*", IntConst(c), term)
            terms.append(term)
        for p, c in self.param_coeffs:
            term = ParamRef(p)
            if c != 1:
                term = BinOp("*", IntConst(c), term)
            terms.append(term)
        if self.constant != 0 or not terms:
            terms.append(IntConst(self.constant))
        result = terms[0]
        for term in terms[1:]:
            result = BinOp("+", result, term)
        return result

    def __str__(self) -> str:
        parts = []
        for v, c in self.var_coeffs:
            parts.append(f"{c}*{v}" if c != 1 else v)
        for p, c in self.param_coeffs:
            parts.append(f"{c}*{p}" if c != 1 else p)
        if self.constant or not parts:
            parts.append(str(self.constant))
        return " + ".join(parts)


def _as_affine(value: "AffineExpr | int") -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    return AffineExpr.constant_expr(value)


def affine_from_expr(
    expr: Expr,
    loop_vars: set[str],
    param_names: set[str],
) -> Optional[AffineExpr]:
    """Analyse an IR expression into affine normal form.

    Returns ``None`` when the expression is not affine in the given loop
    variables and parameters (e.g. it multiplies two variables, divides,
    or reads an array).
    """
    if isinstance(expr, IntConst):
        return AffineExpr.constant_expr(expr.value)
    if isinstance(expr, FloatConst):
        if float(expr.value).is_integer():
            return AffineExpr.constant_expr(int(expr.value))
        return None
    if isinstance(expr, VarRef):
        if expr.name in loop_vars:
            return AffineExpr.var(expr.name)
        if expr.name in param_names:
            return AffineExpr.param(expr.name)
        return None
    if isinstance(expr, ParamRef):
        if expr.name in param_names:
            return AffineExpr.param(expr.name)
        if expr.name in loop_vars:
            return AffineExpr.var(expr.name)
        return None
    if isinstance(expr, UnaryOp):
        inner = affine_from_expr(expr.operand, loop_vars, param_names)
        return None if inner is None else inner * -1
    if isinstance(expr, BinOp):
        lhs = affine_from_expr(expr.lhs, loop_vars, param_names)
        rhs = affine_from_expr(expr.rhs, loop_vars, param_names)
        if expr.op == "+":
            if lhs is None or rhs is None:
                return None
            return lhs + rhs
        if expr.op == "-":
            if lhs is None or rhs is None:
                return None
            return lhs - rhs
        if expr.op == "*":
            # One side must be a pure constant for the product to stay affine.
            if lhs is not None and lhs.is_constant and rhs is not None:
                return rhs * lhs.constant
            if rhs is not None and rhs.is_constant and lhs is not None:
                return lhs * rhs.constant
            return None
        return None
    if isinstance(expr, (Min, Max, ArrayRef)):
        return None
    return None

"""Polyhedral layer: the reproduction's stand-in for Polly/ISL.

Provides affine-expression analysis, iteration domains, access relations,
dependence analysis, SCoP (static control part) detection, schedule trees,
and regeneration of loop-nest IR from (transformed) schedule trees.

The paper's flow detects kernels with Polly, represents their execution
strategy as ISL schedule trees, lets Loop Tactics rewrite the trees, and
lowers them back to LLVM-IR.  This package plays exactly that role over the
mini IR: :func:`detect_scops` finds affine regions,
:func:`build_schedule_tree` produces the canonical tree, and
:func:`generate_ir` lowers a (possibly transformed) tree back to IR.
"""

from repro.poly.affine import AffineExpr, affine_from_expr
from repro.poly.domain import IterationDomain, LoopDim
from repro.poly.access import AccessKind, AccessRelation, accesses_of_statement
from repro.poly.scop import Scop, ScopStatement, detect_scops
from repro.poly.schedule_tree import (
    ScheduleNode,
    DomainNode,
    BandNode,
    SequenceNode,
    FilterNode,
    MarkNode,
    ExtensionNode,
    LeafNode,
)
from repro.poly.schedule_build import build_schedule_tree
from repro.poly.dependence import Dependence, DependenceKind, compute_dependences
from repro.poly.astgen import generate_ir

__all__ = [
    "AffineExpr",
    "affine_from_expr",
    "IterationDomain",
    "LoopDim",
    "AccessKind",
    "AccessRelation",
    "accesses_of_statement",
    "Scop",
    "ScopStatement",
    "detect_scops",
    "ScheduleNode",
    "DomainNode",
    "BandNode",
    "SequenceNode",
    "FilterNode",
    "MarkNode",
    "ExtensionNode",
    "LeafNode",
    "build_schedule_tree",
    "Dependence",
    "DependenceKind",
    "compute_dependences",
    "generate_ir",
]

"""Structural matchers over schedule trees.

Loop Tactics describes candidate schedules declaratively: a matcher is a
small tree of combinators mirroring the shape of the schedule tree to
recognise.  Matching a combinator against a node either fails or extends a
capture dictionary mapping capture names to schedule-tree nodes.

Example — the canonical GEMM schedule (three nested 1-D bands around a leaf,
with an optional init-statement filter in between) is written as::

    matcher = m_band(
        m_band(
            m_any(capture="below_ij"),
        capture="band_j"),
    capture="band_i")

and matched with :func:`match_tree`, which returns the capture dict or
``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.poly.schedule_tree import (
    BandNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    LeafNode,
    MarkNode,
    ScheduleNode,
    SequenceNode,
)

Captures = dict[str, ScheduleNode]


@dataclass
class TreeMatcher:
    """A single structural matcher node.

    ``node_type`` restricts the schedule-tree node class (``None`` matches
    any node).  ``children`` are sub-matchers applied to the node's children
    positionally; a matcher with no children accepts a node with any
    children (the subtree below is unconstrained).  ``predicate`` can impose
    extra conditions (e.g. band dimensionality).  ``capture`` stores the node
    in the capture dictionary under that name.
    """

    node_type: Optional[type] = None
    children: tuple["TreeMatcher", ...] = ()
    predicate: Optional[Callable[[ScheduleNode], bool]] = None
    capture: Optional[str] = None
    exact_children: bool = True

    def matches(self, node: ScheduleNode, captures: Captures) -> bool:
        if self.node_type is not None and not isinstance(node, self.node_type):
            return False
        if self.predicate is not None and not self.predicate(node):
            return False
        if self.children:
            actual = list(node.children())
            if self.exact_children and len(actual) != len(self.children):
                return False
            if len(actual) < len(self.children):
                return False
            for sub_matcher, child in zip(self.children, actual):
                if not sub_matcher.matches(child, captures):
                    return False
        if self.capture is not None:
            captures[self.capture] = node
        return True


def match_tree(matcher: TreeMatcher, node: ScheduleNode) -> Optional[Captures]:
    """Match *matcher* against *node*; return captures or ``None``."""
    captures: Captures = {}
    if matcher.matches(node, captures):
        return captures
    return None


def find_matches(matcher: TreeMatcher, root: ScheduleNode) -> list[Captures]:
    """All positions in the tree rooted at *root* where *matcher* matches."""
    results = []
    for node in root.walk():
        captures = match_tree(matcher, node)
        if captures is not None:
            results.append(captures)
    return results


# ----------------------------------------------------------------------
# Combinators
# ----------------------------------------------------------------------
def m_any(capture: Optional[str] = None) -> TreeMatcher:
    """Match any node (wildcard)."""
    return TreeMatcher(node_type=None, capture=capture)


def m_domain(*children: TreeMatcher, capture: Optional[str] = None) -> TreeMatcher:
    return TreeMatcher(node_type=DomainNode, children=tuple(children), capture=capture)


def m_band(
    *children: TreeMatcher,
    capture: Optional[str] = None,
    n_dims: Optional[int] = None,
    dims: Optional[Sequence[str]] = None,
    permutable: Optional[bool] = None,
) -> TreeMatcher:
    """Match a band node, optionally constraining dimensionality or names."""

    def predicate(node: ScheduleNode) -> bool:
        assert isinstance(node, BandNode)
        if n_dims is not None and node.n_dims != n_dims:
            return False
        if dims is not None and list(node.dims) != list(dims):
            return False
        if permutable is not None and node.permutable != permutable:
            return False
        return True

    return TreeMatcher(
        node_type=BandNode,
        children=tuple(children),
        predicate=predicate,
        capture=capture,
    )


def m_sequence(
    *children: TreeMatcher,
    capture: Optional[str] = None,
    exact: bool = True,
) -> TreeMatcher:
    """Match a sequence node whose children match positionally."""
    return TreeMatcher(
        node_type=SequenceNode,
        children=tuple(children),
        capture=capture,
        exact_children=exact,
    )


def m_filter(
    *children: TreeMatcher,
    capture: Optional[str] = None,
    statements: Optional[set[str]] = None,
) -> TreeMatcher:
    def predicate(node: ScheduleNode) -> bool:
        assert isinstance(node, FilterNode)
        if statements is not None and node.statements != set(statements):
            return False
        return True

    return TreeMatcher(
        node_type=FilterNode,
        children=tuple(children),
        predicate=predicate,
        capture=capture,
    )


def m_leaf(capture: Optional[str] = None) -> TreeMatcher:
    return TreeMatcher(node_type=LeafNode, capture=capture)


def m_mark(
    *children: TreeMatcher,
    capture: Optional[str] = None,
    mark: Optional[str] = None,
) -> TreeMatcher:
    def predicate(node: ScheduleNode) -> bool:
        assert isinstance(node, MarkNode)
        return mark is None or node.mark == mark

    return TreeMatcher(
        node_type=MarkNode,
        children=tuple(children),
        predicate=predicate,
        capture=capture,
    )


def m_extension(capture: Optional[str] = None) -> TreeMatcher:
    return TreeMatcher(node_type=ExtensionNode, capture=capture)


# ----------------------------------------------------------------------
# Pre-built structural shapes used by the pattern library
# ----------------------------------------------------------------------
def band_chain_matcher(depth: int, capture_prefix: str = "band") -> TreeMatcher:
    """A chain of *depth* nested 1-D bands ending anywhere.

    Captures each band as ``<capture_prefix><level>`` with level 0 outermost.
    """
    matcher = m_any(capture=f"{capture_prefix}_inner")
    for level in reversed(range(depth)):
        matcher = m_band(matcher, capture=f"{capture_prefix}{level}", n_dims=1)
    return matcher


def nested_band_chain(node: ScheduleNode, max_depth: int = 16) -> list[BandNode]:
    """Longest chain of nested bands starting at *node* (helper for patterns).

    The chain follows single-child links and collects band nodes, tolerating
    interleaved mark nodes; it stops at sequences, filters, leaves, or when
    ``max_depth`` bands have been collected.
    """
    chain: list[BandNode] = []
    current: Optional[ScheduleNode] = node
    while current is not None and len(chain) < max_depth:
        if isinstance(current, BandNode):
            chain.append(current)
            current = current.child
        elif isinstance(current, MarkNode):
            current = current.child
        else:
            break
    return chain

"""Access-relation matchers with placeholders.

Loop Tactics complements structural tree matchers with *access matchers*: a
pattern like ``write(C[i, j]), read(A[i, k]), read(B[k, j])`` is matched
against a statement's access relations, where ``i``/``j``/``k`` and
``A``/``B``/``C`` are placeholders that unify with concrete loop variables
and array names.  Unification is consistent: the same placeholder must bind
to the same concrete name everywhere, and two distinct placeholders may not
bind to the same loop variable (arrays *may* alias unless
``distinct_arrays`` is requested, since e.g. ``C += A * A^T`` is a valid
GEMM with repeated operands).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.poly.access import AccessKind, AccessRelation


@dataclass(frozen=True)
class Placeholder:
    """A named placeholder for a loop variable or an array name."""

    name: str
    kind: str = "dim"  # "dim" or "array"

    def __str__(self) -> str:
        return f"?{self.name}"


def dim_placeholders(*names: str) -> tuple[Placeholder, ...]:
    return tuple(Placeholder(n, "dim") for n in names)


def array_placeholders(*names: str) -> tuple[Placeholder, ...]:
    return tuple(Placeholder(n, "array") for n in names)


@dataclass(frozen=True)
class AccessPattern:
    """One access to match: kind, array placeholder, subscript placeholders."""

    kind: AccessKind
    array: Placeholder
    subscripts: tuple[Placeholder, ...]

    def __str__(self) -> str:
        subs = "][".join(str(s) for s in self.subscripts)
        return f"{self.kind}:{self.array}[{subs}]"


def read_access(array: Placeholder, subscripts: Sequence[Placeholder]) -> AccessPattern:
    return AccessPattern(AccessKind.READ, array, tuple(subscripts))


def write_access(array: Placeholder, subscripts: Sequence[Placeholder]) -> AccessPattern:
    return AccessPattern(AccessKind.WRITE, array, tuple(subscripts))


@dataclass
class AccessBinding:
    """Result of a successful access match: placeholder name -> concrete name."""

    dims: dict[str, str] = field(default_factory=dict)
    arrays: dict[str, str] = field(default_factory=dict)

    def dim(self, name: str) -> str:
        return self.dims[name]

    def array(self, name: str) -> str:
        return self.arrays[name]

    def copy(self) -> "AccessBinding":
        return AccessBinding(dict(self.dims), dict(self.arrays))


def _bind_access(
    pattern: AccessPattern,
    access: AccessRelation,
    binding: AccessBinding,
    distinct_dims: bool,
) -> Optional[AccessBinding]:
    """Try to unify one pattern with one concrete access."""
    if pattern.kind is not access.kind:
        return None
    if len(pattern.subscripts) != access.rank:
        return None
    concrete_vars = access.single_vars()
    if concrete_vars is None:
        return None  # only simple single-variable subscripts are matched here
    result = binding.copy()
    # Array placeholder unification.
    bound_array = result.arrays.get(pattern.array.name)
    if bound_array is None:
        result.arrays[pattern.array.name] = access.array
    elif bound_array != access.array:
        return None
    # Subscript placeholder unification.
    for ph, var in zip(pattern.subscripts, concrete_vars):
        bound = result.dims.get(ph.name)
        if bound is None:
            if distinct_dims and var in result.dims.values():
                return None
            result.dims[ph.name] = var
        elif bound != var:
            return None
    return result


def match_accesses(
    accesses: Sequence[AccessRelation],
    patterns: Sequence[AccessPattern],
    distinct_dims: bool = True,
    allow_extra: bool = False,
) -> Optional[AccessBinding]:
    """Match a statement's access list against a pattern list.

    Every pattern must be matched by a distinct access.  When ``allow_extra``
    is false (the default), every access must also be consumed by some
    pattern — the statement does exactly what the pattern says and nothing
    more, which is what offloading requires.

    Duplicate accesses (the read and write of a ``+=`` target have identical
    subscripts) are handled by searching over assignments of patterns to
    accesses (the lists are tiny, so backtracking is cheap).
    """
    accesses = list(accesses)
    patterns = list(patterns)
    if not allow_extra and len(accesses) != len(patterns):
        return None
    if len(patterns) > len(accesses):
        return None

    def backtrack(
        remaining: list[AccessPattern],
        available: list[AccessRelation],
        binding: AccessBinding,
    ) -> Optional[AccessBinding]:
        if not remaining:
            return binding
        pattern = remaining[0]
        for index, access in enumerate(available):
            attempt = _bind_access(pattern, access, binding, distinct_dims)
            if attempt is None:
                continue
            rest = available[:index] + available[index + 1 :]
            result = backtrack(remaining[1:], rest, attempt)
            if result is not None:
                return result
        return None

    return backtrack(patterns, accesses, AccessBinding())
